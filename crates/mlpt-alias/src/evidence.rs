//! Per-address evidence: IP-ID series, fingerprints, MPLS labels.
//!
//! "Some of the basic data required by these techniques is collected as
//! part of basic MDA-Lite Paris Traceroute probing: IP IDs that are used
//! by the MBT; the TTLs of 'indirect probing' reply packets that are used
//! by Network Fingerprinting; and the MPLS labels that appear in reply
//! packets." (Sec. 4.1). [`EvidenceBase`] accumulates exactly that —
//! seeded from a trace's [`mlpt_core::ProbeLog`] "for free", then extended
//! by the explicit probing rounds.

use crate::series::IpIdSample;
use mlpt_core::prober::{DirectObservation, ProbeLog, ProbeObservation};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// The initial-TTL fingerprint of an interface: inferred initial TTL of
/// its ICMP error replies and (once a direct probe has been sent) of its
/// echo replies. `None` components are simply not yet measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Fingerprint {
    /// Inferred initial TTL of Time Exceeded replies.
    pub indirect_initial_ttl: Option<u8>,
    /// Inferred initial TTL of Echo replies.
    pub direct_initial_ttl: Option<u8>,
}

impl Fingerprint {
    /// True if two fingerprints definitely disagree (some component known
    /// on both sides and different) — negative alias evidence.
    pub fn conflicts(&self, other: &Fingerprint) -> bool {
        let indirect = match (self.indirect_initial_ttl, other.indirect_initial_ttl) {
            (Some(a), Some(b)) => a != b,
            _ => false,
        };
        let direct = match (self.direct_initial_ttl, other.direct_initial_ttl) {
            (Some(a), Some(b)) => a != b,
            _ => false,
        };
        indirect || direct
    }
}

/// Infers the initial TTL a reply was sent with from its received TTL:
/// the smallest conventional initial value (32, 64, 128, 255) at or above
/// what arrived.
pub fn infer_initial_ttl(reply_ttl: u8) -> u8 {
    for initial in [32u8, 64, 128, 255] {
        if reply_ttl <= initial {
            return initial;
        }
    }
    255
}

/// MPLS label evidence for one interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MplsEvidence {
    /// No label ever seen.
    #[default]
    None,
    /// A label seen, constant across all replies so far.
    Stable(u32),
    /// Labels observed to vary: unusable for alias resolution (Sec. 4.1).
    Unstable,
}

impl MplsEvidence {
    fn observe(&mut self, label: u32) {
        *self = match *self {
            MplsEvidence::None => MplsEvidence::Stable(label),
            MplsEvidence::Stable(prev) if prev == label => MplsEvidence::Stable(label),
            _ => MplsEvidence::Unstable,
        };
    }

    /// True when both sides carry stable labels that differ (negative
    /// evidence) .
    pub fn conflicts(&self, other: &MplsEvidence) -> bool {
        matches!(
            (self, other),
            (MplsEvidence::Stable(a), MplsEvidence::Stable(b)) if a != b
        )
    }

    /// True when both sides carry the same stable label (positive
    /// evidence: "it is highly likely that these two interfaces belong to
    /// the same router").
    pub fn matches(&self, other: &MplsEvidence) -> bool {
        matches!(
            (self, other),
            (MplsEvidence::Stable(a), MplsEvidence::Stable(b)) if a == b
        )
    }
}

/// Everything known about one interface address.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AddressEvidence {
    /// Indirect (ICMP error) IP-ID samples, timestamp-sorted.
    pub indirect_series: Vec<IpIdSample>,
    /// Direct (echo reply) IP-ID samples, timestamp-sorted.
    pub direct_series: Vec<IpIdSample>,
    /// Initial-TTL fingerprint.
    pub fingerprint: Fingerprint,
    /// MPLS label evidence.
    pub mpls: MplsEvidence,
    /// Direct probes sent that went unanswered (MIDAR's 60.5 %
    /// inconclusive cause: unresponsive to direct probing).
    pub unanswered_direct: u32,
}

/// Inserts a sample keeping the series timestamp-sorted (stable for
/// equal timestamps). Blocking probers deliver observations in timestamp
/// order, making this a plain O(1) append; the sweep engine's retry
/// waves deliver a round's outcomes in *request* order, where a retried
/// probe's reply can carry a later timestamp than its successors'.
/// Maintaining the sort here keeps the MBT's merged-series test valid
/// under any conforming driver.
fn insert_by_timestamp(series: &mut Vec<IpIdSample>, sample: IpIdSample) {
    let pos = series
        .iter()
        .rposition(|s| s.timestamp <= sample.timestamp)
        .map_or(0, |p| p + 1);
    series.insert(pos, sample);
}

/// Evidence for a group of candidate addresses (typically one hop).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EvidenceBase {
    map: BTreeMap<Ipv4Addr, AddressEvidence>,
}

impl EvidenceBase {
    /// Creates an empty base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evidence for one address (created on first touch).
    pub fn entry(&mut self, addr: Ipv4Addr) -> &mut AddressEvidence {
        self.map.entry(addr).or_default()
    }

    /// Read access to one address's evidence.
    pub fn get(&self, addr: Ipv4Addr) -> Option<&AddressEvidence> {
        self.map.get(&addr)
    }

    /// Addresses with any evidence.
    pub fn addresses(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.map.keys().copied()
    }

    /// Ingests one indirect observation.
    pub fn add_indirect(&mut self, obs: &ProbeObservation, probe_ip_id: u16) {
        let e = self.entry(obs.responder);
        insert_by_timestamp(
            &mut e.indirect_series,
            IpIdSample {
                timestamp: obs.timestamp,
                ip_id: obs.ip_id,
                probe_ip_id,
            },
        );
        e.fingerprint.indirect_initial_ttl = Some(infer_initial_ttl(obs.reply_ttl));
        if let Some(entry) = obs.mpls.first() {
            e.mpls.observe(entry.label);
        }
    }

    /// Ingests one direct observation.
    pub fn add_direct(&mut self, obs: &DirectObservation) {
        let e = self.entry(obs.target);
        insert_by_timestamp(
            &mut e.direct_series,
            IpIdSample {
                timestamp: obs.timestamp,
                ip_id: obs.ip_id,
                probe_ip_id: obs.probe_ip_id,
            },
        );
        e.fingerprint.direct_initial_ttl = Some(infer_initial_ttl(obs.reply_ttl));
    }

    /// Notes an unanswered direct probe to `addr`.
    pub fn add_direct_timeout(&mut self, addr: Ipv4Addr) {
        self.entry(addr).unanswered_direct += 1;
    }

    /// Seeds a base from a trace's probe log, restricted to `candidates`
    /// — the Round 0 data that comes "for free" with the trace.
    pub fn from_log(log: &ProbeLog, candidates: &BTreeSet<Ipv4Addr>) -> Self {
        let mut base = Self::new();
        for obs in &log.indirect {
            if candidates.contains(&obs.responder) {
                // The trace prober stamps sequence numbers as probe IP IDs;
                // indirect echo behaviour is not modelled, so 0 is a safe
                // non-matching placeholder for the probe's own ID here.
                base.add_indirect(obs, 0);
            }
        }
        for obs in &log.direct {
            if candidates.contains(&obs.target) {
                base.add_direct(obs);
            }
        }
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_initial_ttl_classes() {
        assert_eq!(infer_initial_ttl(30), 32);
        assert_eq!(infer_initial_ttl(32), 32);
        assert_eq!(infer_initial_ttl(60), 64);
        assert_eq!(infer_initial_ttl(120), 128);
        assert_eq!(infer_initial_ttl(250), 255);
        assert_eq!(infer_initial_ttl(255), 255);
    }

    #[test]
    fn fingerprint_conflicts() {
        let a = Fingerprint {
            indirect_initial_ttl: Some(255),
            direct_initial_ttl: Some(64),
        };
        let b = Fingerprint {
            indirect_initial_ttl: Some(255),
            direct_initial_ttl: Some(128),
        };
        assert!(a.conflicts(&b));
        let c = Fingerprint {
            indirect_initial_ttl: Some(255),
            direct_initial_ttl: None,
        };
        assert!(!a.conflicts(&c), "unknown components cannot conflict");
        assert!(!a.conflicts(&a));
    }

    #[test]
    fn mpls_evidence_lifecycle() {
        let mut e = MplsEvidence::None;
        e.observe(100);
        assert_eq!(e, MplsEvidence::Stable(100));
        e.observe(100);
        assert_eq!(e, MplsEvidence::Stable(100));
        e.observe(200);
        assert_eq!(e, MplsEvidence::Unstable);
    }

    #[test]
    fn mpls_conflict_and_match() {
        let a = MplsEvidence::Stable(1);
        let b = MplsEvidence::Stable(2);
        let c = MplsEvidence::Stable(1);
        assert!(a.conflicts(&b));
        assert!(a.matches(&c));
        assert!(!a.conflicts(&MplsEvidence::None));
        assert!(!a.matches(&MplsEvidence::Unstable));
    }

    /// Out-of-order delivery (the sweep engine's retry waves resolve a
    /// round's slots in request order, not reply order) must still yield
    /// a timestamp-sorted series for the MBT.
    #[test]
    fn series_stay_timestamp_sorted_under_out_of_order_delivery() {
        use mlpt_core::prober::DirectObservation;
        let addr: Ipv4Addr = "10.0.0.9".parse().unwrap();
        let mut base = EvidenceBase::new();
        for (t, id) in [(10u64, 1u16), (30, 3), (20, 2), (40, 4), (15, 9)] {
            base.add_direct(&DirectObservation {
                target: addr,
                ip_id: id,
                probe_ip_id: 0xFFFF,
                reply_ttl: 250,
                timestamp: t,
            });
        }
        let stamps: Vec<u64> = base
            .get(addr)
            .unwrap()
            .direct_series
            .iter()
            .map(|s| s.timestamp)
            .collect();
        assert_eq!(stamps, vec![10, 15, 20, 30, 40]);
    }

    #[test]
    fn evidence_base_accumulates() {
        use mlpt_core::prober::ProbeObservation;
        use mlpt_wire::FlowId;
        let addr: Ipv4Addr = "10.0.0.1".parse().unwrap();
        let mut base = EvidenceBase::new();
        let obs = ProbeObservation {
            flow: FlowId(1),
            ttl: 3,
            responder: addr,
            at_destination: false,
            ip_id: 500,
            reply_ttl: 252,
            mpls: vec![],
            timestamp: 10,
        };
        base.add_indirect(&obs, 0);
        let e = base.get(addr).unwrap();
        assert_eq!(e.indirect_series.len(), 1);
        assert_eq!(e.fingerprint.indirect_initial_ttl, Some(255));
        assert_eq!(e.fingerprint.direct_initial_ttl, None);
    }
}
