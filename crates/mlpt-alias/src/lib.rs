//! Alias resolution and multilevel route tracing (Sec. 4 of the paper).
//!
//! "Multilevel" route tracing resolves the IP interfaces seen at each hop
//! of a multipath trace into routers, *during* the trace — the paper's
//! third contribution. Three techniques provide the evidence:
//!
//! * the **Monotonic Bounds Test** (MIDAR): interleaved IP-ID samples
//!   from two interfaces form one monotonically increasing (wraparound
//!   aware) sequence only if they come from a shared counter ([`series`],
//!   [`mbt`]);
//! * **Network Fingerprinting** (Vanaubel et al.): inferred initial TTLs
//!   of replies; differing fingerprints mean different routers
//!   ([`evidence`]);
//! * **MPLS Labeling** (Vanaubel et al.): stable label-stack entries at a
//!   common hop; differing labels mean different routers, equal labels
//!   the same router ([`evidence`]).
//!
//! [`resolver`] combines pair evidence into alias sets following the
//! MBT's set-based schema ("an initial set … broken down into smaller and
//! smaller sets"); [`rounds`] implements the Round 0–10 probing protocol
//! of Sec. 4.2 with both indirect (MMLPT) and direct (MIDAR-style)
//! probing; [`multilevel`] packages it all as the Multilevel MDA-Lite
//! Paris Traceroute (MMLPT) tool.

pub mod evidence;
pub mod mbt;
pub mod multilevel;
pub mod resolver;
pub mod rounds;
pub mod series;

pub use evidence::{AddressEvidence, EvidenceBase, Fingerprint, MplsEvidence};
pub use mbt::{merged_monotonic, MbtParams, PairCompatibility};
pub use multilevel::{
    trace_multilevel, DirectComparison, MultilevelConfig, MultilevelOutcome, MultilevelSession,
    MultilevelTrace,
};
pub use resolver::{resolve, AliasPartition, PairVerdict, SetVerdict};
pub use rounds::{run_rounds, AliasRoundsSession, ProbeMethod, RoundReport, RoundsConfig};
pub use series::{classify_series, IpIdSample, SeriesClass};
