//! The Monotonic Bounds Test (MBT).
//!
//! MIDAR's core insight (Keys et al., cited in Sec. 4.1): if two
//! interfaces stamp replies from one shared counter, then their IP-ID
//! samples — probed *alternately* so the samples interleave in time —
//! merge into a single monotonically increasing sequence (modulo 2^16,
//! within a velocity bound). "A monotonic increase in identifiers, taking
//! wraparound into account, is consistent with the addresses being
//! aliases, whereas a single out-of-sequence identifier is used to place
//! the addresses into separate alias sets."

use crate::series::{classify_series, is_monotonic, IpIdSample, SeriesClass};
use serde::{Deserialize, Serialize};

/// Tunables for the MBT.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MbtParams {
    /// Maximum plausible counter velocity (IDs per transport tick).
    pub velocity_bound: f64,
    /// Fixed slack added to every bound (absorbs per-sample jitter).
    pub slack: u32,
}

impl Default for MbtParams {
    fn default() -> Self {
        Self {
            velocity_bound: 24.0,
            slack: 64,
        }
    }
}

/// Outcome of testing one pair of addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairCompatibility {
    /// Both series usable and the merged series is monotonic: consistent
    /// with a shared counter.
    Compatible,
    /// Both series usable but the merge violates monotonicity: distinct
    /// counters, hence distinct routers (or per-interface counters).
    Incompatible,
    /// At least one series is unusable (constant, echoing, random, or too
    /// short): the MBT cannot conclude.
    Unknown,
}

/// Merges two timestamp-sorted series and checks monotonicity.
pub fn merged_monotonic(a: &[IpIdSample], b: &[IpIdSample], params: &MbtParams) -> bool {
    let mut merged: Vec<IpIdSample> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i].timestamp <= b[j].timestamp {
            merged.push(a[i]);
            i += 1;
        } else {
            merged.push(b[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&a[i..]);
    merged.extend_from_slice(&b[j..]);
    is_monotonic(&merged, params.velocity_bound, params.slack)
}

/// Runs the MBT on a pair of address series.
pub fn test_pair(a: &[IpIdSample], b: &[IpIdSample], params: &MbtParams) -> PairCompatibility {
    let ca = classify_series(a, params.velocity_bound, params.slack);
    let cb = classify_series(b, params.velocity_bound, params.slack);
    if !ca.usable() || !cb.usable() {
        return PairCompatibility::Unknown;
    }
    if merged_monotonic(a, b, params) {
        PairCompatibility::Compatible
    } else {
        PairCompatibility::Incompatible
    }
}

/// Why a series was unusable — the diagnostic breakdown of Sec. 4.2's
/// inconclusive-case analysis.
pub fn unusable_reason(samples: &[IpIdSample], params: &MbtParams) -> Option<SeriesClass> {
    let class = classify_series(samples, params.velocity_bound, params.slack);
    if class.usable() {
        None
    } else {
        Some(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(t: u64, id: u16) -> IpIdSample {
        IpIdSample {
            timestamp: t,
            ip_id: id,
            probe_ip_id: 0xFFFF,
        }
    }

    /// Interleaved samples from one shared counter: compatible.
    #[test]
    fn shared_counter_compatible() {
        // Counter advances ~2/tick; A sampled at even ticks, B at odd.
        let a: Vec<IpIdSample> = (0..10).map(|i| s(2 * i, (100 + 4 * i) as u16)).collect();
        let b: Vec<IpIdSample> = (0..10)
            .map(|i| s(2 * i + 1, (102 + 4 * i) as u16))
            .collect();
        assert_eq!(
            test_pair(&a, &b, &MbtParams::default()),
            PairCompatibility::Compatible
        );
    }

    /// Independent counters started far apart: incompatible.
    #[test]
    fn independent_counters_incompatible() {
        let a: Vec<IpIdSample> = (0..10).map(|i| s(2 * i, (100 + 4 * i) as u16)).collect();
        let b: Vec<IpIdSample> = (0..10)
            .map(|i| s(2 * i + 1, (40_000 + 4 * i) as u16))
            .collect();
        assert_eq!(
            test_pair(&a, &b, &MbtParams::default()),
            PairCompatibility::Incompatible
        );
    }

    /// One constant series: unknown.
    #[test]
    fn constant_series_unknown() {
        let a: Vec<IpIdSample> = (0..10).map(|i| s(2 * i, (100 + 4 * i) as u16)).collect();
        let b: Vec<IpIdSample> = (0..10).map(|i| s(2 * i + 1, 0)).collect();
        assert_eq!(
            test_pair(&a, &b, &MbtParams::default()),
            PairCompatibility::Unknown
        );
    }

    /// Shared counter across the wraparound: still compatible.
    #[test]
    fn shared_counter_wraparound_compatible() {
        let a = vec![s(0, 65_500), s(4, 65_516), s(8, 12)];
        let b = vec![s(2, 65_508), s(6, 65_524), s(10, 20)];
        assert_eq!(
            test_pair(&a, &b, &MbtParams::default()),
            PairCompatibility::Compatible
        );
    }

    #[test]
    fn merge_is_order_insensitive() {
        let a = vec![s(0, 10), s(10, 30)];
        let b = vec![s(5, 20)];
        assert!(merged_monotonic(&a, &b, &MbtParams::default()));
        assert!(merged_monotonic(&b, &a, &MbtParams::default()));
    }

    #[test]
    fn short_series_unknown() {
        let a = vec![s(0, 10), s(1, 12)];
        let b = vec![s(0, 11), s(1, 13), s(2, 15)];
        assert_eq!(
            test_pair(&a, &b, &MbtParams::default()),
            PairCompatibility::Unknown
        );
    }

    #[test]
    fn unusable_reason_reports_class() {
        let constant = vec![s(0, 0), s(1, 0), s(2, 0)];
        assert_eq!(
            unusable_reason(&constant, &MbtParams::default()),
            Some(SeriesClass::Constant(0))
        );
        let good: Vec<IpIdSample> = (0..5).map(|i| s(i, (10 + 2 * i) as u16)).collect();
        assert_eq!(unusable_reason(&good, &MbtParams::default()), None);
    }
}
