//! Multilevel MDA-Lite Paris Traceroute (MMLPT).
//!
//! The paper's third contribution: "for the first time, a Traceroute tool
//! that provides a router-level view of multipath routes" (Sec. 4). The
//! multilevel tracer runs MDA-Lite, then — hop by hop, among the
//! addresses found at that hop, since "the aliases of a given router are
//! to be found among the addresses found at a given hop" — applies the
//! alias-resolution rounds and collapses the IP-level topology to the
//! router level.

use crate::evidence::EvidenceBase;
use crate::resolver::AliasPartition;
use crate::rounds::{AliasRoundsSession, RoundReport, RoundsConfig};
use mlpt_core::config::TraceConfig;
use mlpt_core::prober::{ProbeLog, Prober, TransportProber};
use mlpt_core::session::{
    drive_probes, MdaLiteSession, ProbeOutcome, ProbeRequest, ProbeSession, SessionState,
    TraceProbeSession, TraceSession,
};
use mlpt_core::stopset::{StopContribution, StopSnapshot};
use mlpt_core::trace::Trace;
use mlpt_topo::router::collapse;
use mlpt_topo::{MultipathTopology, RouterMap};
use mlpt_wire::transport::BatchTransport;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Configuration for a multilevel trace.
#[derive(Debug, Clone)]
pub struct MultilevelConfig {
    /// The underlying MDA-Lite trace configuration.
    pub trace: TraceConfig,
    /// The alias-resolution protocol configuration.
    pub rounds: RoundsConfig,
}

impl MultilevelConfig {
    /// Creates a configuration with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            trace: TraceConfig::new(seed),
            rounds: RoundsConfig::default(),
        }
    }
}

/// Result of a multilevel trace: the IP-level trace plus router-level
/// inference.
#[derive(Debug, Clone)]
pub struct MultilevelTrace {
    /// The underlying IP-level multipath trace.
    pub trace: Trace,
    /// Per-hop round reports (only hops with ≥ 2 candidate addresses).
    pub hop_reports: BTreeMap<u8, Vec<RoundReport>>,
    /// Final alias sets merged across hops.
    pub router_map: RouterMap,
    /// Probes spent on alias resolution (beyond the trace itself).
    pub alias_probes: u64,
    /// The discovered IP-level topology (None if destination unreached).
    pub ip_topology: Option<MultipathTopology>,
    /// The router-level topology after collapsing alias sets.
    pub router_topology: Option<MultipathTopology>,
}

impl MultilevelTrace {
    /// Final partition for one hop, if alias resolution ran there.
    pub fn final_partition(&self, ttl: u8) -> Option<&AliasPartition> {
        self.hop_reports
            .get(&ttl)
            .and_then(|r| r.last())
            .map(|r| &r.partition)
    }

    /// Sizes of all identified routers (the Fig. 12 metric).
    pub fn router_sizes(&self) -> Vec<usize> {
        self.router_map.router_sizes()
    }
}

/// The direct-probing comparator campaign for one hop: the MIDAR-style
/// Round 1–10 reports and the evidence base they judged against (trace +
/// indirect rounds + the direct campaign itself), as Table 2 consumes
/// them.
#[derive(Debug, Clone)]
pub struct DirectComparison {
    /// Per-round reports of the direct campaign.
    pub reports: Vec<RoundReport>,
    /// The evidence base after the campaign, seeded from everything the
    /// session had observed when the campaign started.
    pub evidence: EvidenceBase,
}

/// Everything a finished [`MultilevelSession`] produced: the multilevel
/// trace itself plus the raw material the surveys aggregate.
#[derive(Debug, Clone)]
pub struct MultilevelOutcome {
    /// The multilevel trace (what [`trace_multilevel`] returns).
    pub multilevel: MultilevelTrace,
    /// Final per-hop evidence bases of the indirect alias rounds — the
    /// bit-for-bit IP-ID series the equivalence tests compare.
    pub hop_evidence: BTreeMap<u8, EvidenceBase>,
    /// Per-hop direct comparator campaigns (empty unless enabled via
    /// [`MultilevelSession::with_direct_comparison`]).
    pub direct: BTreeMap<u8, DirectComparison>,
    /// The full observation log, in probing order.
    pub log: ProbeLog,
    /// Wire-level packets spent on the direct comparator campaigns.
    pub direct_wire_probes: u64,
}

/// Internal stage of a [`MultilevelSession`].
enum Phase {
    /// MDA-Lite tracing (boxed: the trace state machine is much larger
    /// than the rounds stage, and the phase moves through
    /// `mem::replace` on every poll).
    Trace(Box<TraceProbeSession<MdaLiteSession>>),
    /// One hop's alias-resolution rounds (`comparator` = the Table 2
    /// direct campaign rather than the trace's own indirect rounds).
    Rounds {
        ttl: u8,
        session: AliasRoundsSession,
        comparator: bool,
    },
    /// Every remaining hop's rounds session at once, advanced in
    /// lockstep waves (see [`MultilevelSession::with_hop_fanout`]).
    Fanned(FannedRounds),
    Done,
}

/// The per-hop fan-out stage: one [`AliasRoundsSession`] per
/// multi-candidate hop, all in flight at once. Each parent round is the
/// concatenation of every live sub-session's current protocol round, in
/// ascending-TTL order — a *protocol-fixed* interleaving, so any
/// conforming driver (and any admission policy, budget or retry
/// schedule of the sweep engine) produces the identical per-destination
/// wire sequence. The parent slices the delivered results back to the
/// sub-sessions span by span; each sub-session observes exactly the
/// slots of its own requests, in its own request order, just as it
/// would alone.
struct FannedRounds {
    /// Whether these are the Table 2 direct-comparator campaigns.
    comparator: bool,
    /// `(ttl, session)` in ascending-TTL order — also the wave's
    /// concatenation order.
    subs: Vec<(u8, AliasRoundsSession)>,
    /// Request spans of the armed wave: `(sub index, start, end)`.
    spans: Vec<(usize, usize, usize)>,
    /// The armed wave's concatenated request list.
    requests: Vec<ProbeRequest>,
    /// True while a wave is armed and awaiting replies.
    armed: bool,
}

impl FannedRounds {
    fn new(comparator: bool, subs: Vec<(u8, AliasRoundsSession)>) -> Self {
        Self {
            comparator,
            subs,
            spans: Vec::new(),
            requests: Vec::new(),
            armed: false,
        }
    }

    /// Arms the next wave: polls every sub-session and concatenates the
    /// live ones's rounds. Returns false once every sub-session has
    /// finished.
    fn arm(&mut self) -> bool {
        if self.armed {
            return true;
        }
        self.requests.clear();
        self.spans.clear();
        for (idx, (_ttl, session)) in self.subs.iter_mut().enumerate() {
            if session.poll() == SessionState::Probing {
                let start = self.requests.len();
                self.requests.extend_from_slice(session.next_rounds());
                self.spans.push((idx, start, self.requests.len()));
            }
        }
        self.armed = !self.requests.is_empty();
        self.armed
    }

    /// Distributes one delivered wave back to its sub-sessions.
    fn deliver(&mut self, results: &mut [Option<ProbeOutcome>]) {
        debug_assert_eq!(
            results.len(),
            self.requests.len(),
            "one result slot per fanned request"
        );
        for &(idx, start, end) in &self.spans {
            if let Some(slice) = results.get_mut(start..end) {
                self.subs[idx].1.on_replies(slice);
            }
        }
        self.armed = false;
    }
}

/// Multilevel MDA-Lite Paris Traceroute as one resumable sans-IO
/// [`ProbeSession`]: the MDA-Lite trace, then — hop by hop — the
/// Round 0–10 alias protocol, then (optionally) the MIDAR-style direct
/// comparator campaigns, all behind one `poll`/`next_rounds`/
/// `on_replies` surface the sweep engine can interleave across
/// destinations.
///
/// The session keeps its own [`ProbeLog`] (the observations a blocking
/// run would find in its prober's log), so each alias stage seeds its
/// evidence base from exactly the data the legacy implementation saw at
/// the same point: trace observations plus every earlier stage's
/// probing.
pub struct MultilevelSession {
    destination: Ipv4Addr,
    config: MultilevelConfig,
    comparator: Option<RoundsConfig>,
    /// Run all of a phase's per-hop rounds sessions concurrently instead
    /// of hop after hop (see [`with_hop_fanout`](Self::with_hop_fanout)).
    hop_fanout: bool,
    /// Caller-supplied admission cost hint, used until the trace phase
    /// discovers the real hop widths.
    cost_hint: Option<u64>,
    phase: Phase,
    log: ProbeLog,
    trace: Option<Trace>,
    /// Multi-candidate hops in ascending TTL order, fixed after tracing.
    hops: Vec<(u8, BTreeSet<Ipv4Addr>)>,
    next_alias: usize,
    next_direct: usize,
    hop_reports: BTreeMap<u8, Vec<RoundReport>>,
    hop_evidence: BTreeMap<u8, EvidenceBase>,
    direct: BTreeMap<u8, DirectComparison>,
    /// Wire packets per protocol phase, fed by `note_wire_probes`.
    trace_wire: u64,
    alias_wire: u64,
    direct_wire: u64,
    /// The trace phase's shared-stop-set contribution, stashed when the
    /// trace session is consumed so the sweep engine can still harvest
    /// it after the alias phases finish.
    trace_stops: Option<StopContribution>,
}

impl MultilevelSession {
    /// Creates a session tracing (then alias-resolving) towards
    /// `destination`.
    pub fn new(destination: Ipv4Addr, config: MultilevelConfig) -> Self {
        let trace_session = MdaLiteSession::new(destination, config.trace.clone());
        Self {
            destination,
            config,
            comparator: None,
            hop_fanout: false,
            cost_hint: None,
            phase: Phase::Trace(Box::new(TraceProbeSession::new(trace_session))),
            log: ProbeLog::default(),
            trace: None,
            hops: Vec::new(),
            next_alias: 0,
            next_direct: 0,
            hop_reports: BTreeMap::new(),
            hop_evidence: BTreeMap::new(),
            direct: BTreeMap::new(),
            trace_wire: 0,
            alias_wire: 0,
            direct_wire: 0,
            trace_stops: None,
        }
    }

    /// Enables the Table 2 comparator: after the indirect rounds, each
    /// multi-candidate hop gets a probing campaign under `rounds`
    /// (typically [`crate::rounds::ProbeMethod::Direct`] with the same
    /// round counts), judged over all evidence gathered so far.
    pub fn with_direct_comparison(mut self, rounds: RoundsConfig) -> Self {
        self.comparator = Some(rounds);
        self
    }

    /// Enables per-hop fan-out: once the trace completes, every
    /// multi-candidate hop's Round 0–10 session starts at once and the
    /// session emits *waves* — each parent round concatenates every
    /// hop's current protocol round in ascending-TTL order — instead of
    /// finishing one hop before starting the next. Round 0 is
    /// probe-free, so a destination with H wide hops needs `rounds`
    /// round-trips instead of `H × rounds`, which is what stops a
    /// single wide destination from serializing a sweep's tail. The comparator campaigns (if
    /// enabled) fan out the same way, in a second wave phase after every
    /// indirect hop has finished.
    ///
    /// The interleaving is part of the protocol, not the schedule (the
    /// same argument as the MBT's within-hop probe order): the wave
    /// sequence is fixed by the trace outcome alone, so fanned results
    /// are bit-identical across admission policies, budgets and retry
    /// schedules — property-tested in `tests/alias_equivalence.rs`.
    /// Relative to the hop-sequential pipeline the per-destination wire
    /// *order* does change, so fanned and sequential runs are distinct
    /// (deterministic) protocol variants: every hop's evidence base
    /// seeds from the wave phase's start (trace evidence for the
    /// indirect waves; trace + all indirect rounds for the comparator
    /// waves) rather than from whatever earlier hops had probed.
    pub fn with_hop_fanout(mut self, enabled: bool) -> Self {
        self.hop_fanout = enabled;
        self
    }

    /// Sets the admission cost hint reported before the trace phase
    /// completes (callers often know the scenario topology — e.g. the
    /// router survey — long before the trace rediscovers it). Once the
    /// trace finishes, [`predicted_cost`](ProbeSession::predicted_cost)
    /// switches to the exact alias cost computed from the discovered hop
    /// widths.
    pub fn with_cost_hint(mut self, hint: u64) -> Self {
        self.cost_hint = Some(hint);
        self
    }

    /// The hops eligible for alias resolution: at least two non-star,
    /// non-destination addresses (the paper: "the aliases of a given
    /// router are to be found among the addresses found at a given
    /// hop").
    fn hop_candidates(trace: &Trace) -> Vec<(u8, BTreeSet<Ipv4Addr>)> {
        let destination = trace.destination;
        let mut hops = Vec::new();
        for ttl in 1..=trace.discovery.max_observed_ttl() {
            let candidates: BTreeSet<Ipv4Addr> = trace
                .discovery
                .vertices_at(ttl)
                .iter()
                .copied()
                .filter(|&a| a != destination && !mlpt_topo::is_star(a))
                .collect();
            if candidates.len() >= 2 {
                hops.push((ttl, candidates));
            }
        }
        hops
    }

    /// Selects the next stage after the trace or a finished rounds
    /// stage: remaining indirect hops first, then comparator hops.
    fn next_stage(&mut self) -> Phase {
        if self.hop_fanout {
            return self.next_fanned_stage();
        }
        let trace = self.trace.as_ref().expect("stage selection after trace");
        if self.next_alias < self.hops.len() {
            let (ttl, candidates) = &self.hops[self.next_alias];
            self.next_alias += 1;
            let base = EvidenceBase::from_log(&self.log, candidates);
            return Phase::Rounds {
                ttl: *ttl,
                session: AliasRoundsSession::new(
                    trace,
                    candidates,
                    base,
                    self.config.rounds.clone(),
                ),
                comparator: false,
            };
        }
        if let Some(rounds) = &self.comparator {
            if self.next_direct < self.hops.len() {
                let (ttl, candidates) = &self.hops[self.next_direct];
                self.next_direct += 1;
                let base = EvidenceBase::from_log(&self.log, candidates);
                return Phase::Rounds {
                    ttl: *ttl,
                    session: AliasRoundsSession::new(trace, candidates, base, rounds.clone()),
                    comparator: true,
                };
            }
        }
        Phase::Done
    }

    /// The fan-out counterpart of [`next_stage`](Self::next_stage): all
    /// remaining indirect hops start at once, then (after every one of
    /// them finished) all comparator hops at once.
    fn next_fanned_stage(&mut self) -> Phase {
        let trace = self.trace.as_ref().expect("stage selection after trace");
        if self.next_alias < self.hops.len() {
            let subs: Vec<(u8, AliasRoundsSession)> = self.hops[self.next_alias..]
                .iter()
                .map(|(ttl, candidates)| {
                    let base = EvidenceBase::from_log(&self.log, candidates);
                    (
                        *ttl,
                        AliasRoundsSession::new(
                            trace,
                            candidates,
                            base,
                            self.config.rounds.clone(),
                        ),
                    )
                })
                .collect();
            self.next_alias = self.hops.len();
            return Phase::Fanned(FannedRounds::new(false, subs));
        }
        if let Some(rounds) = &self.comparator {
            if self.next_direct < self.hops.len() {
                let subs: Vec<(u8, AliasRoundsSession)> = self.hops[self.next_direct..]
                    .iter()
                    .map(|(ttl, candidates)| {
                        let base = EvidenceBase::from_log(&self.log, candidates);
                        (
                            *ttl,
                            AliasRoundsSession::new(trace, candidates, base, rounds.clone()),
                        )
                    })
                    .collect();
                self.next_direct = self.hops.len();
                return Phase::Fanned(FannedRounds::new(true, subs));
            }
        }
        Phase::Done
    }

    /// Consumes the finished session into its outcome. Call only after
    /// [`poll`](ProbeSession::poll) has returned
    /// [`SessionState::Finished`].
    pub fn finish(mut self) -> MultilevelOutcome {
        debug_assert!(
            matches!(self.phase, Phase::Done),
            "finish on an unfinished session"
        );
        let trace = self
            .trace
            .take()
            .expect("a finished multilevel session holds its trace");

        // An address can appear at several hops; transitive closure
        // merges the per-hop verdicts exactly as the survey's
        // aggregation does.
        let hop_maps: Vec<RouterMap> = self
            .hop_reports
            .values()
            .filter_map(|reports| reports.last())
            .map(|last| last.partition.to_router_map())
            .collect();
        let router_map = RouterMap::aggregate(&hop_maps);

        let ip_topology = trace.to_topology();
        let router_topology = ip_topology.as_ref().map(|topo| collapse(topo, &router_map));

        MultilevelOutcome {
            multilevel: MultilevelTrace {
                trace,
                hop_reports: self.hop_reports,
                router_map,
                alias_probes: self.alias_wire,
                ip_topology,
                router_topology,
            },
            hop_evidence: self.hop_evidence,
            direct: self.direct,
            log: self.log,
            direct_wire_probes: self.direct_wire,
        }
    }
}

impl ProbeSession for MultilevelSession {
    fn poll(&mut self) -> SessionState {
        loop {
            match std::mem::replace(&mut self.phase, Phase::Done) {
                Phase::Done => return SessionState::Finished,
                Phase::Trace(mut session) => {
                    if session.poll() == SessionState::Probing {
                        self.phase = Phase::Trace(session);
                        return SessionState::Probing;
                    }
                    self.trace_stops = session.stop_contribution();
                    let trace = session.into_inner().take_trace(self.trace_wire);
                    self.hops = Self::hop_candidates(&trace);
                    self.trace = Some(trace);
                    self.phase = self.next_stage();
                }
                Phase::Rounds {
                    ttl,
                    mut session,
                    comparator,
                } => {
                    if session.poll() == SessionState::Probing {
                        self.phase = Phase::Rounds {
                            ttl,
                            session,
                            comparator,
                        };
                        return SessionState::Probing;
                    }
                    let (reports, evidence) = session.into_parts();
                    if comparator {
                        self.direct
                            .insert(ttl, DirectComparison { reports, evidence });
                    } else {
                        self.hop_reports.insert(ttl, reports);
                        self.hop_evidence.insert(ttl, evidence);
                    }
                    self.phase = self.next_stage();
                }
                Phase::Fanned(mut fanned) => {
                    if fanned.arm() {
                        self.phase = Phase::Fanned(fanned);
                        return SessionState::Probing;
                    }
                    // Every hop finished: harvest in TTL order.
                    let comparator = fanned.comparator;
                    for (ttl, session) in fanned.subs {
                        let (reports, evidence) = session.into_parts();
                        if comparator {
                            self.direct
                                .insert(ttl, DirectComparison { reports, evidence });
                        } else {
                            self.hop_reports.insert(ttl, reports);
                            self.hop_evidence.insert(ttl, evidence);
                        }
                    }
                    self.phase = self.next_stage();
                }
            }
        }
    }

    fn next_rounds(&self) -> &[ProbeRequest] {
        match &self.phase {
            Phase::Trace(session) => session.next_rounds(),
            Phase::Rounds { session, .. } => session.next_rounds(),
            Phase::Fanned(fanned) => &fanned.requests,
            Phase::Done => &[],
        }
    }

    fn on_replies(&mut self, results: &mut [Option<ProbeOutcome>]) {
        // Log every delivered observation first, in request order — the
        // stream a blocking prober would have accumulated — then forward
        // to the stage that emitted the round.
        for result in results.iter() {
            match result {
                Some(ProbeOutcome::Udp(obs)) => self.log.indirect.push(obs.clone()),
                Some(ProbeOutcome::Echo(obs)) => self.log.direct.push(obs.clone()),
                None => {}
            }
        }
        match &mut self.phase {
            Phase::Trace(session) => session.on_replies(results),
            Phase::Rounds { session, .. } => session.on_replies(results),
            Phase::Fanned(fanned) => fanned.deliver(results),
            Phase::Done => {}
        }
    }

    fn destination(&self) -> Ipv4Addr {
        self.destination
    }

    fn note_wire_probes(&mut self, count: u64) {
        match &self.phase {
            Phase::Trace(_) => self.trace_wire += count,
            Phase::Rounds {
                comparator: false, ..
            }
            | Phase::Fanned(FannedRounds {
                comparator: false, ..
            }) => self.alias_wire += count,
            Phase::Rounds {
                comparator: true, ..
            }
            | Phase::Fanned(FannedRounds {
                comparator: true, ..
            }) => self.direct_wire += count,
            Phase::Done => {}
        }
    }

    fn adopt_stop_set(&mut self, snapshot: &StopSnapshot) {
        // Adoption happens at admission, while the session is still in
        // its trace phase; the alias phases never consult the set.
        if let Phase::Trace(session) = &mut self.phase {
            session.adopt_stop_set(snapshot);
        }
    }

    fn stop_contribution(&mut self) -> Option<StopContribution> {
        match &mut self.phase {
            Phase::Trace(session) => session.stop_contribution(),
            _ => self.trace_stops.take(),
        }
    }

    fn should_retry(&self, request: &ProbeRequest) -> bool {
        match &self.phase {
            Phase::Trace(session) => session.should_retry(request),
            _ => true,
        }
    }

    fn predicted_cost(&self) -> u64 {
        if self.trace.is_none() {
            // Hop widths unknown until the trace completes: report the
            // caller's hint (0 = no estimate, sorts last).
            return self.cost_hint.unwrap_or(0);
        }
        // The exact remaining campaign cost from the discovered widths:
        // the in-flight stage's own estimate plus every not-yet-started
        // hop under the indirect and (if enabled) comparator configs.
        let mut cost = match &self.phase {
            Phase::Rounds { session, .. } => session.predicted_cost(),
            Phase::Fanned(fanned) => fanned
                .subs
                .iter()
                .map(|(_, session)| session.predicted_cost())
                .sum(),
            Phase::Trace(_) | Phase::Done => 0,
        };
        for (_, candidates) in &self.hops[self.next_alias.min(self.hops.len())..] {
            cost += self.config.rounds.predicted_probes(candidates.len());
        }
        if let Some(rounds) = &self.comparator {
            for (_, candidates) in &self.hops[self.next_direct.min(self.hops.len())..] {
                cost += rounds.predicted_probes(candidates.len());
            }
        }
        cost
    }
}

/// Runs Multilevel MDA-Lite Paris Traceroute over a packet transport —
/// the blocking driver over [`MultilevelSession`].
pub fn trace_multilevel<T: BatchTransport>(
    prober: &mut TransportProber<T>,
    config: &MultilevelConfig,
) -> MultilevelTrace {
    let mut session = MultilevelSession::new(prober.destination(), config.clone());
    drive_probes(&mut session, prober);
    session.finish().multilevel
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpt_sim::{RouterProfile, SimNetwork};
    use mlpt_topo::diamond::{all_diamond_metrics, find_diamonds};
    use mlpt_topo::graph::addr;
    use mlpt_topo::RouterId;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    /// 1-4-1 diamond; middle interfaces pair into two routers.
    fn grouped() -> (MultipathTopology, RouterMap) {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1), addr(1, 2), addr(1, 3)]);
        b.add_hop([addr(2, 0)]);
        b.connect_unmeshed(0);
        b.connect_unmeshed(1);
        let topo = b.build().unwrap();
        let routers = RouterMap::from_alias_sets([
            vec![addr(1, 0), addr(1, 1)],
            vec![addr(1, 2), addr(1, 3)],
        ]);
        (topo, routers)
    }

    #[test]
    fn multilevel_resolves_and_collapses() {
        let (topo, routers) = grouped();
        let net = SimNetwork::builder(topo.clone())
            .routers(routers.clone())
            .seed(21)
            .build();
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let result = trace_multilevel(&mut prober, &MultilevelConfig::new(21));

        // IP level: 4-wide diamond.
        let ip = result.ip_topology.as_ref().unwrap();
        assert_eq!(ip.hop(1).len(), 4);

        // Router level: collapsed to 2-wide.
        let router = result.router_topology.as_ref().unwrap();
        assert_eq!(router.hop(1).len(), 2, "four interfaces → two routers");

        // Ground truth agreement.
        assert!(result.router_map.are_aliases(addr(1, 0), addr(1, 1)));
        assert!(result.router_map.are_aliases(addr(1, 2), addr(1, 3)));
        assert!(!result.router_map.are_aliases(addr(1, 1), addr(1, 2)));

        // The diamond narrowed but did not disappear.
        let before = all_diamond_metrics(ip).pop().unwrap();
        let after = all_diamond_metrics(router).pop().unwrap();
        assert_eq!(before.max_width, 4);
        assert_eq!(after.max_width, 2);

        assert!(result.alias_probes > 0);
        assert_eq!(result.router_sizes(), vec![2, 2]);
    }

    #[test]
    fn single_router_hop_dissolves_diamond() {
        // All four middle interfaces belong to one router: the router-level
        // view must be a straight path (Table 3's "one path" case).
        let (topo, _) = grouped();
        let routers =
            RouterMap::from_alias_sets([vec![addr(1, 0), addr(1, 1), addr(1, 2), addr(1, 3)]]);
        let net = SimNetwork::builder(topo.clone())
            .routers(routers)
            .seed(33)
            .build();
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let result = trace_multilevel(&mut prober, &MultilevelConfig::new(33));
        let router = result.router_topology.as_ref().unwrap();
        assert!(find_diamonds(router).is_empty(), "diamond must dissolve");
    }

    #[test]
    fn singleton_routers_preserve_diamond() {
        // Every interface its own router (simulator default): the
        // router-level view equals the IP-level view.
        let (topo, _) = grouped();
        let net = SimNetwork::builder(topo.clone()).seed(44).build();
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let result = trace_multilevel(&mut prober, &MultilevelConfig::new(44));
        let ip = result.ip_topology.as_ref().unwrap();
        let router = result.router_topology.as_ref().unwrap();
        assert_eq!(ip.hop(1).len(), router.hop(1).len());
    }

    #[test]
    fn mpls_labels_alone_group_constant_id_routers() {
        use mlpt_sim::{IpIdProfile, MplsProfile};
        // Constant-zero IP IDs everywhere (MBT helpless), but stable MPLS
        // labels distinguish the two routers.
        let (topo, routers) = grouped();
        let profile_a = RouterProfile {
            ipid: IpIdProfile::constant_zero(),
            mpls: Some(MplsProfile {
                label: 111,
                stable: true,
            }),
            ..RouterProfile::well_behaved()
        };
        let profile_b = RouterProfile {
            ipid: IpIdProfile::constant_zero(),
            mpls: Some(MplsProfile {
                label: 222,
                stable: true,
            }),
            ..RouterProfile::well_behaved()
        };
        let net = SimNetwork::builder(topo.clone())
            .routers(routers)
            .profile(RouterId(0), profile_a)
            .profile(RouterId(1), profile_b)
            .seed(55)
            .build();
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let result = trace_multilevel(&mut prober, &MultilevelConfig::new(55));
        assert!(result.router_map.are_aliases(addr(1, 0), addr(1, 1)));
        assert!(result.router_map.are_aliases(addr(1, 2), addr(1, 3)));
        assert!(!result.router_map.are_aliases(addr(1, 0), addr(1, 2)));
    }

    /// With a single multi-candidate hop there is nothing to interleave:
    /// the fanned wave sequence degenerates to the hop's own rounds, so
    /// fan-out is bit-identical to the hop-sequential pipeline.
    #[test]
    fn single_hop_fanout_is_bit_identical() {
        let (topo, routers) = grouped();
        let run = |fanout: bool| {
            let net = SimNetwork::builder(topo.clone())
                .routers(routers.clone())
                .seed(21)
                .build();
            let mut prober = TransportProber::new(net, SRC, topo.destination());
            let mut session = MultilevelSession::new(topo.destination(), MultilevelConfig::new(21))
                .with_hop_fanout(fanout);
            drive_probes(&mut session, &mut prober);
            session.finish()
        };
        let sequential = run(false);
        let fanned = run(true);
        assert_eq!(fanned.multilevel.trace, sequential.multilevel.trace);
        assert_eq!(
            fanned.multilevel.hop_reports,
            sequential.multilevel.hop_reports
        );
        assert_eq!(fanned.hop_evidence, sequential.hop_evidence);
        assert_eq!(
            fanned.multilevel.alias_probes,
            sequential.multilevel.alias_probes
        );
        assert_eq!(
            fanned.multilevel.router_map,
            sequential.multilevel.router_map
        );
    }

    /// 1-4-4-1: two wide hops. Fan-out must cut the alias phase's
    /// round-trip chain from 2 x rounds to rounds probing waves while
    /// still resolving both hops' routers correctly and spending the
    /// same per-hop logical probe counts.
    #[test]
    fn two_hop_fanout_overlaps_round_trips() {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1), addr(1, 2), addr(1, 3)]);
        b.add_hop([addr(2, 0), addr(2, 1), addr(2, 2), addr(2, 3)]);
        b.add_hop([addr(3, 0)]);
        b.connect_unmeshed(0);
        b.connect_unmeshed(1);
        b.connect_unmeshed(2);
        let topo = b.build().unwrap();
        let routers = RouterMap::from_alias_sets([
            vec![addr(1, 0), addr(1, 1)],
            vec![addr(1, 2), addr(1, 3)],
            vec![addr(2, 0), addr(2, 1)],
            vec![addr(2, 2), addr(2, 3)],
        ]);
        let run = |fanout: bool| {
            let net = SimNetwork::builder(topo.clone())
                .routers(routers.clone())
                .seed(21)
                .build();
            let mut prober = TransportProber::new(net, SRC, topo.destination());
            let mut session = MultilevelSession::new(topo.destination(), MultilevelConfig::new(21))
                .with_hop_fanout(fanout);
            // Count parent round-trips by hand (drive_probes hides them).
            let mut rounds = 0usize;
            let mut requests: Vec<ProbeRequest> = Vec::new();
            while session.poll() == SessionState::Probing {
                rounds += 1;
                requests.clear();
                requests.extend_from_slice(session.next_rounds());
                let mut results: Vec<Option<ProbeOutcome>> = Vec::new();
                let before = prober.probes_sent();
                for request in &requests {
                    match request {
                        ProbeRequest::Udp(spec) => {
                            results.push(prober.probe(spec.flow, spec.ttl).map(ProbeOutcome::Udp))
                        }
                        ProbeRequest::Echo { target } => {
                            results.push(prober.direct_probe(*target).map(ProbeOutcome::Echo))
                        }
                    }
                }
                session.note_wire_probes(prober.probes_sent() - before);
                session.on_replies(&mut results);
            }
            (session.finish(), rounds)
        };
        let (sequential, sequential_rounds) = run(false);
        let (fanned, fanned_rounds) = run(true);

        // Both hops report all 11 rounds either way.
        for outcome in [&sequential, &fanned] {
            assert_eq!(
                outcome
                    .multilevel
                    .hop_reports
                    .keys()
                    .copied()
                    .collect::<Vec<_>>(),
                vec![2, 3]
            );
            assert!(outcome
                .multilevel
                .hop_reports
                .values()
                .all(|r| r.len() == 11));
        }
        // Round 0 is probe-free, so each hop probes for 10 waves: the
        // fanned alias phase takes 10 round-trips where the sequential
        // one takes 20 — the traces are identical, so the difference in
        // parent round-trips is exactly the alias chain cut in half.
        assert_eq!(sequential_rounds - fanned_rounds, 10);
        // Same logical probe spend per hop (the campaigns are
        // reply-independent), same router-level verdicts as the ground
        // truth that generated the IP IDs.
        for ttl in [2u8, 3] {
            assert_eq!(
                sequential.multilevel.hop_reports[&ttl]
                    .last()
                    .unwrap()
                    .cumulative_probes,
                fanned.multilevel.hop_reports[&ttl]
                    .last()
                    .unwrap()
                    .cumulative_probes,
            );
        }
        for (a, b) in [
            (addr(1, 0), addr(1, 1)),
            (addr(1, 2), addr(1, 3)),
            (addr(2, 0), addr(2, 1)),
            (addr(2, 2), addr(2, 3)),
        ] {
            assert!(fanned.multilevel.router_map.are_aliases(a, b));
        }
        assert!(!fanned
            .multilevel
            .router_map
            .are_aliases(addr(1, 0), addr(1, 2)));
    }

    #[test]
    fn hop_reports_cover_multi_vertex_hops_only() {
        let (topo, routers) = grouped();
        let net = SimNetwork::builder(topo.clone())
            .routers(routers)
            .seed(66)
            .build();
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let result = trace_multilevel(&mut prober, &MultilevelConfig::new(66));
        assert!(result.hop_reports.contains_key(&2));
        assert!(!result.hop_reports.contains_key(&1), "single-vertex hop");
        assert_eq!(result.hop_reports[&2].len(), 11, "rounds 0..=10");
    }
}
