//! Multilevel MDA-Lite Paris Traceroute (MMLPT).
//!
//! The paper's third contribution: "for the first time, a Traceroute tool
//! that provides a router-level view of multipath routes" (Sec. 4). The
//! multilevel tracer runs MDA-Lite, then — hop by hop, among the
//! addresses found at that hop, since "the aliases of a given router are
//! to be found among the addresses found at a given hop" — applies the
//! alias-resolution rounds and collapses the IP-level topology to the
//! router level.

use crate::evidence::EvidenceBase;
use crate::resolver::AliasPartition;
use crate::rounds::{run_rounds, RoundReport, RoundsConfig};
use mlpt_core::config::TraceConfig;
use mlpt_core::mda_lite::trace_mda_lite;
use mlpt_core::prober::{Prober, TransportProber};
use mlpt_core::trace::Trace;
use mlpt_topo::router::collapse;
use mlpt_topo::{MultipathTopology, RouterMap};
use mlpt_wire::transport::BatchTransport;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Configuration for a multilevel trace.
#[derive(Debug, Clone)]
pub struct MultilevelConfig {
    /// The underlying MDA-Lite trace configuration.
    pub trace: TraceConfig,
    /// The alias-resolution protocol configuration.
    pub rounds: RoundsConfig,
}

impl MultilevelConfig {
    /// Creates a configuration with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            trace: TraceConfig::new(seed),
            rounds: RoundsConfig::default(),
        }
    }
}

/// Result of a multilevel trace: the IP-level trace plus router-level
/// inference.
#[derive(Debug, Clone)]
pub struct MultilevelTrace {
    /// The underlying IP-level multipath trace.
    pub trace: Trace,
    /// Per-hop round reports (only hops with ≥ 2 candidate addresses).
    pub hop_reports: BTreeMap<u8, Vec<RoundReport>>,
    /// Final alias sets merged across hops.
    pub router_map: RouterMap,
    /// Probes spent on alias resolution (beyond the trace itself).
    pub alias_probes: u64,
    /// The discovered IP-level topology (None if destination unreached).
    pub ip_topology: Option<MultipathTopology>,
    /// The router-level topology after collapsing alias sets.
    pub router_topology: Option<MultipathTopology>,
}

impl MultilevelTrace {
    /// Final partition for one hop, if alias resolution ran there.
    pub fn final_partition(&self, ttl: u8) -> Option<&AliasPartition> {
        self.hop_reports
            .get(&ttl)
            .and_then(|r| r.last())
            .map(|r| &r.partition)
    }

    /// Sizes of all identified routers (the Fig. 12 metric).
    pub fn router_sizes(&self) -> Vec<usize> {
        self.router_map.router_sizes()
    }
}

/// Runs Multilevel MDA-Lite Paris Traceroute over a packet transport.
pub fn trace_multilevel<T: BatchTransport>(
    prober: &mut TransportProber<T>,
    config: &MultilevelConfig,
) -> MultilevelTrace {
    let trace = trace_mda_lite(prober, &config.trace);
    let after_trace = prober.probes_sent();

    let destination = trace.destination;
    let mut hop_reports: BTreeMap<u8, Vec<RoundReport>> = BTreeMap::new();
    let mut hop_maps: Vec<RouterMap> = Vec::new();

    for ttl in 1..=trace.discovery.max_observed_ttl() {
        let candidates: BTreeSet<Ipv4Addr> = trace
            .discovery
            .vertices_at(ttl)
            .iter()
            .copied()
            .filter(|&a| a != destination && !mlpt_topo::is_star(a))
            .collect();
        if candidates.len() < 2 {
            continue;
        }
        let mut base = EvidenceBase::from_log(prober.log(), &candidates);
        let reports = run_rounds(prober, &trace, &candidates, &mut base, &config.rounds);
        if let Some(last) = reports.last() {
            hop_maps.push(last.partition.to_router_map());
        }
        hop_reports.insert(ttl, reports);
    }

    // An address can appear at several hops; transitive closure merges
    // the per-hop verdicts exactly as the survey's aggregation does.
    let router_map = RouterMap::aggregate(&hop_maps);
    let alias_probes = prober.probes_sent() - after_trace;

    let ip_topology = trace.to_topology();
    let router_topology = ip_topology.as_ref().map(|topo| collapse(topo, &router_map));

    MultilevelTrace {
        trace,
        hop_reports,
        router_map,
        alias_probes,
        ip_topology,
        router_topology,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpt_sim::{RouterProfile, SimNetwork};
    use mlpt_topo::diamond::{all_diamond_metrics, find_diamonds};
    use mlpt_topo::graph::addr;
    use mlpt_topo::RouterId;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    /// 1-4-1 diamond; middle interfaces pair into two routers.
    fn grouped() -> (MultipathTopology, RouterMap) {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1), addr(1, 2), addr(1, 3)]);
        b.add_hop([addr(2, 0)]);
        b.connect_unmeshed(0);
        b.connect_unmeshed(1);
        let topo = b.build().unwrap();
        let routers = RouterMap::from_alias_sets([
            vec![addr(1, 0), addr(1, 1)],
            vec![addr(1, 2), addr(1, 3)],
        ]);
        (topo, routers)
    }

    #[test]
    fn multilevel_resolves_and_collapses() {
        let (topo, routers) = grouped();
        let net = SimNetwork::builder(topo.clone())
            .routers(routers.clone())
            .seed(21)
            .build();
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let result = trace_multilevel(&mut prober, &MultilevelConfig::new(21));

        // IP level: 4-wide diamond.
        let ip = result.ip_topology.as_ref().unwrap();
        assert_eq!(ip.hop(1).len(), 4);

        // Router level: collapsed to 2-wide.
        let router = result.router_topology.as_ref().unwrap();
        assert_eq!(router.hop(1).len(), 2, "four interfaces → two routers");

        // Ground truth agreement.
        assert!(result.router_map.are_aliases(addr(1, 0), addr(1, 1)));
        assert!(result.router_map.are_aliases(addr(1, 2), addr(1, 3)));
        assert!(!result.router_map.are_aliases(addr(1, 1), addr(1, 2)));

        // The diamond narrowed but did not disappear.
        let before = all_diamond_metrics(ip).pop().unwrap();
        let after = all_diamond_metrics(router).pop().unwrap();
        assert_eq!(before.max_width, 4);
        assert_eq!(after.max_width, 2);

        assert!(result.alias_probes > 0);
        assert_eq!(result.router_sizes(), vec![2, 2]);
    }

    #[test]
    fn single_router_hop_dissolves_diamond() {
        // All four middle interfaces belong to one router: the router-level
        // view must be a straight path (Table 3's "one path" case).
        let (topo, _) = grouped();
        let routers =
            RouterMap::from_alias_sets([vec![addr(1, 0), addr(1, 1), addr(1, 2), addr(1, 3)]]);
        let net = SimNetwork::builder(topo.clone())
            .routers(routers)
            .seed(33)
            .build();
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let result = trace_multilevel(&mut prober, &MultilevelConfig::new(33));
        let router = result.router_topology.as_ref().unwrap();
        assert!(find_diamonds(router).is_empty(), "diamond must dissolve");
    }

    #[test]
    fn singleton_routers_preserve_diamond() {
        // Every interface its own router (simulator default): the
        // router-level view equals the IP-level view.
        let (topo, _) = grouped();
        let net = SimNetwork::builder(topo.clone()).seed(44).build();
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let result = trace_multilevel(&mut prober, &MultilevelConfig::new(44));
        let ip = result.ip_topology.as_ref().unwrap();
        let router = result.router_topology.as_ref().unwrap();
        assert_eq!(ip.hop(1).len(), router.hop(1).len());
    }

    #[test]
    fn mpls_labels_alone_group_constant_id_routers() {
        use mlpt_sim::{IpIdProfile, MplsProfile};
        // Constant-zero IP IDs everywhere (MBT helpless), but stable MPLS
        // labels distinguish the two routers.
        let (topo, routers) = grouped();
        let profile_a = RouterProfile {
            ipid: IpIdProfile::constant_zero(),
            mpls: Some(MplsProfile {
                label: 111,
                stable: true,
            }),
            ..RouterProfile::well_behaved()
        };
        let profile_b = RouterProfile {
            ipid: IpIdProfile::constant_zero(),
            mpls: Some(MplsProfile {
                label: 222,
                stable: true,
            }),
            ..RouterProfile::well_behaved()
        };
        let net = SimNetwork::builder(topo.clone())
            .routers(routers)
            .profile(RouterId(0), profile_a)
            .profile(RouterId(1), profile_b)
            .seed(55)
            .build();
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let result = trace_multilevel(&mut prober, &MultilevelConfig::new(55));
        assert!(result.router_map.are_aliases(addr(1, 0), addr(1, 1)));
        assert!(result.router_map.are_aliases(addr(1, 2), addr(1, 3)));
        assert!(!result.router_map.are_aliases(addr(1, 0), addr(1, 2)));
    }

    #[test]
    fn hop_reports_cover_multi_vertex_hops_only() {
        let (topo, routers) = grouped();
        let net = SimNetwork::builder(topo.clone())
            .routers(routers)
            .seed(66)
            .build();
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let result = trace_multilevel(&mut prober, &MultilevelConfig::new(66));
        assert!(result.hop_reports.contains_key(&2));
        assert!(!result.hop_reports.contains_key(&1), "single-vertex hop");
        assert_eq!(result.hop_reports[&2].len(), 11, "rounds 0..=10");
    }
}
