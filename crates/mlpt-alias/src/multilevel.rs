//! Multilevel MDA-Lite Paris Traceroute (MMLPT).
//!
//! The paper's third contribution: "for the first time, a Traceroute tool
//! that provides a router-level view of multipath routes" (Sec. 4). The
//! multilevel tracer runs MDA-Lite, then — hop by hop, among the
//! addresses found at that hop, since "the aliases of a given router are
//! to be found among the addresses found at a given hop" — applies the
//! alias-resolution rounds and collapses the IP-level topology to the
//! router level.

use crate::evidence::EvidenceBase;
use crate::resolver::AliasPartition;
use crate::rounds::{AliasRoundsSession, RoundReport, RoundsConfig};
use mlpt_core::config::TraceConfig;
use mlpt_core::prober::{ProbeLog, Prober, TransportProber};
use mlpt_core::session::{
    drive_probes, MdaLiteSession, ProbeOutcome, ProbeRequest, ProbeSession, SessionState,
    TraceProbeSession, TraceSession,
};
use mlpt_core::trace::Trace;
use mlpt_topo::router::collapse;
use mlpt_topo::{MultipathTopology, RouterMap};
use mlpt_wire::transport::BatchTransport;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Configuration for a multilevel trace.
#[derive(Debug, Clone)]
pub struct MultilevelConfig {
    /// The underlying MDA-Lite trace configuration.
    pub trace: TraceConfig,
    /// The alias-resolution protocol configuration.
    pub rounds: RoundsConfig,
}

impl MultilevelConfig {
    /// Creates a configuration with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            trace: TraceConfig::new(seed),
            rounds: RoundsConfig::default(),
        }
    }
}

/// Result of a multilevel trace: the IP-level trace plus router-level
/// inference.
#[derive(Debug, Clone)]
pub struct MultilevelTrace {
    /// The underlying IP-level multipath trace.
    pub trace: Trace,
    /// Per-hop round reports (only hops with ≥ 2 candidate addresses).
    pub hop_reports: BTreeMap<u8, Vec<RoundReport>>,
    /// Final alias sets merged across hops.
    pub router_map: RouterMap,
    /// Probes spent on alias resolution (beyond the trace itself).
    pub alias_probes: u64,
    /// The discovered IP-level topology (None if destination unreached).
    pub ip_topology: Option<MultipathTopology>,
    /// The router-level topology after collapsing alias sets.
    pub router_topology: Option<MultipathTopology>,
}

impl MultilevelTrace {
    /// Final partition for one hop, if alias resolution ran there.
    pub fn final_partition(&self, ttl: u8) -> Option<&AliasPartition> {
        self.hop_reports
            .get(&ttl)
            .and_then(|r| r.last())
            .map(|r| &r.partition)
    }

    /// Sizes of all identified routers (the Fig. 12 metric).
    pub fn router_sizes(&self) -> Vec<usize> {
        self.router_map.router_sizes()
    }
}

/// The direct-probing comparator campaign for one hop: the MIDAR-style
/// Round 1–10 reports and the evidence base they judged against (trace +
/// indirect rounds + the direct campaign itself), as Table 2 consumes
/// them.
#[derive(Debug, Clone)]
pub struct DirectComparison {
    /// Per-round reports of the direct campaign.
    pub reports: Vec<RoundReport>,
    /// The evidence base after the campaign, seeded from everything the
    /// session had observed when the campaign started.
    pub evidence: EvidenceBase,
}

/// Everything a finished [`MultilevelSession`] produced: the multilevel
/// trace itself plus the raw material the surveys aggregate.
#[derive(Debug, Clone)]
pub struct MultilevelOutcome {
    /// The multilevel trace (what [`trace_multilevel`] returns).
    pub multilevel: MultilevelTrace,
    /// Final per-hop evidence bases of the indirect alias rounds — the
    /// bit-for-bit IP-ID series the equivalence tests compare.
    pub hop_evidence: BTreeMap<u8, EvidenceBase>,
    /// Per-hop direct comparator campaigns (empty unless enabled via
    /// [`MultilevelSession::with_direct_comparison`]).
    pub direct: BTreeMap<u8, DirectComparison>,
    /// The full observation log, in probing order.
    pub log: ProbeLog,
    /// Wire-level packets spent on the direct comparator campaigns.
    pub direct_wire_probes: u64,
}

/// Internal stage of a [`MultilevelSession`].
enum Phase {
    /// MDA-Lite tracing (boxed: the trace state machine is much larger
    /// than the rounds stage, and the phase moves through
    /// `mem::replace` on every poll).
    Trace(Box<TraceProbeSession<MdaLiteSession>>),
    /// One hop's alias-resolution rounds (`comparator` = the Table 2
    /// direct campaign rather than the trace's own indirect rounds).
    Rounds {
        ttl: u8,
        session: AliasRoundsSession,
        comparator: bool,
    },
    Done,
}

/// Multilevel MDA-Lite Paris Traceroute as one resumable sans-IO
/// [`ProbeSession`]: the MDA-Lite trace, then — hop by hop — the
/// Round 0–10 alias protocol, then (optionally) the MIDAR-style direct
/// comparator campaigns, all behind one `poll`/`next_rounds`/
/// `on_replies` surface the sweep engine can interleave across
/// destinations.
///
/// The session keeps its own [`ProbeLog`] (the observations a blocking
/// run would find in its prober's log), so each alias stage seeds its
/// evidence base from exactly the data the legacy implementation saw at
/// the same point: trace observations plus every earlier stage's
/// probing.
pub struct MultilevelSession {
    destination: Ipv4Addr,
    config: MultilevelConfig,
    comparator: Option<RoundsConfig>,
    phase: Phase,
    log: ProbeLog,
    trace: Option<Trace>,
    /// Multi-candidate hops in ascending TTL order, fixed after tracing.
    hops: Vec<(u8, BTreeSet<Ipv4Addr>)>,
    next_alias: usize,
    next_direct: usize,
    hop_reports: BTreeMap<u8, Vec<RoundReport>>,
    hop_evidence: BTreeMap<u8, EvidenceBase>,
    direct: BTreeMap<u8, DirectComparison>,
    /// Wire packets per protocol phase, fed by `note_wire_probes`.
    trace_wire: u64,
    alias_wire: u64,
    direct_wire: u64,
}

impl MultilevelSession {
    /// Creates a session tracing (then alias-resolving) towards
    /// `destination`.
    pub fn new(destination: Ipv4Addr, config: MultilevelConfig) -> Self {
        let trace_session = MdaLiteSession::new(destination, config.trace.clone());
        Self {
            destination,
            config,
            comparator: None,
            phase: Phase::Trace(Box::new(TraceProbeSession::new(trace_session))),
            log: ProbeLog::default(),
            trace: None,
            hops: Vec::new(),
            next_alias: 0,
            next_direct: 0,
            hop_reports: BTreeMap::new(),
            hop_evidence: BTreeMap::new(),
            direct: BTreeMap::new(),
            trace_wire: 0,
            alias_wire: 0,
            direct_wire: 0,
        }
    }

    /// Enables the Table 2 comparator: after the indirect rounds, each
    /// multi-candidate hop gets a probing campaign under `rounds`
    /// (typically [`crate::rounds::ProbeMethod::Direct`] with the same
    /// round counts), judged over all evidence gathered so far.
    pub fn with_direct_comparison(mut self, rounds: RoundsConfig) -> Self {
        self.comparator = Some(rounds);
        self
    }

    /// The hops eligible for alias resolution: at least two non-star,
    /// non-destination addresses (the paper: "the aliases of a given
    /// router are to be found among the addresses found at a given
    /// hop").
    fn hop_candidates(trace: &Trace) -> Vec<(u8, BTreeSet<Ipv4Addr>)> {
        let destination = trace.destination;
        let mut hops = Vec::new();
        for ttl in 1..=trace.discovery.max_observed_ttl() {
            let candidates: BTreeSet<Ipv4Addr> = trace
                .discovery
                .vertices_at(ttl)
                .iter()
                .copied()
                .filter(|&a| a != destination && !mlpt_topo::is_star(a))
                .collect();
            if candidates.len() >= 2 {
                hops.push((ttl, candidates));
            }
        }
        hops
    }

    /// Selects the next stage after the trace or a finished rounds
    /// stage: remaining indirect hops first, then comparator hops.
    fn next_stage(&mut self) -> Phase {
        let trace = self.trace.as_ref().expect("stage selection after trace");
        if self.next_alias < self.hops.len() {
            let (ttl, candidates) = &self.hops[self.next_alias];
            self.next_alias += 1;
            let base = EvidenceBase::from_log(&self.log, candidates);
            return Phase::Rounds {
                ttl: *ttl,
                session: AliasRoundsSession::new(
                    trace,
                    candidates,
                    base,
                    self.config.rounds.clone(),
                ),
                comparator: false,
            };
        }
        if let Some(rounds) = &self.comparator {
            if self.next_direct < self.hops.len() {
                let (ttl, candidates) = &self.hops[self.next_direct];
                self.next_direct += 1;
                let base = EvidenceBase::from_log(&self.log, candidates);
                return Phase::Rounds {
                    ttl: *ttl,
                    session: AliasRoundsSession::new(trace, candidates, base, rounds.clone()),
                    comparator: true,
                };
            }
        }
        Phase::Done
    }

    /// Consumes the finished session into its outcome. Call only after
    /// [`poll`](ProbeSession::poll) has returned
    /// [`SessionState::Finished`].
    pub fn finish(mut self) -> MultilevelOutcome {
        debug_assert!(
            matches!(self.phase, Phase::Done),
            "finish on an unfinished session"
        );
        let trace = self
            .trace
            .take()
            .expect("a finished multilevel session holds its trace");

        // An address can appear at several hops; transitive closure
        // merges the per-hop verdicts exactly as the survey's
        // aggregation does.
        let hop_maps: Vec<RouterMap> = self
            .hop_reports
            .values()
            .filter_map(|reports| reports.last())
            .map(|last| last.partition.to_router_map())
            .collect();
        let router_map = RouterMap::aggregate(&hop_maps);

        let ip_topology = trace.to_topology();
        let router_topology = ip_topology.as_ref().map(|topo| collapse(topo, &router_map));

        MultilevelOutcome {
            multilevel: MultilevelTrace {
                trace,
                hop_reports: self.hop_reports,
                router_map,
                alias_probes: self.alias_wire,
                ip_topology,
                router_topology,
            },
            hop_evidence: self.hop_evidence,
            direct: self.direct,
            log: self.log,
            direct_wire_probes: self.direct_wire,
        }
    }
}

impl ProbeSession for MultilevelSession {
    fn poll(&mut self) -> SessionState {
        loop {
            match std::mem::replace(&mut self.phase, Phase::Done) {
                Phase::Done => return SessionState::Finished,
                Phase::Trace(mut session) => {
                    if session.poll() == SessionState::Probing {
                        self.phase = Phase::Trace(session);
                        return SessionState::Probing;
                    }
                    let trace = session.into_inner().take_trace(self.trace_wire);
                    self.hops = Self::hop_candidates(&trace);
                    self.trace = Some(trace);
                    self.phase = self.next_stage();
                }
                Phase::Rounds {
                    ttl,
                    mut session,
                    comparator,
                } => {
                    if session.poll() == SessionState::Probing {
                        self.phase = Phase::Rounds {
                            ttl,
                            session,
                            comparator,
                        };
                        return SessionState::Probing;
                    }
                    let (reports, evidence) = session.into_parts();
                    if comparator {
                        self.direct
                            .insert(ttl, DirectComparison { reports, evidence });
                    } else {
                        self.hop_reports.insert(ttl, reports);
                        self.hop_evidence.insert(ttl, evidence);
                    }
                    self.phase = self.next_stage();
                }
            }
        }
    }

    fn next_rounds(&self) -> &[ProbeRequest] {
        match &self.phase {
            Phase::Trace(session) => session.next_rounds(),
            Phase::Rounds { session, .. } => session.next_rounds(),
            Phase::Done => &[],
        }
    }

    fn on_replies(&mut self, results: &mut [Option<ProbeOutcome>]) {
        // Log every delivered observation first, in request order — the
        // stream a blocking prober would have accumulated — then forward
        // to the stage that emitted the round.
        for result in results.iter() {
            match result {
                Some(ProbeOutcome::Udp(obs)) => self.log.indirect.push(obs.clone()),
                Some(ProbeOutcome::Echo(obs)) => self.log.direct.push(obs.clone()),
                None => {}
            }
        }
        match &mut self.phase {
            Phase::Trace(session) => session.on_replies(results),
            Phase::Rounds { session, .. } => session.on_replies(results),
            Phase::Done => {}
        }
    }

    fn destination(&self) -> Ipv4Addr {
        self.destination
    }

    fn note_wire_probes(&mut self, count: u64) {
        match &self.phase {
            Phase::Trace(_) => self.trace_wire += count,
            Phase::Rounds {
                comparator: false, ..
            } => self.alias_wire += count,
            Phase::Rounds {
                comparator: true, ..
            } => self.direct_wire += count,
            Phase::Done => {}
        }
    }
}

/// Runs Multilevel MDA-Lite Paris Traceroute over a packet transport —
/// the blocking driver over [`MultilevelSession`].
pub fn trace_multilevel<T: BatchTransport>(
    prober: &mut TransportProber<T>,
    config: &MultilevelConfig,
) -> MultilevelTrace {
    let mut session = MultilevelSession::new(prober.destination(), config.clone());
    drive_probes(&mut session, prober);
    session.finish().multilevel
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpt_sim::{RouterProfile, SimNetwork};
    use mlpt_topo::diamond::{all_diamond_metrics, find_diamonds};
    use mlpt_topo::graph::addr;
    use mlpt_topo::RouterId;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    /// 1-4-1 diamond; middle interfaces pair into two routers.
    fn grouped() -> (MultipathTopology, RouterMap) {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1), addr(1, 2), addr(1, 3)]);
        b.add_hop([addr(2, 0)]);
        b.connect_unmeshed(0);
        b.connect_unmeshed(1);
        let topo = b.build().unwrap();
        let routers = RouterMap::from_alias_sets([
            vec![addr(1, 0), addr(1, 1)],
            vec![addr(1, 2), addr(1, 3)],
        ]);
        (topo, routers)
    }

    #[test]
    fn multilevel_resolves_and_collapses() {
        let (topo, routers) = grouped();
        let net = SimNetwork::builder(topo.clone())
            .routers(routers.clone())
            .seed(21)
            .build();
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let result = trace_multilevel(&mut prober, &MultilevelConfig::new(21));

        // IP level: 4-wide diamond.
        let ip = result.ip_topology.as_ref().unwrap();
        assert_eq!(ip.hop(1).len(), 4);

        // Router level: collapsed to 2-wide.
        let router = result.router_topology.as_ref().unwrap();
        assert_eq!(router.hop(1).len(), 2, "four interfaces → two routers");

        // Ground truth agreement.
        assert!(result.router_map.are_aliases(addr(1, 0), addr(1, 1)));
        assert!(result.router_map.are_aliases(addr(1, 2), addr(1, 3)));
        assert!(!result.router_map.are_aliases(addr(1, 1), addr(1, 2)));

        // The diamond narrowed but did not disappear.
        let before = all_diamond_metrics(ip).pop().unwrap();
        let after = all_diamond_metrics(router).pop().unwrap();
        assert_eq!(before.max_width, 4);
        assert_eq!(after.max_width, 2);

        assert!(result.alias_probes > 0);
        assert_eq!(result.router_sizes(), vec![2, 2]);
    }

    #[test]
    fn single_router_hop_dissolves_diamond() {
        // All four middle interfaces belong to one router: the router-level
        // view must be a straight path (Table 3's "one path" case).
        let (topo, _) = grouped();
        let routers =
            RouterMap::from_alias_sets([vec![addr(1, 0), addr(1, 1), addr(1, 2), addr(1, 3)]]);
        let net = SimNetwork::builder(topo.clone())
            .routers(routers)
            .seed(33)
            .build();
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let result = trace_multilevel(&mut prober, &MultilevelConfig::new(33));
        let router = result.router_topology.as_ref().unwrap();
        assert!(find_diamonds(router).is_empty(), "diamond must dissolve");
    }

    #[test]
    fn singleton_routers_preserve_diamond() {
        // Every interface its own router (simulator default): the
        // router-level view equals the IP-level view.
        let (topo, _) = grouped();
        let net = SimNetwork::builder(topo.clone()).seed(44).build();
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let result = trace_multilevel(&mut prober, &MultilevelConfig::new(44));
        let ip = result.ip_topology.as_ref().unwrap();
        let router = result.router_topology.as_ref().unwrap();
        assert_eq!(ip.hop(1).len(), router.hop(1).len());
    }

    #[test]
    fn mpls_labels_alone_group_constant_id_routers() {
        use mlpt_sim::{IpIdProfile, MplsProfile};
        // Constant-zero IP IDs everywhere (MBT helpless), but stable MPLS
        // labels distinguish the two routers.
        let (topo, routers) = grouped();
        let profile_a = RouterProfile {
            ipid: IpIdProfile::constant_zero(),
            mpls: Some(MplsProfile {
                label: 111,
                stable: true,
            }),
            ..RouterProfile::well_behaved()
        };
        let profile_b = RouterProfile {
            ipid: IpIdProfile::constant_zero(),
            mpls: Some(MplsProfile {
                label: 222,
                stable: true,
            }),
            ..RouterProfile::well_behaved()
        };
        let net = SimNetwork::builder(topo.clone())
            .routers(routers)
            .profile(RouterId(0), profile_a)
            .profile(RouterId(1), profile_b)
            .seed(55)
            .build();
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let result = trace_multilevel(&mut prober, &MultilevelConfig::new(55));
        assert!(result.router_map.are_aliases(addr(1, 0), addr(1, 1)));
        assert!(result.router_map.are_aliases(addr(1, 2), addr(1, 3)));
        assert!(!result.router_map.are_aliases(addr(1, 0), addr(1, 2)));
    }

    #[test]
    fn hop_reports_cover_multi_vertex_hops_only() {
        let (topo, routers) = grouped();
        let net = SimNetwork::builder(topo.clone())
            .routers(routers)
            .seed(66)
            .build();
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let result = trace_multilevel(&mut prober, &MultilevelConfig::new(66));
        assert!(result.hop_reports.contains_key(&2));
        assert!(!result.hop_reports.contains_key(&1), "single-vertex hop");
        assert_eq!(result.hop_reports[&2].len(), 11, "rounds 0..=10");
    }
}
