//! Combining evidence into alias sets.
//!
//! MMLPT follows "the MBT's set-based schema for alias identification"
//! (Sec. 4.1): candidate addresses at a hop form sets that probing
//! evidence refines. Pairs are judged from three sources — MBT, initial
//! TTL fingerprints and MPLS labels — and a deterministic union-find
//! respecting negative evidence produces the partition. Each resulting
//! multi-address set is then given one of the paper's three outcomes:
//! accepted as a router, rejected, or "unable to determine".

use crate::evidence::EvidenceBase;
use crate::mbt::{test_pair, MbtParams, PairCompatibility};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Verdict for one pair of addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairVerdict {
    /// Positive evidence they share a router (MBT-compatible, or matching
    /// stable MPLS labels).
    Alias,
    /// Weak positive evidence only: the MBT can never conclude for these
    /// addresses (constant / random / echoed IP IDs) but their complete
    /// signatures agree, so the set-based schema keeps them together —
    /// the paper's false-positive mechanism (Sec. 4.1).
    WeakAlias,
    /// Definitive evidence they do not (MBT violation, fingerprint or
    /// label conflict).
    NotAlias,
    /// Nothing conclusive either way.
    Undetermined,
}

/// Which probing method's IP-ID series the MBT should consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeriesSource {
    /// Time Exceeded replies (MMLPT's indirect probing).
    Indirect,
    /// Echo replies (MIDAR-style direct probing).
    Direct,
}

/// Judges one pair from the accumulated evidence.
pub fn judge_pair(
    base: &EvidenceBase,
    a: Ipv4Addr,
    b: Ipv4Addr,
    source: SeriesSource,
    params: &MbtParams,
) -> PairVerdict {
    let (Some(ea), Some(eb)) = (base.get(a), base.get(b)) else {
        return PairVerdict::Undetermined;
    };

    // Signature-based negative evidence first: cheap and decisive.
    if ea.fingerprint.conflicts(&eb.fingerprint) {
        return PairVerdict::NotAlias;
    }
    if ea.mpls.conflicts(&eb.mpls) {
        return PairVerdict::NotAlias;
    }

    let (sa, sb) = match source {
        SeriesSource::Indirect => (&ea.indirect_series, &eb.indirect_series),
        SeriesSource::Direct => (&ea.direct_series, &eb.direct_series),
    };
    match test_pair(sa, sb, params) {
        PairCompatibility::Incompatible => PairVerdict::NotAlias,
        PairCompatibility::Compatible => PairVerdict::Alias,
        PairCompatibility::Unknown => {
            // Matching stable MPLS labels carry a merge on their own
            // (Sec. 4.1: "highly likely … same router").
            if ea.mpls.matches(&eb.mpls) {
                return PairVerdict::Alias;
            }
            // Signature fallback: when the MBT can never conclude (both
            // series permanently unusable — constant, random or echoing
            // IDs) but the *complete* fingerprints agree, the addresses
            // stay together. This is exactly the paper's false-positive
            // mechanism: "routers having identical fingerprints and MPLS
            // signatures alongside a lack of sufficient MBT probing"
            // (Sec. 4.1). Note the direct fingerprint component only
            // exists from Round 1 on, which is part of why Round 0 recall
            // trails Round 10 (Fig. 5).
            let unusable_for_good = |e: &crate::evidence::AddressEvidence| {
                let class = crate::series::classify_series(
                    match source {
                        SeriesSource::Indirect => &e.indirect_series,
                        SeriesSource::Direct => &e.direct_series,
                    },
                    params.velocity_bound,
                    params.slack,
                );
                matches!(
                    class,
                    crate::series::SeriesClass::Constant(_)
                        | crate::series::SeriesClass::EchoesProbe
                        | crate::series::SeriesClass::NonMonotonic
                )
            };
            let complete = |e: &crate::evidence::AddressEvidence| {
                e.fingerprint.indirect_initial_ttl.is_some()
                    && e.fingerprint.direct_initial_ttl.is_some()
            };
            if unusable_for_good(ea)
                && unusable_for_good(eb)
                && complete(ea)
                && complete(eb)
                && ea.fingerprint == eb.fingerprint
            {
                PairVerdict::WeakAlias
            } else {
                PairVerdict::Undetermined
            }
        }
    }
}

/// A partition of candidate addresses into alias sets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AliasPartition {
    sets: Vec<BTreeSet<Ipv4Addr>>,
}

impl AliasPartition {
    /// The alias sets, singletons included, deterministically ordered.
    pub fn sets(&self) -> &[BTreeSet<Ipv4Addr>] {
        &self.sets
    }

    /// Only the multi-address sets — the "routers" the tool identifies.
    pub fn routers(&self) -> impl Iterator<Item = &BTreeSet<Ipv4Addr>> {
        self.sets.iter().filter(|s| s.len() >= 2)
    }

    /// True if `a` and `b` ended up in the same set.
    pub fn same_set(&self, a: Ipv4Addr, b: Ipv4Addr) -> bool {
        self.sets.iter().any(|s| s.contains(&a) && s.contains(&b))
    }

    /// All unordered alias pairs asserted by this partition.
    pub fn pairs(&self) -> BTreeSet<(Ipv4Addr, Ipv4Addr)> {
        let mut out = BTreeSet::new();
        for set in &self.sets {
            let v: Vec<Ipv4Addr> = set.iter().copied().collect();
            for i in 0..v.len() {
                for j in i + 1..v.len() {
                    out.insert((v[i], v[j]));
                }
            }
        }
        out
    }

    /// Converts to the topology-level router map.
    pub fn to_router_map(&self) -> mlpt_topo::RouterMap {
        mlpt_topo::RouterMap::from_alias_sets(
            self.routers()
                .map(|s| s.iter().copied().collect::<Vec<_>>()),
        )
    }
}

/// Pairwise precision/recall of `candidate` against `reference` — how
/// Fig. 5 scores each round against Round 10.
pub fn precision_recall(candidate: &AliasPartition, reference: &AliasPartition) -> (f64, f64) {
    let cp = candidate.pairs();
    let rp = reference.pairs();
    let tp = cp.intersection(&rp).count() as f64;
    let precision = if cp.is_empty() {
        1.0
    } else {
        tp / cp.len() as f64
    };
    let recall = if rp.is_empty() {
        1.0
    } else {
        tp / rp.len() as f64
    };
    (precision, recall)
}

/// Builds the partition over `candidates`: union-find over `Alias` pairs,
/// refusing merges that would place a `NotAlias` pair in one set (the
/// deterministic analogue of the MBT's split-refine loop).
pub fn resolve(
    base: &EvidenceBase,
    candidates: &BTreeSet<Ipv4Addr>,
    source: SeriesSource,
    params: &MbtParams,
) -> AliasPartition {
    let addrs: Vec<Ipv4Addr> = candidates.iter().copied().collect();
    let index: BTreeMap<Ipv4Addr, usize> = addrs.iter().enumerate().map(|(i, &a)| (a, i)).collect();

    // Pair verdicts.
    let n = addrs.len();
    let mut alias_pairs: Vec<(usize, usize)> = Vec::new();
    let mut conflict = vec![BTreeSet::<usize>::new(); n];
    let mut weak_pairs: Vec<(usize, usize)> = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            match judge_pair(base, addrs[i], addrs[j], source, params) {
                PairVerdict::Alias => alias_pairs.push((i, j)),
                PairVerdict::WeakAlias => weak_pairs.push((i, j)),
                PairVerdict::NotAlias => {
                    conflict[i].insert(j);
                    conflict[j].insert(i);
                }
                PairVerdict::Undetermined => {}
            }
        }
    }
    // Strong merges first, then weak ones — a weak merge never overrides
    // structure the strong evidence established.
    alias_pairs.extend(weak_pairs);

    // Union-find with conflict awareness.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut members: Vec<BTreeSet<usize>> = (0..n).map(|i| BTreeSet::from([i])).collect();

    for (i, j) in alias_pairs {
        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
        if ri == rj {
            continue;
        }
        // A merge is blocked if any cross pair conflicts.
        let blocked = members[ri]
            .iter()
            .any(|&x| members[rj].iter().any(|&y| conflict[x].contains(&y)));
        if blocked {
            continue;
        }
        let (keep, absorb) = if members[ri].len() >= members[rj].len() {
            (ri, rj)
        } else {
            (rj, ri)
        };
        parent[absorb] = keep;
        let moved = std::mem::take(&mut members[absorb]);
        members[keep].extend(moved);
    }

    let mut sets: Vec<BTreeSet<Ipv4Addr>> = Vec::new();
    let mut seen_roots = BTreeMap::new();
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let root = find(&mut parent, i);
        let entry = seen_roots.entry(root).or_insert_with(|| {
            sets.push(BTreeSet::new());
            sets.len() - 1
        });
        sets[*entry].insert(addrs[i]);
    }
    let _ = index;
    sets.sort();
    AliasPartition { sets }
}

/// One method's judgement of a *given* candidate set (used for the
/// Table 2 cross-tool comparison): Accept if every pair is positively
/// compatible, Reject if any pair has definitive negative evidence,
/// Unable otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SetVerdict {
    /// The set holds together under this method's evidence.
    Accept,
    /// Some pair in the set is definitively not aliased.
    Reject,
    /// The method cannot determine membership for at least one address.
    Unable,
}

/// Judges a candidate set under one series source.
pub fn judge_set(
    base: &EvidenceBase,
    set: &BTreeSet<Ipv4Addr>,
    source: SeriesSource,
    params: &MbtParams,
) -> SetVerdict {
    let addrs: Vec<Ipv4Addr> = set.iter().copied().collect();
    let mut any_unknown = false;
    for i in 0..addrs.len() {
        for j in i + 1..addrs.len() {
            match judge_pair(base, addrs[i], addrs[j], source, params) {
                PairVerdict::NotAlias => return SetVerdict::Reject,
                // A weak (signature-only) pair is not a validation: the
                // method is unable to confirm the set (the paper's
                // constant-IP-ID inconclusive case).
                PairVerdict::Undetermined | PairVerdict::WeakAlias => any_unknown = true,
                PairVerdict::Alias => {}
            }
        }
    }
    if any_unknown {
        SetVerdict::Unable
    } else {
        SetVerdict::Accept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::IpIdSample;

    fn addr(x: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, x)
    }

    fn sample(t: u64, id: u16) -> IpIdSample {
        IpIdSample {
            timestamp: t,
            ip_id: id,
            probe_ip_id: 0xFFFF,
        }
    }

    /// Two addresses on one shared counter, one on an independent counter.
    fn three_address_base() -> (EvidenceBase, BTreeSet<Ipv4Addr>) {
        let mut base = EvidenceBase::new();
        // Shared counter ~4/tick: A at t=0,3,6...; B at t=1,4,7...
        for i in 0..10u64 {
            base.entry(addr(1))
                .indirect_series
                .push(sample(3 * i, (100 + 12 * i) as u16));
            base.entry(addr(2))
                .indirect_series
                .push(sample(3 * i + 1, (104 + 12 * i) as u16));
            base.entry(addr(3))
                .indirect_series
                .push(sample(3 * i + 2, (40_000u64 + 12 * i) as u16));
        }
        for a in [addr(1), addr(2), addr(3)] {
            base.entry(a).fingerprint.indirect_initial_ttl = Some(255);
        }
        let candidates = BTreeSet::from([addr(1), addr(2), addr(3)]);
        (base, candidates)
    }

    #[test]
    fn resolve_groups_shared_counter() {
        let (base, candidates) = three_address_base();
        let partition = resolve(
            &base,
            &candidates,
            SeriesSource::Indirect,
            &MbtParams::default(),
        );
        assert!(partition.same_set(addr(1), addr(2)));
        assert!(!partition.same_set(addr(1), addr(3)));
        assert_eq!(partition.routers().count(), 1);
    }

    #[test]
    fn fingerprint_conflict_blocks_merge() {
        let (mut base, candidates) = three_address_base();
        base.entry(addr(2)).fingerprint.indirect_initial_ttl = Some(64);
        let partition = resolve(
            &base,
            &candidates,
            SeriesSource::Indirect,
            &MbtParams::default(),
        );
        assert!(!partition.same_set(addr(1), addr(2)));
    }

    #[test]
    fn mpls_labels_merge_without_series() {
        use crate::evidence::MplsEvidence;
        let mut base = EvidenceBase::new();
        base.entry(addr(1)).mpls = MplsEvidence::Stable(500);
        base.entry(addr(2)).mpls = MplsEvidence::Stable(500);
        base.entry(addr(3)).mpls = MplsEvidence::Stable(600);
        let candidates = BTreeSet::from([addr(1), addr(2), addr(3)]);
        let partition = resolve(
            &base,
            &candidates,
            SeriesSource::Indirect,
            &MbtParams::default(),
        );
        assert!(partition.same_set(addr(1), addr(2)));
        assert!(!partition.same_set(addr(1), addr(3)));
    }

    #[test]
    fn pairs_and_precision_recall() {
        let p1 = AliasPartition {
            sets: vec![
                BTreeSet::from([addr(1), addr(2), addr(3)]),
                BTreeSet::from([addr(4)]),
            ],
        };
        let p2 = AliasPartition {
            sets: vec![
                BTreeSet::from([addr(1), addr(2)]),
                BTreeSet::from([addr(3)]),
                BTreeSet::from([addr(4)]),
            ],
        };
        // p1 asserts 3 pairs, p2 asserts 1 pair (1,2).
        let (precision, recall) = precision_recall(&p1, &p2);
        assert!((precision - 1.0 / 3.0).abs() < 1e-12);
        assert!((recall - 1.0).abs() < 1e-12);
        let (precision, recall) = precision_recall(&p2, &p1);
        assert!((precision - 1.0).abs() < 1e-12);
        assert!((recall - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn judge_set_verdicts() {
        let (base, _) = three_address_base();
        let params = MbtParams::default();
        assert_eq!(
            judge_set(
                &base,
                &BTreeSet::from([addr(1), addr(2)]),
                SeriesSource::Indirect,
                &params
            ),
            SetVerdict::Accept
        );
        assert_eq!(
            judge_set(
                &base,
                &BTreeSet::from([addr(1), addr(3)]),
                SeriesSource::Indirect,
                &params
            ),
            SetVerdict::Reject
        );
        // Direct series absent: unable.
        assert_eq!(
            judge_set(
                &base,
                &BTreeSet::from([addr(1), addr(2)]),
                SeriesSource::Direct,
                &params
            ),
            SetVerdict::Unable
        );
    }

    #[test]
    fn conflict_blocks_transitive_merge() {
        // A~B alias, B~C alias, A–C conflict: C must not join {A, B}.
        let mut base = EvidenceBase::new();
        // Shared counter evidence for A+B and B+C via interleaving; but
        // give A and C conflicting fingerprints.
        for i in 0..10u64 {
            base.entry(addr(1))
                .indirect_series
                .push(sample(4 * i, (100 + 8 * i) as u16));
            base.entry(addr(2))
                .indirect_series
                .push(sample(4 * i + 1, (102 + 8 * i) as u16));
            base.entry(addr(3))
                .indirect_series
                .push(sample(4 * i + 2, (104 + 8 * i) as u16));
        }
        base.entry(addr(1)).fingerprint.indirect_initial_ttl = Some(255);
        base.entry(addr(3)).fingerprint.indirect_initial_ttl = Some(64);
        let candidates = BTreeSet::from([addr(1), addr(2), addr(3)]);
        let partition = resolve(
            &base,
            &candidates,
            SeriesSource::Indirect,
            &MbtParams::default(),
        );
        assert!(!partition.same_set(addr(1), addr(3)), "conflict must hold");
        // B joins exactly one of them (deterministically).
        let with_b = partition.same_set(addr(1), addr(2)) || partition.same_set(addr(2), addr(3));
        assert!(with_b);
    }
}
