//! The Round 0–10 alias-resolution probing protocol (Sec. 4.2).
//!
//! "Round 0 is based on just the data obtained through MDA-Lite Paris
//! Traceroute, with no additional probing. … Round 1 adds one direct
//! probe to each of the IP addresses at a given hop, in order to provide
//! more complete Network Fingerprinting signatures. It also is the first
//! round of MBT probing, attempting to elicit 30 replies per address.
//! Each subsequent round through to Round 10 consists of an additional 30
//! indirect probes per address."
//!
//! [`AliasRoundsSession`] implements that protocol for either probing
//! method — indirect (MMLPT's own) or direct (the MIDAR-style comparator
//! of Table 2) — as a resumable sans-IO [`ProbeSession`], interleaving
//! the per-address probes so the IP-ID samples properly alternate for
//! the MBT. The interleaving is **semantically load-bearing**: the MBT
//! merges two addresses' samples into one would-be-monotonic sequence,
//! so the per-round probe order is part of the protocol, not a
//! scheduling detail. The session therefore emits each protocol round as
//! one deterministic request list (whose order no driver may change),
//! and any conforming driver — the blocking [`run_rounds`] loop or the
//! concurrent sweep engine — produces bit-identical evidence.
//!
//! Conveniently, the protocol's probe sequence does not depend on
//! replies at all (unlike the tracing algorithms): every round's
//! requests are computable up front from the trace and the candidate
//! set. Only the partitions computed *after* each round consume the
//! accumulated evidence.

use crate::evidence::EvidenceBase;
use crate::mbt::MbtParams;
use crate::resolver::{resolve, AliasPartition, SeriesSource};
use mlpt_core::prober::Prober;
use mlpt_core::session::{drive_probes, ProbeOutcome, ProbeRequest, ProbeSession, SessionState};
use mlpt_core::trace::Trace;
use mlpt_wire::FlowId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Which probing style elicits the MBT's IP-ID samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeMethod {
    /// TTL-limited UDP probes eliciting Time Exceeded (MMLPT).
    Indirect,
    /// ICMP echo probes eliciting Echo Reply (MIDAR-style).
    Direct,
}

impl ProbeMethod {
    /// The series the resolver should consult for this method.
    pub fn series_source(self) -> SeriesSource {
        match self {
            ProbeMethod::Indirect => SeriesSource::Indirect,
            ProbeMethod::Direct => SeriesSource::Direct,
        }
    }
}

/// Protocol configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundsConfig {
    /// Number of probing rounds after Round 0 (the paper uses 10).
    pub rounds: u32,
    /// Replies attempted per address per round (the paper uses 30).
    pub replies_per_round: u32,
    /// Probing method for the MBT series.
    pub method: ProbeMethod,
    /// MBT parameters.
    pub mbt: MbtParams,
}

impl Default for RoundsConfig {
    fn default() -> Self {
        Self {
            rounds: 10,
            replies_per_round: 30,
            method: ProbeMethod::Indirect,
            mbt: MbtParams::default(),
        }
    }
}

impl RoundsConfig {
    /// Predicted probe cost of a full Round 0–N campaign over a hop with
    /// `candidates` addresses: one fingerprint-completing echo per
    /// candidate in Round 1, plus `replies_per_round` MBT probes per
    /// candidate in each of the `rounds` probing rounds. This is the
    /// admission-time cost model behind
    /// [`Admission::CostAware`](mlpt_core::engine::Admission::CostAware):
    /// the paper's campaigns are reply-independent, so the cost of a hop
    /// is known exactly from its width before a single alias probe flies
    /// (unreachable candidates can only make the real cost smaller).
    pub fn predicted_probes(&self, candidates: usize) -> u64 {
        let candidates = candidates as u64;
        candidates + u64::from(self.rounds) * u64::from(self.replies_per_round) * candidates
    }
}

/// Outcome of one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Round number (0 = trace data only).
    pub round: u32,
    /// The alias partition computed after this round.
    pub partition: AliasPartition,
    /// Alias-resolution probes sent *so far* (cumulative, excluding the
    /// trace's own probes).
    pub cumulative_probes: u64,
}

/// How to elicit an indirect reply from a specific interface: a flow known
/// to reach it and the TTL at which it answers, harvested from the trace.
fn indirect_targets(
    trace: &Trace,
    candidates: &BTreeSet<Ipv4Addr>,
) -> BTreeMap<Ipv4Addr, (Vec<FlowId>, u8)> {
    let mut map = BTreeMap::new();
    for ttl in 1..=trace.discovery.max_observed_ttl() {
        for &addr in trace.discovery.vertices_at(ttl) {
            if candidates.contains(&addr) && !map.contains_key(&addr) {
                let flows: Vec<FlowId> = trace
                    .discovery
                    .flows_reaching(ttl, addr)
                    .into_iter()
                    .collect();
                if !flows.is_empty() {
                    map.insert(addr, (flows, ttl));
                }
            }
        }
    }
    map
}

/// The Round 0–10 protocol as a resumable sans-IO [`ProbeSession`].
///
/// One session covers one candidate set (typically the addresses of one
/// hop). Each [`poll`](ProbeSession::poll) arms one protocol round as a
/// single request list: Round 1 leads with one direct probe per
/// candidate (fingerprint completion), and every round carries
/// `replies_per_round` MBT probes per address interleaved address by
/// address — the order the MBT's merged-series test depends on. After
/// each round's replies the session ingests the evidence and appends a
/// [`RoundReport`] with the partition so far.
pub struct AliasRoundsSession {
    destination: Ipv4Addr,
    candidates: BTreeSet<Ipv4Addr>,
    targets: BTreeMap<Ipv4Addr, (Vec<FlowId>, u8)>,
    base: EvidenceBase,
    config: RoundsConfig,
    source: SeriesSource,
    flow_cursor: BTreeMap<Ipv4Addr, usize>,
    reports: Vec<RoundReport>,
    /// Logical probes dispatched so far (the paper's per-round cost
    /// counter: one per probe attempted, unanswered included, transport
    /// retries excluded).
    probes: u64,
    /// The next protocol round to probe (1 ..= `config.rounds`).
    round: u32,
    requests: Vec<ProbeRequest>,
    armed: bool,
}

impl AliasRoundsSession {
    /// Creates a session over `candidates`. `base` must already hold the
    /// Round 0 evidence (seed it with [`EvidenceBase::from_log`]); the
    /// Round 0 report is computed immediately, before any probing.
    pub fn new(
        trace: &Trace,
        candidates: &BTreeSet<Ipv4Addr>,
        base: EvidenceBase,
        config: RoundsConfig,
    ) -> Self {
        let source = config.method.series_source();
        let targets = indirect_targets(trace, candidates);
        let round0 = RoundReport {
            round: 0,
            partition: resolve(&base, candidates, source, &config.mbt),
            cumulative_probes: 0,
        };
        let mut reports = Vec::with_capacity(config.rounds as usize + 1);
        reports.push(round0);
        Self {
            destination: trace.destination,
            candidates: candidates.clone(),
            targets,
            base,
            config,
            source,
            flow_cursor: BTreeMap::new(),
            reports,
            probes: 0,
            round: 1,
            requests: Vec::new(),
            armed: false,
        }
    }

    /// The reports accumulated so far (round 0 included).
    pub fn reports(&self) -> &[RoundReport] {
        &self.reports
    }

    /// Consumes the session into its reports and final evidence base.
    pub fn into_parts(self) -> (Vec<RoundReport>, EvidenceBase) {
        (self.reports, self.base)
    }

    /// Builds round `self.round`'s request list into `self.requests`.
    /// Deterministic and reply-independent; advances the flow cursors.
    fn build_round(&mut self) {
        self.requests.clear();
        // Round 1 completes fingerprints with one direct probe each.
        if self.round == 1 {
            self.requests.extend(
                self.candidates
                    .iter()
                    .map(|&target| ProbeRequest::Echo { target }),
            );
        }
        // One MBT round: `replies_per_round` probes per address,
        // interleaved address by address so the samples alternate.
        for _rep in 0..self.config.replies_per_round {
            for &addr in &self.candidates {
                match self.config.method {
                    ProbeMethod::Indirect => {
                        let Some((flows, ttl)) = self.targets.get(&addr) else {
                            continue; // no flow known to reach it
                        };
                        let cursor = self.flow_cursor.entry(addr).or_insert(0);
                        let flow = flows[*cursor % flows.len()];
                        *cursor += 1;
                        self.requests
                            .push(ProbeRequest::Udp(mlpt_core::prober::ProbeSpec::new(
                                flow, *ttl,
                            )));
                    }
                    ProbeMethod::Direct => {
                        self.requests.push(ProbeRequest::Echo { target: addr });
                    }
                }
            }
        }
    }

    /// Closes the current round: report the partition and advance.
    fn finish_round(&mut self) {
        self.reports.push(RoundReport {
            round: self.round,
            partition: resolve(&self.base, &self.candidates, self.source, &self.config.mbt),
            cumulative_probes: self.probes,
        });
        self.round += 1;
        self.armed = false;
    }
}

impl ProbeSession for AliasRoundsSession {
    fn poll(&mut self) -> SessionState {
        if self.armed {
            return SessionState::Probing;
        }
        while self.round <= self.config.rounds {
            self.build_round();
            if self.requests.is_empty() {
                // Nothing probeable this round (e.g. indirect method with
                // no reachable candidates): report over the evidence as
                // it stands and move on, exactly as the blocking loop
                // did.
                self.finish_round();
                continue;
            }
            self.armed = true;
            return SessionState::Probing;
        }
        SessionState::Finished
    }

    fn next_rounds(&self) -> &[ProbeRequest] {
        &self.requests
    }

    fn on_replies(&mut self, results: &mut [Option<ProbeOutcome>]) {
        if !self.armed {
            return;
        }
        debug_assert_eq!(
            self.requests.len(),
            results.len(),
            "one result slot per request"
        );
        for (request, result) in self.requests.iter().zip(results.iter_mut()) {
            self.probes += 1;
            match (request, result.take()) {
                (ProbeRequest::Udp(_), Some(ProbeOutcome::Udp(obs))) => {
                    self.base.add_indirect(&obs, 0);
                }
                // A lost indirect probe contributes nothing (the blocking
                // loop's `if let Some(obs)`).
                (ProbeRequest::Udp(_), _) => {}
                (ProbeRequest::Echo { .. }, Some(ProbeOutcome::Echo(obs))) => {
                    self.base.add_direct(&obs);
                }
                // An unanswered direct probe is evidence in itself
                // (MIDAR's dominant inconclusive cause).
                (ProbeRequest::Echo { target }, _) => self.base.add_direct_timeout(*target),
            }
        }
        self.finish_round();
    }

    fn destination(&self) -> Ipv4Addr {
        self.destination
    }

    fn predicted_cost(&self) -> u64 {
        if self.round > self.config.rounds {
            return 0;
        }
        // Probeable addresses per MBT round: the indirect method can
        // only reach candidates a trace flow is known to elicit.
        let per_round = match self.config.method {
            ProbeMethod::Indirect => self.targets.len() as u64,
            ProbeMethod::Direct => self.candidates.len() as u64,
        };
        let remaining_rounds = u64::from(self.config.rounds - self.round) + 1;
        let fingerprints = if self.round <= 1 {
            self.candidates.len() as u64
        } else {
            0
        };
        fingerprints + remaining_rounds * u64::from(self.config.replies_per_round) * per_round
    }
}

/// Runs the protocol over one candidate set — the blocking driver over
/// [`AliasRoundsSession`], dispatching through a [`Prober`] exactly as
/// the pre-session implementation did. `base` must already hold the
/// Round 0 evidence (seed it with [`EvidenceBase::from_log`]); reports
/// are returned for rounds 0 ..= `config.rounds` and `base` holds the
/// final evidence.
pub fn run_rounds<P: Prober>(
    prober: &mut P,
    trace: &Trace,
    candidates: &BTreeSet<Ipv4Addr>,
    base: &mut EvidenceBase,
    config: &RoundsConfig,
) -> Vec<RoundReport> {
    let seeded = std::mem::take(base);
    let mut session = AliasRoundsSession::new(trace, candidates, seeded, config.clone());
    drive_probes(&mut session, prober);
    let (reports, finished) = session.into_parts();
    *base = finished;
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::EvidenceBase;
    use crate::resolver::precision_recall;
    use mlpt_core::prelude::*;
    use mlpt_sim::{IpIdProfile, RouterProfile, SimNetwork};
    use mlpt_topo::graph::addr;
    use mlpt_topo::{MultipathTopology, RouterId, RouterMap};

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    /// 1-4-1 diamond where interfaces {0,1} share router A and {2,3}
    /// share router B.
    fn grouped_topology() -> (MultipathTopology, RouterMap) {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1), addr(1, 2), addr(1, 3)]);
        b.add_hop([addr(2, 0)]);
        b.connect_unmeshed(0);
        b.connect_unmeshed(1);
        let topo = b.build().unwrap();
        let routers = RouterMap::from_alias_sets([
            vec![addr(1, 0), addr(1, 1)],
            vec![addr(1, 2), addr(1, 3)],
        ]);
        (topo, routers)
    }

    fn run(
        profile_a: RouterProfile,
        profile_b: RouterProfile,
        method: ProbeMethod,
        seed: u64,
    ) -> Vec<RoundReport> {
        let (topo, routers) = grouped_topology();
        let net = SimNetwork::builder(topo.clone())
            .routers(routers)
            .profile(RouterId(0), profile_a)
            .profile(RouterId(1), profile_b)
            .seed(seed)
            .build();
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let trace = trace_mda_lite(&mut prober, &TraceConfig::new(seed));
        let candidates: BTreeSet<Ipv4Addr> = trace.vertices_at(2).iter().copied().collect();
        assert_eq!(candidates.len(), 4, "trace must find all four interfaces");
        let mut base = EvidenceBase::from_log(prober.log(), &candidates);
        let config = RoundsConfig {
            method,
            ..RoundsConfig::default()
        };
        run_rounds(&mut prober, &trace, &candidates, &mut base, &config)
    }

    #[test]
    fn indirect_rounds_find_true_aliases() {
        let reports = run(
            RouterProfile::well_behaved(),
            RouterProfile::well_behaved(),
            ProbeMethod::Indirect,
            7,
        );
        assert_eq!(reports.len(), 11);
        let final_partition = &reports.last().unwrap().partition;
        assert!(final_partition.same_set(addr(1, 0), addr(1, 1)));
        assert!(final_partition.same_set(addr(1, 2), addr(1, 3)));
        assert!(!final_partition.same_set(addr(1, 0), addr(1, 2)));
        assert_eq!(final_partition.routers().count(), 2);
    }

    #[test]
    fn probes_accumulate_monotonically() {
        let reports = run(
            RouterProfile::well_behaved(),
            RouterProfile::well_behaved(),
            ProbeMethod::Indirect,
            3,
        );
        assert_eq!(reports[0].cumulative_probes, 0);
        for w in reports.windows(2) {
            assert!(w[1].cumulative_probes > w[0].cumulative_probes);
        }
        // Round 1: 4 direct + 30×4 indirect; rounds 2-10: 30×4 each.
        let last = reports.last().unwrap().cumulative_probes;
        assert_eq!(last, 4 + 10 * 30 * 4);
    }

    #[test]
    fn later_rounds_refine_toward_final() {
        let reports = run(
            RouterProfile::well_behaved(),
            RouterProfile::well_behaved(),
            ProbeMethod::Indirect,
            11,
        );
        let reference = &reports.last().unwrap().partition;
        let (p1, _r1) = precision_recall(&reports[1].partition, reference);
        let (p10, r10) = precision_recall(reference, reference);
        assert_eq!((p10, r10), (1.0, 1.0));
        assert!(p1 > 0.0);
    }

    #[test]
    fn constant_zero_ids_fall_back_to_signatures() {
        let reports = run(
            RouterProfile {
                ipid: IpIdProfile::constant_zero(),
                ..RouterProfile::well_behaved()
            },
            RouterProfile {
                ipid: IpIdProfile::constant_zero(),
                ..RouterProfile::well_behaved()
            },
            ProbeMethod::Indirect,
            6,
        );
        // Round 0: fingerprints incomplete (no direct probe yet) and the
        // MBT helpless → nothing asserted.
        let round0 = &reports[0].partition;
        assert_eq!(round0.routers().count(), 0, "round 0 must stay apart");
        // Final round: identical complete signatures with permanently
        // unusable counters keep the whole hop together — the paper's
        // documented false-positive mechanism for constant IP IDs.
        let final_partition = &reports.last().unwrap().partition;
        assert!(final_partition.same_set(addr(1, 0), addr(1, 1)));
        assert!(final_partition.same_set(addr(1, 1), addr(1, 2)));
    }

    #[test]
    fn per_interface_counters_reject_indirect_but_accept_direct() {
        // The Table 2 phenomenon: per-interface counters for Time
        // Exceeded, router-wide for Echo Reply.
        let profile = RouterProfile {
            ipid: IpIdProfile::per_interface_indirect(2, 3),
            ..RouterProfile::well_behaved()
        };
        let indirect = run(profile, profile, ProbeMethod::Indirect, 9);
        let direct = run(profile, profile, ProbeMethod::Direct, 9);
        let ind_final = &indirect.last().unwrap().partition;
        let dir_final = &direct.last().unwrap().partition;
        assert!(
            !ind_final.same_set(addr(1, 0), addr(1, 1)),
            "indirect MBT must split per-interface counters"
        );
        assert!(
            dir_final.same_set(addr(1, 0), addr(1, 1)),
            "direct MBT sees the shared router-wide counter"
        );
        assert!(!dir_final.same_set(addr(1, 1), addr(1, 2)));
    }

    #[test]
    fn unresponsive_direct_leaves_direct_method_unable() {
        let profile = RouterProfile {
            responds_to_direct: false,
            ..RouterProfile::well_behaved()
        };
        let direct = run(profile, profile, ProbeMethod::Direct, 13);
        let final_partition = &direct.last().unwrap().partition;
        assert_eq!(final_partition.routers().count(), 0);
    }
}
