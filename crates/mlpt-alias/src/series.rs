//! IP-ID time series and their classification.
//!
//! An interface's replies carry IP IDs sampled from whatever mechanism its
//! router uses. The Monotonic Bounds Test only works on series that are
//! themselves monotonic counters; the paper reports the other behaviours
//! it met in the wild — constant (mostly zero) values, non-monotonic
//! (random) series, series that merely echo the probe's IP ID, and
//! addresses with too few samples — and this module classifies them.

use serde::{Deserialize, Serialize};

/// One IP-ID observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpIdSample {
    /// Transport timestamp of the reply.
    pub timestamp: u64,
    /// The reply's IP ID.
    pub ip_id: u16,
    /// The probe's own IP ID (to detect echo behaviour).
    pub probe_ip_id: u16,
}

/// What kind of IP-ID source a series reveals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SeriesClass {
    /// Monotonic counter (wraparound-aware) within the velocity bound;
    /// usable by the MBT. Carries the estimated velocity (IDs per tick).
    Monotonic {
        /// Estimated counter velocity in IDs per clock tick.
        velocity: f64,
    },
    /// All samples equal (the paper: "constant (mostly zero) IP IDs").
    Constant(u16),
    /// Replies echo the probe's IP ID (MIDAR's 22.8 % inconclusive case).
    EchoesProbe,
    /// Not monotonic within any reasonable velocity.
    NonMonotonic,
    /// Fewer samples than the test minimum.
    Insufficient,
}

impl SeriesClass {
    /// True if the MBT can use this series.
    pub fn usable(&self) -> bool {
        matches!(self, SeriesClass::Monotonic { .. })
    }
}

/// Wraparound-aware forward distance from `a` to `b` on the u16 ring.
pub fn forward_distance(a: u16, b: u16) -> u16 {
    b.wrapping_sub(a)
}

/// Checks that consecutive samples advance forward within the velocity
/// bound: `0 < fwd <= velocity_bound * elapsed + slack`. Duplicated
/// timestamps are tolerated with pure-slack allowance.
pub fn is_monotonic(samples: &[IpIdSample], velocity_bound: f64, slack: u32) -> bool {
    samples.windows(2).all(|w| {
        let elapsed = w[1].timestamp.saturating_sub(w[0].timestamp) as f64;
        let fwd = u32::from(forward_distance(w[0].ip_id, w[1].ip_id));
        let limit = velocity_bound * elapsed + f64::from(slack);
        fwd >= 1 && f64::from(fwd) <= limit
    })
}

/// Minimum samples before the MBT will classify a series.
pub const MIN_SAMPLES: usize = 3;

/// Classifies a series (assumed sorted by timestamp).
pub fn classify_series(samples: &[IpIdSample], velocity_bound: f64, slack: u32) -> SeriesClass {
    if samples.len() < MIN_SAMPLES {
        return SeriesClass::Insufficient;
    }
    if samples.windows(2).all(|w| w[0].ip_id == w[1].ip_id) {
        return SeriesClass::Constant(samples[0].ip_id);
    }
    if samples.iter().all(|s| s.ip_id == s.probe_ip_id) {
        return SeriesClass::EchoesProbe;
    }
    if is_monotonic(samples, velocity_bound, slack) {
        let first = samples.first().expect("non-empty");
        let last = samples.last().expect("non-empty");
        let elapsed = last.timestamp.saturating_sub(first.timestamp).max(1) as f64;
        // Sum of inter-sample forward distances (handles wraparound).
        let advanced: u64 = samples
            .windows(2)
            .map(|w| u64::from(forward_distance(w[0].ip_id, w[1].ip_id)))
            .sum();
        SeriesClass::Monotonic {
            velocity: advanced as f64 / elapsed,
        }
    } else {
        SeriesClass::NonMonotonic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(t: u64, id: u16) -> IpIdSample {
        IpIdSample {
            timestamp: t,
            ip_id: id,
            probe_ip_id: 0xFFFF,
        }
    }

    #[test]
    fn monotonic_series_classified() {
        let samples: Vec<IpIdSample> = (0..10).map(|i| s(i, (100 + 3 * i) as u16)).collect();
        let class = classify_series(&samples, 8.0, 16);
        assert!(matches!(class, SeriesClass::Monotonic { .. }));
        assert!(class.usable());
        if let SeriesClass::Monotonic { velocity } = class {
            assert!((velocity - 3.0).abs() < 0.5, "velocity {velocity}");
        }
    }

    #[test]
    fn wraparound_is_monotonic() {
        let samples = vec![s(0, 65_530), s(1, 65_534), s(2, 2), s(3, 6)];
        assert!(is_monotonic(&samples, 8.0, 16));
        assert!(classify_series(&samples, 8.0, 16).usable());
    }

    #[test]
    fn constant_series() {
        let samples = vec![s(0, 0), s(1, 0), s(2, 0), s(3, 0)];
        assert_eq!(classify_series(&samples, 8.0, 16), SeriesClass::Constant(0));
    }

    #[test]
    fn echo_series() {
        let samples = vec![
            IpIdSample {
                timestamp: 0,
                ip_id: 7,
                probe_ip_id: 7,
            },
            IpIdSample {
                timestamp: 1,
                ip_id: 9,
                probe_ip_id: 9,
            },
            IpIdSample {
                timestamp: 2,
                ip_id: 4,
                probe_ip_id: 4,
            },
        ];
        assert_eq!(classify_series(&samples, 8.0, 16), SeriesClass::EchoesProbe);
    }

    #[test]
    fn random_series_nonmonotonic() {
        let samples = vec![s(0, 40_000), s(1, 12), s(2, 9_000), s(3, 60_000)];
        assert_eq!(
            classify_series(&samples, 8.0, 16),
            SeriesClass::NonMonotonic
        );
    }

    #[test]
    fn too_few_samples() {
        let samples = vec![s(0, 1), s(1, 2)];
        assert_eq!(
            classify_series(&samples, 8.0, 16),
            SeriesClass::Insufficient
        );
    }

    #[test]
    fn velocity_bound_enforced() {
        // A jump of 1000 in one tick exceeds bound 8/tick + slack 16.
        let samples = vec![s(0, 0), s(1, 1000), s(2, 1008)];
        assert!(!is_monotonic(&samples, 8.0, 16));
    }

    #[test]
    fn zero_forward_distance_rejected() {
        // Strictly increasing counters never produce equal consecutive
        // samples; equality in a *merged* series signals distinct counters
        // that happen to collide.
        let samples = vec![s(0, 5), s(1, 5), s(2, 6)];
        assert!(!is_monotonic(&samples, 8.0, 16));
    }

    #[test]
    fn forward_distance_ring() {
        assert_eq!(forward_distance(10, 15), 5);
        assert_eq!(forward_distance(65_535, 2), 3);
        assert_eq!(forward_distance(5, 5), 0);
        assert_eq!(forward_distance(10, 9), 65_535);
    }
}
