//! The W001 violations again, each suppressed by a justified pragma —
//! one standalone, one trailing-comment form. Expected: zero findings,
//! two suppressions.

pub fn elapsed_budget() -> u64 {
    // mlpt: allow(MLPT-W001, reason = "fixture: standalone pragma form")
    let started = std::time::Instant::now();
    let _ = started;
    0
}

pub fn stamp_secs() -> u64 {
    let _t = std::time::Instant::now(); // mlpt: allow(MLPT-W001, reason = "fixture: trailing-comment form")
    0
}
