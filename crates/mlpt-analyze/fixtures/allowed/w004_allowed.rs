//! The W004 violations again, suppressed with recorded invariants.
//! Expected: zero findings, two suppressions.

pub fn first(xs: &[u32]) -> u32 {
    // mlpt: allow(MLPT-W004, reason = "fixture: caller guarantees a non-empty slice")
    *xs.first().unwrap()
}

pub fn second(xs: &[u32]) -> u32 {
    // mlpt: allow(MLPT-W004, reason = "fixture: length checked by the caller")
    *xs.get(1).expect("two elements")
}
