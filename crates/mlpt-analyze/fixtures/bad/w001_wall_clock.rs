//! MLPT-W001 fixture: wall-clock reads in protocol code.
//! Expected findings: W001 at lines 5, 10 and 11.

pub fn elapsed_budget() -> u64 {
    let started = std::time::Instant::now();
    let _ = started;
    0
}

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
