//! MLPT-W002 fixture: ambient randomness instead of seeded streams.
//! Expected findings: W002 at lines 5, 7, 11 and 15.

pub fn draw() -> u32 {
    let mut rng = rand::thread_rng();
    let _ = &mut rng;
    rand::random()
}

pub fn reseed() {
    let _rng = rand_chacha::ChaCha8Rng::from_entropy();
}

pub fn os_backed() {
    let _source = rand::rngs::OsRng;
}
