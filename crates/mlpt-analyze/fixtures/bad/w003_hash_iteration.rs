//! MLPT-W003 fixture: hash-order iteration in protocol paths.
//! Expected findings: W003 at lines 12, 16, 22 and 31.

use std::collections::{HashMap, HashSet};

pub struct Table {
    pub routes: HashMap<u32, u32>,
}

impl Table {
    pub fn emit_all(&self) -> Vec<u32> {
        self.routes.values().copied().collect()
    }

    pub fn prune(&mut self) {
        self.routes.retain(|_, v| *v != 0);
    }
}

pub fn scan(seen: HashSet<u32>) -> u64 {
    let mut total = 0u64;
    for v in seen {
        total += u64::from(v);
    }
    total
}

pub fn local() -> Vec<u32> {
    let mut order = HashMap::new();
    order.insert(1u32, 2u32);
    order.keys().copied().collect()
}
