//! MLPT-W004 fixture: panic-class calls where typed errors exist.
//! Expected findings: W004 at lines 6, 10, 14 and 20. The
//! `unwrap_or` at line 25 must NOT fire.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn second(xs: &[u32]) -> u32 {
    *xs.get(1).expect("two elements")
}

pub fn boom() {
    panic!("protocol violation");
}

pub fn unfinished(x: u32) -> u32 {
    match x {
        0 => 0,
        _ => unreachable!(),
    }
}

pub fn guarded(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}
