//! MLPT-W005 fixture: a stats merge that forgot a field.
//! Expected finding: W005 at line 8 (`retries` is never merged).

#[derive(Default)]
pub struct SweepStats {
    pub probes_sent: u64,
    pub replies_received: u64,
    pub retries: u64,
}

impl SweepStats {
    pub fn merge(&mut self, other: &SweepStats) {
        self.probes_sent += other.probes_sent;
        self.replies_received += other.replies_received;
    }
}
