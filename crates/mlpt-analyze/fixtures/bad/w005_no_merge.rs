//! MLPT-W005 fixture: a checked stats struct with no merge at all.
//! Expected finding: W005 at line 5 (the struct definition).

#[derive(Default)]
pub struct SweepStats {
    pub probes_sent: u64,
    pub replies_received: u64,
}
