//! A file the pass has nothing to say about: ordered maps, typed
//! errors, seeded randomness handled elsewhere. Expected: zero
//! findings, zero suppressions.

use std::collections::BTreeMap;

pub fn ordered_sum(map: &BTreeMap<u32, u32>) -> u64 {
    map.values().map(|&v| u64::from(v)).sum()
}

pub fn checked_first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}
