//! Pragma-health fixture: a suppression without a reason suppresses
//! nothing. Expected: E100 at line 6 AND the W004 at line 7 stays
//! live.

pub fn first(xs: &[u32]) -> u32 {
    // mlpt: allow(MLPT-W004)
    *xs.first().unwrap()
}
