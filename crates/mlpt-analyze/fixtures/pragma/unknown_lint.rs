//! Pragma-health fixture: naming a lint that does not exist is a
//! diagnostic, not a silent no-op. Expected: E101 at line 5.

pub fn noop() {
    // mlpt: allow(MLPT-W999, reason = "no such lint")
    let _ = 0;
}
