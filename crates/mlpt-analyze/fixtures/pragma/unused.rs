//! Pragma-health fixture: a well-formed pragma that suppresses nothing
//! is stale and must be deleted. Expected: E102 at line 5.

pub fn clean() {
    // mlpt: allow(MLPT-W004, reason = "nothing here panics any more")
    let _ = 0;
}
