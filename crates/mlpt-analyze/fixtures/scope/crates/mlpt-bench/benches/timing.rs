//! Scoping-precision pair, bench half: this wall-clock read is
//! IDENTICAL to the mlpt-core half, but the fixture scope exempts
//! `scope/crates/mlpt-bench/` from MLPT-W001 — benches measure the
//! host. Expected: zero findings.

pub fn measure() -> u64 {
    let started = std::time::Instant::now();
    let _ = started;
    0
}
