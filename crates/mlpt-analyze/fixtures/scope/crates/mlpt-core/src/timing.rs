//! Scoping-precision pair, protocol half: the same wall-clock read as
//! the bench half, but here it is a determinism violation. Expected:
//! W001 at line 6.

pub fn measure() -> u64 {
    let started = std::time::Instant::now();
    let _ = started;
    0
}
