//! Diagnostics: stable lint IDs, findings, and the human/JSON renderers.

/// Stable lint identifiers. `W` lints are determinism-rule violations;
/// `E` diagnostics are problems with the suppression pragmas themselves
/// (a pragma that cannot be trusted must never silently suppress).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintId {
    /// Wall-clock APIs (`Instant::now`, `SystemTime`) in protocol code.
    W001,
    /// Ambient randomness (`thread_rng`, `from_entropy`, OS entropy).
    W002,
    /// Iteration over unordered `HashMap`/`HashSet` in protocol paths.
    W003,
    /// `unwrap`/`expect`/`panic!`/`unreachable!` in engine non-test code.
    W004,
    /// Stats-merge exhaustiveness: a `SweepStats` field missing from
    /// `merge()`.
    W005,
    /// Malformed pragma: unparseable `allow(...)` or missing/empty
    /// `reason`.
    E100,
    /// Pragma names an unknown lint ID.
    E101,
    /// Pragma suppressed nothing (stale after a fix — delete it).
    E102,
}

impl LintId {
    pub const ALL: [LintId; 8] = [
        LintId::W001,
        LintId::W002,
        LintId::W003,
        LintId::W004,
        LintId::W005,
        LintId::E100,
        LintId::E101,
        LintId::E102,
    ];

    /// The stable code printed in diagnostics and accepted by pragmas
    /// and `--deny`.
    pub fn code(self) -> &'static str {
        match self {
            LintId::W001 => "MLPT-W001",
            LintId::W002 => "MLPT-W002",
            LintId::W003 => "MLPT-W003",
            LintId::W004 => "MLPT-W004",
            LintId::W005 => "MLPT-W005",
            LintId::E100 => "MLPT-E100",
            LintId::E101 => "MLPT-E101",
            LintId::E102 => "MLPT-E102",
        }
    }

    /// One-line summary shown by `--list-lints`.
    pub fn summary(self) -> &'static str {
        match self {
            LintId::W001 => {
                "wall-clock API in protocol code (probes must be a pure function of the virtual clock)"
            }
            LintId::W002 => {
                "ambient randomness (all randomness must be seeded ChaCha8, replayable from the seed)"
            }
            LintId::W003 => {
                "iteration over unordered HashMap/HashSet in protocol paths (hash order leaks into probe order)"
            }
            LintId::W004 => {
                "panic-class call (unwrap/expect/panic!/unreachable!) in engine non-test code (typed errors exist)"
            }
            LintId::W005 => "stats-merge exhaustiveness: struct field never mentioned in merge()",
            LintId::E100 => "malformed mlpt pragma (unparseable, or missing the required reason)",
            LintId::E101 => "mlpt pragma names an unknown lint ID",
            LintId::E102 => "mlpt pragma suppressed nothing (stale — delete it)",
        }
    }

    /// Parses a stable code (`MLPT-W001`) back to the lint.
    pub fn parse(code: &str) -> Option<LintId> {
        LintId::ALL.into_iter().find(|l| l.code() == code)
    }
}

/// One diagnostic at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub lint: LintId,
    /// Path relative to the analysis root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    pub message: String,
}

impl Finding {
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}",
            self.file,
            self.line,
            self.col,
            self.lint.code(),
            self.message
        )
    }
}

/// A finding that a pragma suppressed, with the pragma's reason —
/// reported (not denied) so suppressions stay auditable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    pub finding: Finding,
    pub reason: String,
}

/// Escapes a string for inclusion in JSON output. Hand-rolled so the
/// analyzer stays dependency-free.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"lint\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
        f.lint.code(),
        json_escape(&f.file),
        f.line,
        f.col,
        json_escape(&f.message)
    )
}

/// Renders a full report as JSON: findings, suppressions (with
/// reasons), and a summary block.
pub fn report_json(
    findings: &[Finding],
    suppressed: &[Suppressed],
    files_scanned: usize,
) -> String {
    let findings_json: Vec<String> = findings.iter().map(finding_json).collect();
    let suppressed_json: Vec<String> = suppressed
        .iter()
        .map(|s| {
            format!(
                "{{\"finding\":{},\"reason\":\"{}\"}}",
                finding_json(&s.finding),
                json_escape(&s.reason)
            )
        })
        .collect();
    format!(
        "{{\"findings\":[{}],\"suppressed\":[{}],\"summary\":{{\"files_scanned\":{},\"findings\":{},\"suppressed\":{}}}}}",
        findings_json.join(","),
        suppressed_json.join(","),
        files_scanned,
        findings.len(),
        suppressed.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for lint in LintId::ALL {
            assert_eq!(LintId::parse(lint.code()), Some(lint));
        }
        assert_eq!(LintId::parse("MLPT-W999"), None);
    }

    #[test]
    fn render_is_clickable() {
        let f = Finding {
            lint: LintId::W001,
            file: "crates/mlpt-core/src/engine.rs".into(),
            line: 12,
            col: 9,
            message: "wall clock".into(),
        };
        assert_eq!(
            f.render(),
            "crates/mlpt-core/src/engine.rs:12:9: MLPT-W001: wall clock"
        );
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn report_json_shape() {
        let f = Finding {
            lint: LintId::W002,
            file: "x.rs".into(),
            line: 1,
            col: 1,
            message: "m".into(),
        };
        let s = Suppressed {
            finding: f.clone(),
            reason: "r".into(),
        };
        let json = report_json(&[f], &[s], 3);
        assert!(json.contains("\"lint\":\"MLPT-W002\""));
        assert!(json.contains("\"files_scanned\":3"));
        assert!(json.contains("\"reason\":\"r\""));
    }
}
