//! A hand-rolled Rust lexer — just enough of the language to scan for
//! determinism-lint patterns without ever mistaking the inside of a
//! string literal or a comment for code.
//!
//! The token stream keeps comments (the pragma parser reads them) and
//! records a 1-based `line:col` for every token so diagnostics point at
//! the exact source position. It is *not* a full Rust lexer: it does
//! not classify keywords, parse float suffixes precisely, or validate
//! escapes — none of which the lints need. What it does get right are
//! the classically tricky boundaries that would otherwise cause false
//! positives: nested block comments, raw strings with arbitrary `#`
//! fences, byte/char literals, and lifetimes (`'a`) versus char
//! literals (`'a'`).

/// What a token is, at the granularity the lints care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, `r#type`).
    Ident,
    /// A single punctuation character (`:`, `.`, `{`, ...). Multi-char
    /// operators arrive as consecutive tokens; lints match sequences.
    Punct,
    /// `// ...` comment. `text` includes the leading slashes.
    LineComment,
    /// `/* ... */` comment (nesting handled). `text` includes fences.
    BlockComment,
    /// String literal of any flavour: `"..."`, `b"..."`, `r#"..."#`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// Lifetime: `'a` (no closing quote).
    Lifetime,
    /// Numeric literal (integers, floats, hex/oct/bin, suffixes).
    Number,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in chars) of the token's first character.
    pub col: u32,
}

impl Token {
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(ch)
    }

    /// True for tokens the grammar-level scans should skip entirely.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    src: std::marker::PhantomData<&'a str>,
}

impl Cursor<'_> {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            src: std::marker::PhantomData,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream. Never fails: unterminated literals
/// and comments simply run to end of file (the lints prefer a sloppy
/// token over a panic — rustc rejects such files anyway).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let token = if c == '/' && cur.peek_at(1) == Some('/') {
            lex_line_comment(&mut cur)
        } else if c == '/' && cur.peek_at(1) == Some('*') {
            lex_block_comment(&mut cur)
        } else if is_raw_string_start(&cur) {
            lex_raw_string(&mut cur)
        } else if c == '"' || (c == 'b' && cur.peek_at(1) == Some('"')) {
            lex_string(&mut cur)
        } else if c == '\'' || (c == 'b' && cur.peek_at(1) == Some('\'')) {
            lex_quote(&mut cur)
        } else if c == 'r'
            && cur.peek_at(1) == Some('#')
            && cur.peek_at(2).is_some_and(is_ident_start)
        {
            lex_raw_ident(&mut cur)
        } else if is_ident_start(c) {
            lex_ident(&mut cur)
        } else if c.is_ascii_digit() {
            lex_number(&mut cur)
        } else {
            cur.bump();
            (TokenKind::Punct, c.to_string())
        };
        out.push(Token {
            kind: token.0,
            text: token.1,
            line,
            col,
        });
    }
    out
}

fn lex_line_comment(cur: &mut Cursor) -> (TokenKind, String) {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    (TokenKind::LineComment, text)
}

fn lex_block_comment(cur: &mut Cursor) -> (TokenKind, String) {
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.peek() {
        if c == '/' && cur.peek_at(1) == Some('*') {
            depth += 1;
            text.push('/');
            text.push('*');
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek_at(1) == Some('/') {
            depth -= 1;
            text.push('*');
            text.push('/');
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    (TokenKind::BlockComment, text)
}

/// `r"..."`, `r#"..."#`, `br##"..."##` — a raw string starts with an
/// optional `b`, an `r`, zero or more `#`, then `"`.
fn is_raw_string_start(cur: &Cursor) -> bool {
    let mut i = 0;
    if cur.peek_at(i) == Some('b') {
        i += 1;
    }
    if cur.peek_at(i) != Some('r') {
        return false;
    }
    i += 1;
    while cur.peek_at(i) == Some('#') {
        i += 1;
    }
    cur.peek_at(i) == Some('"')
}

fn lex_raw_string(cur: &mut Cursor) -> (TokenKind, String) {
    let mut text = String::new();
    if cur.peek() == Some('b') {
        text.push(cur.bump().unwrap_or('b'));
    }
    text.push(cur.bump().unwrap_or('r')); // 'r'
    let mut fence = 0usize;
    while cur.peek() == Some('#') {
        fence += 1;
        text.push('#');
        cur.bump();
    }
    text.push(cur.bump().unwrap_or('"')); // opening quote
    while let Some(c) = cur.peek() {
        if c == '"' {
            // Candidate close: needs `fence` trailing hashes.
            let mut ok = true;
            for k in 0..fence {
                if cur.peek_at(1 + k) != Some('#') {
                    ok = false;
                    break;
                }
            }
            text.push(c);
            cur.bump();
            if ok {
                for _ in 0..fence {
                    text.push('#');
                    cur.bump();
                }
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    (TokenKind::Str, text)
}

fn lex_string(cur: &mut Cursor) -> (TokenKind, String) {
    let mut text = String::new();
    if cur.peek() == Some('b') {
        text.push(cur.bump().unwrap_or('b'));
    }
    text.push(cur.bump().unwrap_or('"')); // opening quote
    while let Some(c) = cur.peek() {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(escaped) = cur.bump() {
                text.push(escaped);
            }
        } else if c == '"' {
            text.push(c);
            cur.bump();
            break;
        } else {
            text.push(c);
            cur.bump();
        }
    }
    (TokenKind::Str, text)
}

/// Disambiguates `'a'` / `b'\n'` (char literals) from `'a` (lifetime).
/// A quote starts a char literal iff it closes: `'<escape or one
/// char>'`. Otherwise it is a lifetime (or a stray quote, lexed the
/// same way — close enough for linting).
fn lex_quote(cur: &mut Cursor) -> (TokenKind, String) {
    let mut text = String::new();
    if cur.peek() == Some('b') {
        // `b'x'` is always a byte literal, never a lifetime.
        text.push(cur.bump().unwrap_or('b'));
        text.push(cur.bump().unwrap_or('\'')); // the quote
        if cur.peek() == Some('\\') {
            text.push(cur.bump().unwrap_or('\\'));
            if let Some(escaped) = cur.bump() {
                text.push(escaped);
            }
        } else if let Some(c) = cur.bump() {
            text.push(c);
        }
        if cur.peek() == Some('\'') {
            text.push(cur.bump().unwrap_or('\''));
        }
        return (TokenKind::Char, text);
    }
    text.push(cur.bump().unwrap_or('\'')); // the quote
    if cur.peek() == Some('\\') {
        // Escape: definitely a char literal.
        text.push(cur.bump().unwrap_or('\\'));
        if let Some(escaped) = cur.bump() {
            text.push(escaped);
        }
        if cur.peek() == Some('\'') {
            text.push(cur.bump().unwrap_or('\''));
        }
        return (TokenKind::Char, text);
    }
    // `'x'` is a char literal for ANY single character x — including
    // punctuation like `'"'` or `'.'`, which would otherwise leave a
    // stray quote that opens a runaway string. A quote not closed one
    // character later is a lifetime; `'ident` consumes the identifier.
    if cur.peek() != Some('\'') && cur.peek_at(1) == Some('\'') {
        text.push(cur.bump().unwrap_or(' '));
        text.push(cur.bump().unwrap_or('\''));
        return (TokenKind::Char, text);
    }
    while cur.peek().is_some_and(is_ident_continue) {
        text.push(cur.bump().unwrap_or(' '));
    }
    (TokenKind::Lifetime, text)
}

fn lex_raw_ident(cur: &mut Cursor) -> (TokenKind, String) {
    let mut text = String::new();
    text.push(cur.bump().unwrap_or('r')); // r
    text.push(cur.bump().unwrap_or('#')); // #
    while cur.peek().is_some_and(is_ident_continue) {
        text.push(cur.bump().unwrap_or(' '));
    }
    (TokenKind::Ident, text)
}

fn lex_ident(cur: &mut Cursor) -> (TokenKind, String) {
    let mut text = String::new();
    while cur.peek().is_some_and(is_ident_continue) {
        text.push(cur.bump().unwrap_or(' '));
    }
    (TokenKind::Ident, text)
}

/// Numbers swallow alphanumerics and underscores (covering `0xff`,
/// `1_000`, `3u64`) plus a `.` only when a digit follows — so `1..10`
/// lexes as `1`, `.`, `.`, `10` and `tuple.0.iter()` keeps its `.`
/// separators (a greedy float rule would hide the `.iter()` call from
/// the lints).
fn lex_number(cur: &mut Cursor) -> (TokenKind, String) {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        let float_dot = c == '.' && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit());
        if is_ident_continue(c) || float_dot {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    (TokenKind::Number, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts_with_positions() {
        let toks = lex("let x = a.iter();");
        assert!(toks[0].is_ident("let"));
        assert!(toks[3].is_ident("a"));
        assert!(toks[4].is_punct('.'));
        assert!(toks[5].is_ident("iter"));
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].col, 1);
        assert_eq!(toks[3].col, 9);
    }

    #[test]
    fn strings_hide_code_looking_text() {
        let toks = kinds(r#"let s = "Instant::now() // not code";"#);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        // No Ident token for the text inside the string.
        assert!(!toks
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "Instant"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds(r###"let s = r#"thread_rng() "quoted" inside"#; x"###);
        assert!(toks.iter().any(|t| t.0 == TokenKind::Str));
        assert!(!toks
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "thread_rng"));
        assert!(toks.iter().any(|t| t.0 == TokenKind::Ident && t.1 == "x"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1].1, "code");
    }

    #[test]
    fn line_comments_end_at_newline() {
        let toks = kinds("// SystemTime here\nreal");
        assert_eq!(toks[0].0, TokenKind::LineComment);
        assert!(toks[1].1 == "real");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'y'; let esc = '\\n'; }");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn punctuation_char_literals_do_not_open_strings() {
        // `'"'` must lex as a Char: a stray quote here would start a
        // runaway string swallowing the real code that follows.
        let toks = kinds("if c == '\"' { x(); } let d = '.'; let p = '('; y");
        assert_eq!(
            toks.iter().filter(|t| t.0 == TokenKind::Char).count(),
            3,
            "{toks:?}"
        );
        assert!(!toks.iter().any(|t| t.0 == TokenKind::Str), "{toks:?}");
        assert!(toks.iter().any(|t| t.0 == TokenKind::Ident && t.1 == "y"));
    }

    #[test]
    fn byte_literals() {
        let toks = kinds(r#"let a = b'x'; let b = b'\n'; let s = b"bytes";"#);
        assert_eq!(
            toks.iter().filter(|t| t.0 == TokenKind::Char).count(),
            2,
            "{toks:?}"
        );
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_tuple_fields() {
        let toks = kinds("for i in 1..10 { t.0.iter(); }");
        assert!(toks.iter().any(|t| t.0 == TokenKind::Number && t.1 == "1"));
        assert!(toks.iter().any(|t| t.0 == TokenKind::Number && t.1 == "10"));
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "iter"));
        assert!(toks.iter().any(|t| t.0 == TokenKind::Number && t.1 == "0"));
    }

    #[test]
    fn floats_and_hex_stay_single_tokens() {
        let toks = kinds("let a = 1.5; let b = 0xff_u32; let c = 1_000;");
        assert!(toks.iter().any(|t| t.1 == "1.5"));
        assert!(toks.iter().any(|t| t.1 == "0xff_u32"));
        assert!(toks.iter().any(|t| t.1 == "1_000"));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 3;");
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "r#type"));
    }
}
