//! `mlpt-analyze` — the determinism lint pass.
//!
//! The engine's correctness story rests on eight determinism rules
//! (README, "Static analysis" section): protocol state decides *what*
//! is probed, scheduling state only *when*. This crate mechanizes the
//! rules as a static pass with stable lint IDs:
//!
//! | lint | rule it polices |
//! |-----------|---------------------------------------------------|
//! | MLPT-W001 | wall-clock APIs in protocol code (virtual clock)  |
//! | MLPT-W002 | ambient randomness (seeded ChaCha8 only)          |
//! | MLPT-W003 | unordered hash iteration in protocol paths        |
//! | MLPT-W004 | panic-class calls where typed errors exist        |
//! | MLPT-W005 | stats-merge exhaustiveness (`SweepStats::merge`)  |
//!
//! The pass is a hand-rolled lexer + scanner over every workspace
//! `.rs` file — no external parser dependencies, consistent with the
//! offline vendored build it polices. Suppressions are inline pragmas
//! that *must* carry a reason:
//!
//! ```text
//! // mlpt: allow(MLPT-W004, reason = "invariant: queue built from the same sessions two lines up")
//! ```
//!
//! and pragma health is itself linted (`MLPT-E100` missing reason,
//! `MLPT-E101` unknown lint, `MLPT-E102` stale suppression).

pub mod diag;
pub mod lexer;
pub mod lints;
pub mod pragma;
pub mod scope;

pub use diag::{Finding, LintId, Suppressed};
pub use scope::{PathPolicy, ScopeConfig};

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// The outcome of an analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// Live findings, sorted by `(file, line, col, lint)`.
    pub findings: Vec<Finding>,
    /// Pragma-suppressed findings with their recorded reasons.
    pub suppressed: Vec<Suppressed>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings matching the given deny set.
    pub fn denied<'a>(&'a self, deny: &'a [LintId]) -> impl Iterator<Item = &'a Finding> {
        self.findings.iter().filter(|f| deny.contains(&f.lint))
    }
}

/// Analyzes in-memory sources: `(relative path, contents)` pairs. The
/// core entry point — `analyze_workspace` is a thin filesystem walk on
/// top, and tests feed fixtures through here directly.
pub fn analyze_files(files: &[(String, String)], config: &ScopeConfig) -> Report {
    let mut per_file_raw: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    let mut per_file_pragmas: BTreeMap<String, Vec<pragma::Pragma>> = BTreeMap::new();
    let mut structs = Vec::new();
    let mut merges = Vec::new();
    let mut files_scanned = 0usize;

    for (path, src) in files {
        if !config.scanned(path) {
            continue;
        }
        files_scanned += 1;
        let tokens = lexer::lex(src);
        let regions = lints::test_regions(&tokens);
        let mut raw = Vec::new();
        if config.lint_applies(LintId::W001, path) {
            raw.extend(lints::w001_wall_clock(path, &tokens, &regions));
        }
        if config.lint_applies(LintId::W002, path) {
            raw.extend(lints::w002_ambient_randomness(path, &tokens, &regions));
        }
        if config.lint_applies(LintId::W003, path) {
            raw.extend(lints::w003_hash_iteration(path, &tokens, &regions));
        }
        if config.lint_applies(LintId::W004, path) {
            raw.extend(lints::w004_panic_class(path, &tokens, &regions));
        }
        if config.lint_applies(LintId::W005, path) {
            let (s, m) = lints::w005_extract(path, &tokens, &regions, &config.merge_checks);
            structs.extend(s);
            merges.extend(m);
        }
        per_file_raw.insert(path.clone(), raw);
        per_file_pragmas.insert(path.clone(), pragma::collect(&tokens));
    }

    // Merge-exhaustiveness is a whole-scan check (the cross-file
    // backstop); its findings land on the struct's file so the
    // pragmas there can see them.
    for finding in lints::w005_check(&structs, &merges, &config.merge_checks) {
        per_file_raw
            .entry(finding.file.clone())
            .or_default()
            .push(finding);
    }

    let mut report = Report {
        files_scanned,
        ..Report::default()
    };
    for (path, raw) in per_file_raw {
        let pragmas = per_file_pragmas.remove(&path).unwrap_or_default();
        let (findings, suppressed) = pragma::apply(&path, &pragmas, raw);
        report.findings.extend(findings);
        report.suppressed.extend(suppressed);
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.lint).cmp(&(&b.file, b.line, b.col, b.lint)));
    report
        .suppressed
        .sort_by(|a, b| (&a.finding.file, a.finding.line).cmp(&(&b.finding.file, b.finding.line)));
    report
}

/// Recursively collects `.rs` files under `root` (sorted, so runs are
/// deterministic), skipping the config's global excludes, and analyzes
/// them. Paths in the report are relative to `root`, `/`-separated.
pub fn analyze_workspace(root: &Path, config: &ScopeConfig) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, config, &mut files)?;
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(analyze_files(&files, config))
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    config: &ScopeConfig,
    out: &mut Vec<(String, String)>,
) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if path.is_dir() {
            if config.scanned(&format!("{rel}/")) {
                collect_rs_files(root, &path, config, out)?;
            }
        } else if rel.ends_with(".rs") && config.scanned(&rel) {
            let src = std::fs::read_to_string(&path)?;
            out.push((rel, src));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> (String, String) {
        (path.to_string(), src.to_string())
    }

    #[test]
    fn end_to_end_pragma_suppression() {
        let src = "fn f(x: Option<u32>) {\n    // mlpt: allow(MLPT-W004, reason = \"proven above\")\n    x.unwrap();\n}";
        let files = vec![file("crates/mlpt-core/src/engine.rs", src)];
        let report = analyze_files(&files, &ScopeConfig::workspace_default());
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.suppressed[0].reason, "proven above");
    }

    #[test]
    fn scoping_keeps_out_of_scope_files_silent() {
        let src = "fn f(x: Option<u32>) { x.unwrap(); }";
        let files = vec![file("crates/mlpt-core/src/mda.rs", src)];
        let report = analyze_files(&files, &ScopeConfig::workspace_default());
        assert!(report.findings.is_empty());
    }

    #[test]
    fn cross_file_merge_backstop() {
        let def = "pub struct SweepStats { pub a: u64, pub b: u64 }";
        let merge =
            "use super::SweepStats;\nimpl SweepStats {\n    pub fn merge(&mut self, other: &SweepStats) { self.a += other.a; }\n}";
        let files = vec![
            file("crates/mlpt-core/src/stats.rs", def),
            file("crates/mlpt-core/src/merge.rs", merge),
        ];
        let report = analyze_files(&files, &ScopeConfig::workspace_default());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].lint, LintId::W005);
        assert_eq!(report.findings[0].file, "crates/mlpt-core/src/stats.rs");
        assert!(report.findings[0].message.contains('b'));
    }

    #[test]
    fn same_file_pairs_are_isolated_from_other_files() {
        // A complete merge in one file must not satisfy a different
        // file's incomplete pair (fixture isolation).
        let complete = "pub struct SweepStats { pub a: u64, pub b: u64 }\nimpl SweepStats {\n    pub fn merge(&mut self, o: &SweepStats) { self.a += o.a; self.b += o.b; }\n}";
        let incomplete = "pub struct SweepStats { pub a: u64, pub b: u64 }\nimpl SweepStats {\n    pub fn merge(&mut self, o: &SweepStats) { self.a += o.a; }\n}";
        let files = vec![file("good.rs", complete), file("bad.rs", incomplete)];
        let report = analyze_files(&files, &ScopeConfig::fixture());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].file, "bad.rs");
    }

    #[test]
    fn findings_sorted_and_files_counted() {
        let files = vec![
            file(
                "crates/mlpt-core/src/engine.rs",
                "fn f(x: Option<u32>) {\n    x.unwrap();\n    panic!(\"boom\");\n}",
            ),
            file("crates/mlpt-core/src/clean.rs", "fn g() {}"),
        ];
        let report = analyze_files(&files, &ScopeConfig::workspace_default());
        assert_eq!(report.files_scanned, 2);
        assert_eq!(report.findings.len(), 2);
        assert!(report.findings[0].line < report.findings[1].line);
    }
}
