//! The five determinism lints, as token-stream scans.
//!
//! Each scan walks the lexed token stream of one file (comments and
//! string literals already separated out by the lexer, so neither can
//! false-positive), skips test regions (`#[cfg(test)]` / `#[test]`
//! items — the rules govern *protocol* code), and emits findings at
//! exact `line:col` positions.

use crate::diag::{Finding, LintId};
use crate::lexer::{Token, TokenKind};
use std::collections::BTreeSet;

/// Tokens with comments stripped, each remembering its index's source
/// position. All grammar-level scans run on this view.
fn code_tokens(tokens: &[Token]) -> Vec<&Token> {
    tokens.iter().filter(|t| !t.is_comment()).collect()
}

/// Line ranges (inclusive) covered by test-only items: any item whose
/// attributes include `#[test]` or a `cfg(...)` mentioning `test`
/// (without `not`, so `#[cfg(not(test))]` stays in scope). Handles
/// both whole `#[cfg(test)] mod tests { ... }` blocks and single
/// `#[cfg(test)] fn helper() { ... }` items.
pub fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let toks = code_tokens(tokens);
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let attr_start = i;
        // Collect the attribute group `#[ ... ]`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut idents: Vec<&str> = Vec::new();
        while j < toks.len() {
            if toks[j].is_punct('[') {
                depth += 1;
            } else if toks[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            } else if toks[j].kind == TokenKind::Ident {
                idents.push(&toks[j].text);
            }
            j += 1;
        }
        let is_test_attr =
            (idents.contains(&"cfg") && idents.contains(&"test") && !idents.contains(&"not"))
                || idents == ["test"];
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut k = j;
        while k + 1 < toks.len() && toks[k].is_punct('#') && toks[k + 1].is_punct('[') {
            let mut d = 0usize;
            k += 1;
            while k < toks.len() {
                if toks[k].is_punct('[') {
                    d += 1;
                } else if toks[k].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        k += 1;
                        break;
                    }
                }
                k += 1;
            }
        }
        // The item extends to its matching close brace, or to a `;`
        // reached before any brace opens (e.g. `#[cfg(test)] mod t;`).
        let mut brace = 0usize;
        let mut end_line = toks[attr_start].line;
        while k < toks.len() {
            if toks[k].is_punct('{') {
                brace += 1;
            } else if toks[k].is_punct('}') {
                brace -= 1;
                if brace == 0 {
                    end_line = toks[k].line;
                    break;
                }
            } else if toks[k].is_punct(';') && brace == 0 {
                end_line = toks[k].line;
                break;
            }
            k += 1;
        }
        regions.push((toks[attr_start].line, end_line));
        i = k.max(j);
        i += 1;
    }
    regions
}

fn in_test_region(regions: &[(u32, u32)], line: u32) -> bool {
    regions
        .iter()
        .any(|&(start, end)| start <= line && line <= end)
}

fn finding(lint: LintId, file: &str, token: &Token, message: String) -> Finding {
    Finding {
        lint,
        file: file.to_string(),
        line: token.line,
        col: token.col,
        message,
    }
}

/// MLPT-W001 — wall-clock APIs. Protocol code must read the virtual
/// clock; `Instant::now()` and anything `SystemTime` reads the host's.
pub fn w001_wall_clock(file: &str, tokens: &[Token], regions: &[(u32, u32)]) -> Vec<Finding> {
    let toks = code_tokens(tokens);
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if in_test_region(regions, t.line) {
            continue;
        }
        if t.is_ident("Instant")
            && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 3).is_some_and(|a| a.is_ident("now"))
        {
            out.push(finding(
                LintId::W001,
                file,
                t,
                "`Instant::now()` reads the wall clock — protocol code must take timestamps \
                 from the owning lane's virtual clock (determinism rules 1 and 4)"
                    .to_string(),
            ));
        }
        if t.is_ident("SystemTime") {
            out.push(finding(
                LintId::W001,
                file,
                t,
                "`SystemTime` reads the wall clock — protocol code must take timestamps \
                 from the owning lane's virtual clock (determinism rules 1 and 4)"
                    .to_string(),
            ));
        }
    }
    out
}

/// MLPT-W002 — ambient randomness. Every random draw must come from a
/// seeded ChaCha8 stream so any run replays from its seed.
pub fn w002_ambient_randomness(
    file: &str,
    tokens: &[Token],
    regions: &[(u32, u32)],
) -> Vec<Finding> {
    const AMBIENT: [&str; 5] = [
        "thread_rng",
        "from_entropy",
        "from_os_rng",
        "OsRng",
        "getrandom",
    ];
    let toks = code_tokens(tokens);
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if in_test_region(regions, t.line) {
            continue;
        }
        if t.kind == TokenKind::Ident && AMBIENT.contains(&t.text.as_str()) {
            out.push(finding(
                LintId::W002,
                file,
                t,
                format!(
                    "`{}` draws ambient (OS) randomness — all randomness must be seeded \
                     ChaCha8 so runs replay bit-identically from the seed (determinism rule 2)",
                    t.text
                ),
            ));
        }
        // `rand::random()` — the two-token path form, so a local
        // variable merely *named* `random` stays clean.
        if t.is_ident("rand")
            && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 3).is_some_and(|a| a.is_ident("random"))
        {
            out.push(finding(
                LintId::W002,
                file,
                t,
                "`rand::random()` draws from the ambient thread RNG — all randomness must \
                 be seeded ChaCha8 (determinism rule 2)"
                    .to_string(),
            ));
        }
    }
    out
}

/// Methods whose call on a hash collection visits entries in hash
/// order.
const ITER_METHODS: [&str; 11] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "retain_mut",
];

/// Collects identifiers declared with a `HashMap`/`HashSet` type in
/// this file (fields, `let` bindings, parameters) outside test
/// regions. Two shapes:
///
/// * `name: [&][mut] [std::collections::] HashMap<...>` — the first
///   concrete type ident after the `:` must be the hash type itself,
///   so `x: Option<HashMap<...>>` or `x: Vec<(K, HashSet<V>)>` do
///   *not* register `x` (iterating those is ordered by the wrapper).
/// * `name = [std::collections::] HashMap::new()` (also
///   `with_capacity`, `from`, `default`) — `let` bindings and
///   assignments without a type annotation.
fn hash_typed_names(toks: &[&Token], regions: &[(u32, u32)]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test_region(regions, t.line) {
            continue;
        }
        if !(t.text == "HashMap" || t.text == "HashSet") {
            continue;
        }
        // Walk backwards over tokens that may sit between the declared
        // name and the hash type: `:`/`=`, `&`, `mut`, lifetimes, and
        // the `std::collections::` path prefix.
        let mut j = i;
        let mut saw_separator = None;
        while j > 0 {
            j -= 1;
            let prev = toks[j];
            match prev.kind {
                TokenKind::Punct if prev.is_punct(':') || prev.is_punct('=') => {
                    // `::` path separator keeps scanning; a single `:`
                    // or `=` is the declaration separator.
                    if prev.is_punct(':') && j > 0 && toks[j - 1].is_punct(':') {
                        j -= 1;
                        continue;
                    }
                    saw_separator = Some(prev.text.clone());
                    break;
                }
                TokenKind::Punct if prev.is_punct('&') => continue,
                TokenKind::Lifetime => continue,
                TokenKind::Ident
                    if prev.text == "mut" || prev.text == "std" || prev.text == "collections" =>
                {
                    continue
                }
                _ => break,
            }
        }
        if saw_separator.is_none() {
            continue;
        }
        // The ident immediately before the separator is the name.
        while j > 0 {
            j -= 1;
            let prev = toks[j];
            if prev.kind == TokenKind::Ident {
                if prev.text != "mut" {
                    names.insert(prev.text.clone());
                }
                if prev.text == "mut" {
                    continue;
                }
                break;
            }
            break;
        }
    }
    names
}

/// MLPT-W003 — iteration over unordered hash collections in protocol
/// paths. Lookups are fine (`get`, `contains_key`, `insert`, `remove`
/// are order-free); *visiting entries* leaks hash order into whatever
/// consumes the visit — in protocol code, ultimately probe order.
pub fn w003_hash_iteration(file: &str, tokens: &[Token], regions: &[(u32, u32)]) -> Vec<Finding> {
    let toks = code_tokens(tokens);
    let names = hash_typed_names(&toks, regions);
    if names.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if in_test_region(regions, t.line) {
            continue;
        }
        // `name.iter()` / `name.retain(...)` / ... method-call form.
        if t.kind == TokenKind::Ident
            && names.contains(&t.text)
            && toks.get(i + 1).is_some_and(|a| a.is_punct('.'))
            && toks.get(i + 2).is_some_and(|a| {
                a.kind == TokenKind::Ident && ITER_METHODS.contains(&a.text.as_str())
            })
            && toks.get(i + 3).is_some_and(|a| a.is_punct('('))
        {
            let method = &toks[i + 2].text;
            out.push(finding(
                LintId::W003,
                file,
                t,
                format!(
                    "`.{method}()` visits unordered `{}` entries in hash order — in protocol \
                     paths this leaks into probe order (determinism rules 3 and 5); use a \
                     `BTreeMap`/`BTreeSet`, or collect-and-sort before iterating",
                    t.text
                ),
            ));
        }
        // `for x in [&][mut] name { ... }` — direct for-loop form over
        // a plain place expression (method-call forms are caught
        // above).
        if t.is_ident("for") {
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < toks.len() {
                let tk = toks[j];
                if tk.is_punct('(') || tk.is_punct('[') {
                    depth += 1;
                } else if tk.is_punct(')') || tk.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && tk.is_ident("in") {
                    break;
                }
                j += 1;
            }
            let expr_start = j + 1;
            let mut expr_end = expr_start;
            while expr_end < toks.len() && !toks[expr_end].is_punct('{') {
                expr_end += 1;
            }
            let expr = &toks[expr_start..expr_end.min(toks.len())];
            let plain = expr.iter().all(|tk| {
                tk.is_punct('&')
                    || tk.is_punct('.')
                    || tk.kind == TokenKind::Ident
                    || tk.kind == TokenKind::Number
            });
            if plain {
                if let Some(last) = expr.last() {
                    if last.kind == TokenKind::Ident && names.contains(&last.text) {
                        out.push(finding(
                            LintId::W003,
                            file,
                            last,
                            format!(
                                "`for` loop visits unordered `{}` entries in hash order — in \
                                 protocol paths this leaks into probe order (determinism rules \
                                 3 and 5); use a `BTreeMap`/`BTreeSet`, or collect-and-sort \
                                 before iterating",
                                last.text
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// MLPT-W004 — panic-class calls in engine non-test code. The engine
/// has typed surfaces (`EngineError`, `TraceOutcome::Partial`) for
/// everything genuinely fallible; a panic in a sweep takes down every
/// other destination's session with it.
pub fn w004_panic_class(file: &str, tokens: &[Token], regions: &[(u32, u32)]) -> Vec<Finding> {
    let toks = code_tokens(tokens);
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if in_test_region(regions, t.line) {
            continue;
        }
        if t.kind != TokenKind::Ident {
            continue;
        }
        let method_call = |name: &str| {
            t.text == name
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|a| a.is_punct('('))
        };
        let macro_call =
            |name: &str| t.text == name && toks.get(i + 1).is_some_and(|a| a.is_punct('!'));
        if method_call("unwrap") || method_call("expect") {
            out.push(finding(
                LintId::W004,
                file,
                t,
                format!(
                    "`.{}()` can panic mid-sweep — convert genuinely fallible paths to the \
                     typed `EngineError`/`TraceOutcome` surfaces, or pragma provably \
                     infallible ones with the invariant as the reason",
                    t.text
                ),
            ));
        } else if macro_call("panic") || macro_call("unreachable") {
            out.push(finding(
                LintId::W004,
                file,
                t,
                format!(
                    "`{}!` aborts the whole sweep — convert genuinely fallible paths to the \
                     typed `EngineError`/`TraceOutcome` surfaces, or pragma provably \
                     infallible ones with the invariant as the reason",
                    t.text
                ),
            ));
        }
    }
    out
}

/// A struct definition relevant to the merge-exhaustiveness lint.
#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    pub file: String,
    pub line: u32,
    /// `(field name, line, col)` in declaration order.
    pub fields: Vec<(String, u32, u32)>,
}

/// A `fn merge`-style method body found in an inherent `impl NAME`
/// block.
#[derive(Debug, Clone)]
pub struct MergeFn {
    pub type_name: String,
    pub method: String,
    pub file: String,
    /// Every identifier mentioned anywhere in the method body.
    pub idents: BTreeSet<String>,
}

/// Extracts configured struct definitions and matching merge-method
/// bodies from one file (test regions excluded — a test double named
/// like the real struct must not satisfy the check).
pub fn w005_extract(
    file: &str,
    tokens: &[Token],
    regions: &[(u32, u32)],
    checks: &[(String, String)],
) -> (Vec<StructDef>, Vec<MergeFn>) {
    let toks = code_tokens(tokens);
    let mut structs = Vec::new();
    let mut merges = Vec::new();
    let struct_names: BTreeSet<&str> = checks.iter().map(|(s, _)| s.as_str()).collect();

    let mut i = 0;
    while i < toks.len() {
        let t = toks[i];
        if in_test_region(regions, t.line) {
            i += 1;
            continue;
        }
        if t.is_ident("struct")
            && toks.get(i + 1).is_some_and(|n| {
                n.kind == TokenKind::Ident && struct_names.contains(n.text.as_str())
            })
        {
            let name_tok = toks[i + 1];
            // Skip to the opening brace (tolerating generics) or a `;`
            // (unit struct — no fields to check).
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j >= toks.len() || toks[j].is_punct(';') {
                i = j;
                continue;
            }
            let mut fields = Vec::new();
            let mut depth = 1usize;
            let mut expecting = true;
            j += 1;
            while j < toks.len() && depth > 0 {
                let tk = toks[j];
                if tk.is_punct('{') {
                    depth += 1;
                } else if tk.is_punct('}') {
                    depth -= 1;
                } else if depth == 1 {
                    if tk.is_punct('#') && toks.get(j + 1).is_some_and(|a| a.is_punct('[')) {
                        // Skip attribute group, still expecting a field.
                        let mut d = 0usize;
                        j += 1;
                        while j < toks.len() {
                            if toks[j].is_punct('[') {
                                d += 1;
                            } else if toks[j].is_punct(']') {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            j += 1;
                        }
                    } else if tk.is_punct(',') {
                        expecting = true;
                    } else if expecting && tk.is_ident("pub") {
                        // `pub` / `pub(crate)` — skip the visibility.
                        if toks.get(j + 1).is_some_and(|a| a.is_punct('(')) {
                            while j < toks.len() && !toks[j].is_punct(')') {
                                j += 1;
                            }
                        }
                    } else if expecting
                        && tk.kind == TokenKind::Ident
                        && toks.get(j + 1).is_some_and(|a| a.is_punct(':'))
                        && !toks.get(j + 2).is_some_and(|a| a.is_punct(':'))
                    {
                        fields.push((tk.text.clone(), tk.line, tk.col));
                        expecting = false;
                    } else {
                        expecting = false;
                    }
                }
                j += 1;
            }
            structs.push(StructDef {
                name: name_tok.text.clone(),
                file: file.to_string(),
                line: name_tok.line,
                fields,
            });
            i = j;
            continue;
        }
        // Inherent impl block: `impl NAME {` (the workspace's merge
        // methods live in inherent impls; trait impls are out of
        // scope for this lint).
        if t.is_ident("impl")
            && toks.get(i + 1).is_some_and(|n| {
                n.kind == TokenKind::Ident && struct_names.contains(n.text.as_str())
            })
            && toks.get(i + 2).is_some_and(|a| a.is_punct('{'))
        {
            let type_name = toks[i + 1].text.clone();
            let methods: BTreeSet<&str> = checks
                .iter()
                .filter(|(s, _)| *s == type_name)
                .map(|(_, m)| m.as_str())
                .collect();
            let mut depth = 1usize;
            let mut j = i + 3;
            while j < toks.len() && depth > 0 {
                let tk = toks[j];
                if tk.is_punct('{') {
                    depth += 1;
                } else if tk.is_punct('}') {
                    depth -= 1;
                } else if depth == 1
                    && tk.is_ident("fn")
                    && toks.get(j + 1).is_some_and(|n| {
                        n.kind == TokenKind::Ident && methods.contains(n.text.as_str())
                    })
                {
                    let method = toks[j + 1].text.clone();
                    // Skip the signature to the body's opening brace,
                    // then collect every ident until it closes.
                    let mut k = j + 2;
                    while k < toks.len() && !toks[k].is_punct('{') {
                        k += 1;
                    }
                    let mut body_depth = 0usize;
                    let mut idents = BTreeSet::new();
                    while k < toks.len() {
                        let b = toks[k];
                        if b.is_punct('{') {
                            body_depth += 1;
                        } else if b.is_punct('}') {
                            body_depth -= 1;
                            if body_depth == 0 {
                                break;
                            }
                        } else if b.kind == TokenKind::Ident {
                            idents.insert(b.text.clone());
                        }
                        k += 1;
                    }
                    merges.push(MergeFn {
                        type_name: type_name.clone(),
                        method,
                        file: file.to_string(),
                        idents,
                    });
                    j = k;
                }
                j += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    (structs, merges)
}

/// MLPT-W005 — merge exhaustiveness, checked across the whole scan:
/// every field of a configured struct must be mentioned in a matching
/// merge method. Same-file pairs are checked in isolation (so fixture
/// copies cannot satisfy each other); a struct with no same-file merge
/// falls back to merges found in other files — the cross-file
/// backstop.
pub fn w005_check(
    structs: &[StructDef],
    merges: &[MergeFn],
    checks: &[(String, String)],
) -> Vec<Finding> {
    let mut out = Vec::new();
    for def in structs {
        let Some((_, method)) = checks.iter().find(|(s, _)| *s == def.name) else {
            continue;
        };
        let same_file: Vec<&MergeFn> = merges
            .iter()
            .filter(|m| m.type_name == def.name && m.method == *method && m.file == def.file)
            .collect();
        let candidates: Vec<&MergeFn> = if same_file.is_empty() {
            merges
                .iter()
                .filter(|m| m.type_name == def.name && m.method == *method)
                .collect()
        } else {
            same_file
        };
        if candidates.is_empty() {
            out.push(Finding {
                lint: LintId::W005,
                file: def.file.clone(),
                line: def.line,
                col: 1,
                message: format!(
                    "`{}` has no `{}()` — every stats struct that shards must merge \
                     exhaustively (the PR 9 `final_in_flight_budget` bug class)",
                    def.name, method
                ),
            });
            continue;
        }
        for (field, line, col) in &def.fields {
            let mentioned = candidates.iter().any(|m| m.idents.contains(field));
            if !mentioned {
                out.push(Finding {
                    lint: LintId::W005,
                    file: def.file.clone(),
                    line: *line,
                    col: *col,
                    message: format!(
                        "field `{field}` of `{}` is never mentioned in `{}()` — an \
                         unmerged counter silently drops a shard's total (the PR 9 \
                         `final_in_flight_budget` bug class); merge it, and prefer \
                         exhaustive destructuring with no `..` so the compiler catches \
                         the next one",
                        def.name, method
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run<F>(src: &str, lint: F) -> Vec<Finding>
    where
        F: Fn(&str, &[Token], &[(u32, u32)]) -> Vec<Finding>,
    {
        let tokens = lex(src);
        let regions = test_regions(&tokens);
        lint("t.rs", &tokens, &regions)
    }

    #[test]
    fn w001_flags_instant_now_and_system_time() {
        let src =
            "fn f() {\n    let t = Instant::now();\n    let s = std::time::SystemTime::now();\n}";
        let found = run(src, w001_wall_clock);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].line, 2);
        assert_eq!(found[1].line, 3);
    }

    #[test]
    fn w001_ignores_strings_comments_and_tests() {
        let src = "fn f() {\n    // Instant::now() in a comment\n    let s = \"Instant::now()\";\n}\n#[cfg(test)]\nmod tests {\n    fn t() { let x = Instant::now(); }\n}";
        assert!(run(src, w001_wall_clock).is_empty());
    }

    #[test]
    fn w002_flags_ambient_sources() {
        let src = "fn f() {\n    let mut rng = thread_rng();\n    let a = ChaCha8Rng::from_entropy();\n    let b = rand::random::<u8>();\n}";
        let found = run(src, w002_ambient_randomness);
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn w002_leaves_seeded_chacha_alone() {
        let src = "fn f(seed: u64) { let rng = ChaCha8Rng::seed_from_u64(seed); let random = 3; }";
        assert!(run(src, w002_ambient_randomness).is_empty());
    }

    #[test]
    fn w003_flags_typed_names_only() {
        let src = "struct S { map: HashMap<u32, u32>, ordered: BTreeMap<u32, u32> }\n\
                   fn f(s: &S, v: Vec<u32>) {\n\
                       for x in &s.map {}\n\
                       for x in &s.ordered {}\n\
                       for x in &v {}\n\
                       s.map.values();\n\
                       v.iter();\n\
                   }";
        let found = run(src, w003_hash_iteration);
        assert_eq!(found.len(), 2, "{found:?}");
        assert_eq!(found[0].line, 3);
        assert_eq!(found[1].line, 6);
    }

    #[test]
    fn w003_lookups_are_not_iteration() {
        let src = "fn f(m: &mut HashMap<u32, u32>) {\n    m.insert(1, 2);\n    m.get(&1);\n    m.remove(&1);\n    m.contains_key(&1);\n}";
        assert!(run(src, w003_hash_iteration).is_empty());
    }

    #[test]
    fn w003_let_binding_and_retain() {
        let src = "fn f() {\n    let mut seen = HashSet::new();\n    seen.retain(|_| true);\n    let also: HashMap<u32, u32> = HashMap::new();\n    also.drain();\n}";
        let found = run(src, w003_hash_iteration);
        assert_eq!(found.len(), 2, "{found:?}");
    }

    #[test]
    fn w003_wrapped_hash_types_do_not_register_the_wrapper() {
        let src =
            "fn f(groups: Vec<(Vec<usize>, HashSet<u32>)>, o: Option<HashMap<u32, u32>>) {\n    groups.iter();\n    o.iter();\n}";
        assert!(run(src, w003_hash_iteration).is_empty());
    }

    #[test]
    fn w004_flags_panic_class_outside_tests() {
        let src = "fn f(x: Option<u32>) {\n    x.unwrap();\n    x.expect(\"m\");\n    panic!(\"boom\");\n    unreachable!();\n}\n#[cfg(test)]\nmod tests {\n    fn t(x: Option<u32>) { x.unwrap(); }\n}";
        let found = run(src, w004_panic_class);
        assert_eq!(found.len(), 4);
        assert!(found.iter().all(|f| f.line <= 5));
    }

    #[test]
    fn w004_ignores_unwrap_or_variants() {
        let src = "fn f(x: Option<u32>) { x.unwrap_or(0); x.unwrap_or_default(); x.unwrap_or_else(|| 1); }";
        assert!(run(src, w004_panic_class).is_empty());
    }

    #[test]
    fn w004_cfg_not_test_stays_in_scope() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) { x.unwrap(); }";
        assert_eq!(run(src, w004_panic_class).len(), 1);
    }

    #[test]
    fn w005_missing_field_flagged_at_its_line() {
        let src = "pub struct SweepStats {\n    pub a: u64,\n    pub b: u64,\n    pub missing: u64,\n}\n\
                   impl SweepStats {\n    pub fn merge(&mut self, other: &SweepStats) {\n        self.a += other.a;\n        self.b += other.b;\n    }\n}";
        let tokens = lex(src);
        let regions = test_regions(&tokens);
        let checks = vec![("SweepStats".to_string(), "merge".to_string())];
        let (structs, merges) = w005_extract("t.rs", &tokens, &regions, &checks);
        assert_eq!(structs.len(), 1);
        assert_eq!(structs[0].fields.len(), 3);
        assert_eq!(merges.len(), 1);
        let found = w005_check(&structs, &merges, &checks);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 4);
        assert!(found[0].message.contains("missing"));
    }

    #[test]
    fn w005_exhaustive_destructuring_counts_as_mentioned() {
        let src = "pub struct SweepStats { pub a: u64, pub b: u64 }\n\
                   impl SweepStats {\n    pub fn merge(&mut self, other: &SweepStats) {\n        let SweepStats { a, b } = *other;\n        self.a += a;\n        self.b += b;\n    }\n}";
        let tokens = lex(src);
        let regions = test_regions(&tokens);
        let checks = vec![("SweepStats".to_string(), "merge".to_string())];
        let (structs, merges) = w005_extract("t.rs", &tokens, &regions, &checks);
        assert!(w005_check(&structs, &merges, &checks).is_empty());
    }

    #[test]
    fn w005_struct_with_attrs_and_docs() {
        let src = "/// Docs.\npub struct SweepStats {\n    /// Per-field docs.\n    #[serde(default)]\n    pub a: u64,\n    pub b: u64,\n}\nimpl SweepStats {\n    pub fn merge(&mut self, other: &SweepStats) { self.a += other.a; }\n}";
        let tokens = lex(src);
        let regions = test_regions(&tokens);
        let checks = vec![("SweepStats".to_string(), "merge".to_string())];
        let (structs, merges) = w005_extract("t.rs", &tokens, &regions, &checks);
        assert_eq!(structs[0].fields.len(), 2, "{:?}", structs[0].fields);
        let found = w005_check(&structs, &merges, &checks);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains('b'));
    }

    #[test]
    fn w005_missing_merge_entirely() {
        let src = "pub struct SweepStats { pub a: u64 }";
        let tokens = lex(src);
        let regions = test_regions(&tokens);
        let checks = vec![("SweepStats".to_string(), "merge".to_string())];
        let (structs, merges) = w005_extract("t.rs", &tokens, &regions, &checks);
        let found = w005_check(&structs, &merges, &checks);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("no `merge()`"));
    }

    #[test]
    fn test_regions_cover_single_items_and_mods() {
        let src = "fn real() {}\n#[cfg(test)]\nfn helper() {\n    body();\n}\nfn also_real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}";
        let tokens = lex(src);
        let regions = test_regions(&tokens);
        assert_eq!(regions.len(), 2);
        assert!(in_test_region(&regions, 4));
        assert!(!in_test_region(&regions, 6));
        assert!(in_test_region(&regions, 8));
    }
}
