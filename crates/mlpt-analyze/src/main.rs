//! CLI front-end: `cargo run -p mlpt-analyze -- [--root DIR] [--json]
//! [--deny all|MLPT-Wxxx,...] [--list-lints]`.
//!
//! Exit codes: `0` clean (or no denied findings), `1` at least one
//! denied finding, `2` usage or I/O error.

use mlpt_analyze::{analyze_workspace, diag, LintId, ScopeConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    deny: Vec<LintId>,
    list_lints: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        deny: Vec::new(),
        list_lints: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                let value = argv.next().ok_or("--root needs a directory")?;
                args.root = PathBuf::from(value);
            }
            "--json" => args.json = true,
            "--deny" => {
                let value = argv.next().ok_or("--deny needs `all` or a lint list")?;
                if value == "all" {
                    args.deny = LintId::ALL.to_vec();
                } else {
                    for code in value.split(',') {
                        let lint = LintId::parse(code.trim())
                            .ok_or_else(|| format!("unknown lint `{code}` in --deny"))?;
                        args.deny.push(lint);
                    }
                }
            }
            "--list-lints" => args.list_lints = true,
            "--help" | "-h" => {
                return Err(String::new()); // triggers usage, exit 2
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

const USAGE: &str =
    "usage: mlpt-analyze [--root DIR] [--json] [--deny all|MLPT-Wxxx,...] [--list-lints]

Determinism lint pass over the workspace's .rs files. Suppress a
finding inline with a justified pragma:

    // mlpt: allow(MLPT-W004, reason = \"invariant: ...\")
";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.list_lints {
        for lint in LintId::ALL {
            println!("{}  {}", lint.code(), lint.summary());
        }
        return ExitCode::SUCCESS;
    }

    let config = ScopeConfig::workspace_default();
    let report = match analyze_workspace(&args.root, &config) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("error: cannot walk {}: {error}", args.root.display());
            return ExitCode::from(2);
        }
    };

    if args.json {
        println!(
            "{}",
            diag::report_json(&report.findings, &report.suppressed, report.files_scanned)
        );
    } else {
        for finding in &report.findings {
            println!("{}", finding.render());
        }
        println!(
            "mlpt-analyze: {} file(s) scanned, {} finding(s), {} suppressed by pragma",
            report.files_scanned,
            report.findings.len(),
            report.suppressed.len()
        );
    }

    let denied = report.denied(&args.deny).count();
    if denied > 0 {
        if !args.json {
            println!("mlpt-analyze: {denied} finding(s) denied (--deny)");
        }
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
