//! Inline suppression pragmas.
//!
//! Grammar (inside a line comment):
//!
//! ```text
//! // mlpt: allow(MLPT-W003, reason = "order absorbed into a BTreeMap")
//! // mlpt: allow(MLPT-W001, MLPT-W002, reason = "...")
//! ```
//!
//! The `reason` string is **required and must be non-empty** — a
//! suppression without a recorded justification is itself a diagnostic
//! (`MLPT-E100`) and suppresses nothing. A pragma suppresses matching
//! findings on its own line (trailing-comment style) or, when it
//! stands alone on a line, on the next line that carries code. A
//! pragma that ends a run suppressing nothing is stale (`MLPT-E102`).

use crate::diag::{Finding, LintId};
use crate::lexer::{Token, TokenKind};

/// One parsed (or malformed) pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Lints this pragma suppresses. Empty if malformed.
    pub lints: Vec<LintId>,
    /// The required justification.
    pub reason: String,
    /// Line the pragma comment sits on.
    pub line: u32,
    /// Column of the comment.
    pub col: u32,
    /// The line whose findings this pragma covers (its own line, plus
    /// the next code line when the comment stands alone).
    pub target_line: u32,
    /// Parse problem, if any — surfaces as E100/E101.
    pub error: Option<PragmaError>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PragmaError {
    /// Not `allow(...)`, or unbalanced/garbled argument list.
    Malformed(String),
    /// `reason = "..."` missing or empty.
    MissingReason,
    /// A listed lint code is unknown.
    UnknownLint(String),
}

/// Extracts pragmas from a token stream. `comment` tokens carry their
/// full text; anything whose body starts with `mlpt:` is treated as an
/// attempted pragma — a well-formed `mlpt:` prefix with a bad tail is
/// reported rather than ignored, so a typo cannot silently disable a
/// lint.
pub fn collect(tokens: &[Token]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::LineComment {
            continue;
        }
        let body = token.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("mlpt:") else {
            continue;
        };
        let mut pragma = parse_body(rest.trim());
        pragma.line = token.line;
        pragma.col = token.col;
        pragma.target_line = target_line(tokens, i);
        out.push(pragma);
    }
    out
}

/// The line this pragma covers: its own line if code shares it
/// (trailing comment), otherwise the next line holding a code token.
fn target_line(tokens: &[Token], comment_index: usize) -> u32 {
    let comment = &tokens[comment_index];
    let code_on_own_line = tokens
        .iter()
        .any(|t| t.line == comment.line && !t.is_comment());
    if code_on_own_line {
        return comment.line;
    }
    tokens[comment_index + 1..]
        .iter()
        .find(|t| !t.is_comment())
        .map(|t| t.line)
        .unwrap_or(comment.line)
}

fn parse_body(body: &str) -> Pragma {
    let mut pragma = Pragma {
        lints: Vec::new(),
        reason: String::new(),
        line: 0,
        col: 0,
        target_line: 0,
        error: None,
    };
    let Some(args) = body
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|s| s.strip_prefix('('))
        .and_then(|s| s.strip_suffix(')'))
    else {
        pragma.error = Some(PragmaError::Malformed(format!(
            "expected `allow(MLPT-Wxxx, reason = \"...\")`, got `{body}`"
        )));
        return pragma;
    };
    // Split on commas that are outside the reason string.
    let mut parts = Vec::new();
    let mut depth_in_string = false;
    let mut current = String::new();
    for c in args.chars() {
        match c {
            '"' => {
                depth_in_string = !depth_in_string;
                current.push(c);
            }
            ',' if !depth_in_string => {
                parts.push(current.trim().to_string());
                current = String::new();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current.trim().to_string());
    }
    for part in parts {
        if let Some(value) = part.strip_prefix("reason") {
            let value = value.trim_start();
            let Some(quoted) = value
                .strip_prefix('=')
                .map(str::trim)
                .and_then(|v| v.strip_prefix('"'))
                .and_then(|v| v.strip_suffix('"'))
            else {
                pragma.error = Some(PragmaError::MissingReason);
                continue;
            };
            pragma.reason = quoted.to_string();
        } else {
            match LintId::parse(&part) {
                Some(lint) => pragma.lints.push(lint),
                None => {
                    pragma.error = Some(PragmaError::UnknownLint(part));
                }
            }
        }
    }
    if pragma.error.is_none() && pragma.reason.trim().is_empty() {
        pragma.error = Some(PragmaError::MissingReason);
    }
    if pragma.error.is_none() && pragma.lints.is_empty() {
        pragma.error = Some(PragmaError::Malformed(
            "pragma lists no lint IDs".to_string(),
        ));
    }
    pragma
}

/// Applies pragmas to raw findings: matching findings move to the
/// suppressed list, pragma problems become E100/E101 findings, and
/// pragmas that suppressed nothing become E102.
pub fn apply(
    file: &str,
    pragmas: &[Pragma],
    raw: Vec<Finding>,
) -> (Vec<Finding>, Vec<crate::diag::Suppressed>) {
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    let mut used = vec![false; pragmas.len()];

    'findings: for finding in raw {
        for (i, pragma) in pragmas.iter().enumerate() {
            let healthy = pragma.error.is_none();
            let covers = finding.line == pragma.target_line || finding.line == pragma.line;
            if healthy && covers && pragma.lints.contains(&finding.lint) {
                used[i] = true;
                suppressed.push(crate::diag::Suppressed {
                    finding,
                    reason: pragma.reason.clone(),
                });
                continue 'findings;
            }
        }
        findings.push(finding);
    }

    for (i, pragma) in pragmas.iter().enumerate() {
        match &pragma.error {
            Some(PragmaError::UnknownLint(code)) => findings.push(Finding {
                lint: LintId::E101,
                file: file.to_string(),
                line: pragma.line,
                col: pragma.col,
                message: format!("pragma names unknown lint `{code}` — it suppresses nothing"),
            }),
            Some(PragmaError::MissingReason) => findings.push(Finding {
                lint: LintId::E100,
                file: file.to_string(),
                line: pragma.line,
                col: pragma.col,
                message: "pragma is missing the required `reason = \"...\"` — \
                          a suppression without a recorded justification suppresses nothing"
                    .to_string(),
            }),
            Some(PragmaError::Malformed(detail)) => findings.push(Finding {
                lint: LintId::E100,
                file: file.to_string(),
                line: pragma.line,
                col: pragma.col,
                message: format!("malformed pragma: {detail}"),
            }),
            None => {
                if !used[i] {
                    findings.push(Finding {
                        lint: LintId::E102,
                        file: file.to_string(),
                        line: pragma.line,
                        col: pragma.col,
                        message: format!(
                            "pragma for {} suppressed nothing — stale after a fix; delete it",
                            pragma
                                .lints
                                .iter()
                                .map(|l| l.code())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    });
                }
            }
        }
    }
    (findings, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn pragma_of(src: &str) -> Pragma {
        let tokens = lex(src);
        let mut pragmas = collect(&tokens);
        assert_eq!(pragmas.len(), 1, "{src}");
        pragmas.remove(0)
    }

    #[test]
    fn well_formed_single_lint() {
        let p = pragma_of("// mlpt: allow(MLPT-W004, reason = \"invariant: built above\")\nx();");
        assert_eq!(p.lints, vec![LintId::W004]);
        assert_eq!(p.reason, "invariant: built above");
        assert!(p.error.is_none());
        assert_eq!(p.target_line, 2, "standalone comment covers next code line");
    }

    #[test]
    fn trailing_comment_covers_its_own_line() {
        let p = pragma_of("x(); // mlpt: allow(MLPT-W001, reason = \"bench timing\")");
        assert_eq!(p.target_line, 1);
    }

    #[test]
    fn multiple_lints() {
        let p = pragma_of("// mlpt: allow(MLPT-W001, MLPT-W002, reason = \"both\")\ny();");
        assert_eq!(p.lints, vec![LintId::W001, LintId::W002]);
    }

    #[test]
    fn missing_reason_is_an_error() {
        let p = pragma_of("// mlpt: allow(MLPT-W004)\nx();");
        assert_eq!(p.error, Some(PragmaError::MissingReason));
        let p = pragma_of("// mlpt: allow(MLPT-W004, reason = \"\")\nx();");
        assert_eq!(p.error, Some(PragmaError::MissingReason));
    }

    #[test]
    fn unknown_lint_is_an_error() {
        let p = pragma_of("// mlpt: allow(MLPT-W999, reason = \"nope\")\nx();");
        assert!(matches!(p.error, Some(PragmaError::UnknownLint(_))));
    }

    #[test]
    fn garbled_pragma_is_reported_not_ignored() {
        let p = pragma_of("// mlpt: alow(MLPT-W004, reason = \"typo\")\nx();");
        assert!(matches!(p.error, Some(PragmaError::Malformed(_))));
    }

    #[test]
    fn reason_may_contain_commas() {
        let p = pragma_of("// mlpt: allow(MLPT-W004, reason = \"a, b, and c\")\nx();");
        assert_eq!(p.reason, "a, b, and c");
        assert!(p.error.is_none());
    }

    #[test]
    fn pragma_skips_interleaved_comment_lines() {
        let src = "// mlpt: allow(MLPT-W004, reason = \"r\")\n// another comment\nx();";
        let p = pragma_of(src);
        assert_eq!(p.target_line, 3);
    }

    #[test]
    fn apply_suppresses_and_flags_stale() {
        let src = "// mlpt: allow(MLPT-W004, reason = \"covered\")\nfoo();\n\
                   // mlpt: allow(MLPT-W001, reason = \"stale\")\nbar();";
        let tokens = lex(src);
        let pragmas = collect(&tokens);
        let raw = vec![Finding {
            lint: LintId::W004,
            file: "f.rs".into(),
            line: 2,
            col: 1,
            message: "m".into(),
        }];
        let (findings, suppressed) = apply("f.rs", &pragmas, raw);
        assert_eq!(suppressed.len(), 1);
        assert_eq!(suppressed[0].reason, "covered");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, LintId::E102);
    }
}
