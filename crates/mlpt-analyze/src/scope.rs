//! Per-lint path scoping: which files each determinism rule governs.
//!
//! The rules are not uniform across the tree — that is the point.
//! Wall-clock reads are *correct* in `mlpt-bench` (benches measure the
//! host) and forbidden in protocol code; unordered iteration only
//! corrupts probe order where probes are emitted (`mlpt-core`,
//! `mlpt-sim`); the panic-class lint polices the engine surfaces that
//! have typed errors to use instead. Scoping is what gives the pass
//! precision, not just recall.

use crate::diag::LintId;

/// Include/exclude path rules for one lint. Paths are matched as
/// `/`-separated prefixes relative to the analysis root: the rule
/// `crates/mlpt-core/src/` covers everything under that directory, and
/// a full file path covers exactly that file.
#[derive(Debug, Clone, Default)]
pub struct PathPolicy {
    /// Prefixes the lint applies to. Empty = applies everywhere.
    pub include: Vec<String>,
    /// Prefixes exempted even when included. Wins over `include`.
    pub exclude: Vec<String>,
}

impl PathPolicy {
    pub fn everywhere() -> Self {
        PathPolicy::default()
    }

    pub fn includes(mut self, prefixes: &[&str]) -> Self {
        self.include.extend(prefixes.iter().map(|s| s.to_string()));
        self
    }

    pub fn excludes(mut self, prefixes: &[&str]) -> Self {
        self.exclude.extend(prefixes.iter().map(|s| s.to_string()));
        self
    }

    fn matches_prefix(path: &str, prefix: &str) -> bool {
        path == prefix
            || path
                .strip_prefix(prefix)
                .is_some_and(|rest| prefix.ends_with('/') || rest.starts_with('/'))
    }

    pub fn applies_to(&self, path: &str) -> bool {
        if self.exclude.iter().any(|p| Self::matches_prefix(path, p)) {
            return false;
        }
        self.include.is_empty() || self.include.iter().any(|p| Self::matches_prefix(path, p))
    }
}

/// The full scoping configuration for an analysis run.
#[derive(Debug, Clone)]
pub struct ScopeConfig {
    /// Directory prefixes never scanned at all (vendored stand-ins,
    /// build output, the analyzer's own known-bad fixture corpus).
    pub global_excludes: Vec<String>,
    policies: Vec<(LintId, PathPolicy)>,
    /// `(struct, method)` pairs checked by the merge-exhaustiveness
    /// lint (MLPT-W005).
    pub merge_checks: Vec<(String, String)>,
}

impl ScopeConfig {
    /// The workspace's determinism-rule scoping. This is the config CI
    /// enforces; the rationale for each entry lives in the README's
    /// "Static analysis" section.
    pub fn workspace_default() -> Self {
        let policies = vec![
            // MLPT-W001 — wall clock. Protocol code must read the
            // virtual clock (determinism rules 1 and 4). The *only*
            // sanctioned wall-clock reads are mlpt-bench's: benches
            // exist to measure the host. This exclusion is the
            // precedent for scoping precision: the identical call that
            // is a bug in `crates/mlpt-core/src/` is the whole point in
            // `crates/mlpt-bench/benches/`.
            (
                LintId::W001,
                PathPolicy::everywhere().excludes(&["crates/mlpt-bench/"]),
            ),
            // MLPT-W002 — ambient randomness. Nowhere is exempt: even
            // benches and tests must replay from seeds (rule 2).
            (LintId::W002, PathPolicy::everywhere()),
            // MLPT-W003 — unordered iteration. Scoped to the crates
            // that emit or answer probes: hash-order leaking into
            // probe order is the rule-3/rule-5 violation. Other crates
            // may iterate hash maps for reporting, where order is
            // absorbed before anything reaches the wire.
            (
                LintId::W003,
                PathPolicy::everywhere()
                    .includes(&["crates/mlpt-core/src/", "crates/mlpt-sim/src/"]),
            ),
            // MLPT-W004 — panic-class calls. Scoped to the engine
            // surfaces that have typed errors (`EngineError`,
            // `TraceOutcome::Partial`) to use instead: the sweep
            // engine, sessions, shards, the stop set, the wire crate
            // (already clean — this keeps it that way), and the CLI
            // front-end.
            (
                LintId::W004,
                PathPolicy::everywhere().includes(&[
                    "crates/mlpt-core/src/engine.rs",
                    "crates/mlpt-core/src/session.rs",
                    "crates/mlpt-core/src/shard.rs",
                    "crates/mlpt-core/src/stopset.rs",
                    "crates/mlpt-wire/src/",
                    "src/bin/mlpt.rs",
                ]),
            ),
            // MLPT-W005 — merge exhaustiveness. Applies wherever the
            // checked structs live.
            (LintId::W005, PathPolicy::everywhere()),
        ];
        ScopeConfig {
            global_excludes: vec![
                "vendor/".into(),
                "target/".into(),
                ".git/".into(),
                // The fixture corpus is *known-bad by design*.
                "crates/mlpt-analyze/fixtures/".into(),
            ],
            policies,
            merge_checks: vec![("SweepStats".into(), "merge".into())],
        }
    }

    /// Scoping for the fixture corpus: every lint applies everywhere,
    /// except a miniature copy of the bench exclusion so the corpus
    /// proves scoping precision (the same wall-clock call fires under
    /// `scope/crates/mlpt-core/` and stays silent under
    /// `scope/crates/mlpt-bench/`).
    pub fn fixture() -> Self {
        let policies = vec![
            (
                LintId::W001,
                PathPolicy::everywhere().excludes(&["scope/crates/mlpt-bench/"]),
            ),
            (LintId::W002, PathPolicy::everywhere()),
            (LintId::W003, PathPolicy::everywhere()),
            (LintId::W004, PathPolicy::everywhere()),
            (LintId::W005, PathPolicy::everywhere()),
        ];
        ScopeConfig {
            global_excludes: vec![],
            policies,
            merge_checks: vec![("SweepStats".into(), "merge".into())],
        }
    }

    /// Is `path` (relative, `/`-separated) scanned at all?
    pub fn scanned(&self, path: &str) -> bool {
        !self
            .global_excludes
            .iter()
            .any(|p| PathPolicy::matches_prefix(path, p))
    }

    /// Does `lint` govern `path`? Pragma-health diagnostics (E1xx)
    /// always apply wherever a pragma appears.
    pub fn lint_applies(&self, lint: LintId, path: &str) -> bool {
        match self.policies.iter().find(|(l, _)| *l == lint) {
            Some((_, policy)) => policy.applies_to(path),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matching_respects_component_boundaries() {
        let policy = PathPolicy::everywhere().includes(&["crates/mlpt-core/src/engine.rs"]);
        assert!(policy.applies_to("crates/mlpt-core/src/engine.rs"));
        assert!(!policy.applies_to("crates/mlpt-core/src/engine.rs.bak"));
        let dir = PathPolicy::everywhere().includes(&["crates/mlpt-core/src/"]);
        assert!(dir.applies_to("crates/mlpt-core/src/engine.rs"));
        assert!(!dir.applies_to("crates/mlpt-core/srcx/engine.rs"));
    }

    #[test]
    fn bench_wall_clock_is_exempt_and_core_is_not() {
        let config = ScopeConfig::workspace_default();
        assert!(!config.lint_applies(
            LintId::W001,
            "crates/mlpt-bench/benches/concurrent_sweep.rs"
        ));
        assert!(config.lint_applies(LintId::W001, "crates/mlpt-core/src/engine.rs"));
        assert!(config.lint_applies(LintId::W001, "tests/chaos.rs"));
    }

    #[test]
    fn w003_scoped_to_protocol_crates() {
        let config = ScopeConfig::workspace_default();
        assert!(config.lint_applies(LintId::W003, "crates/mlpt-sim/src/network.rs"));
        assert!(!config.lint_applies(LintId::W003, "crates/mlpt-survey/src/router_survey.rs"));
    }

    #[test]
    fn w004_scoped_to_engine_surfaces() {
        let config = ScopeConfig::workspace_default();
        assert!(config.lint_applies(LintId::W004, "crates/mlpt-core/src/session.rs"));
        assert!(config.lint_applies(LintId::W004, "src/bin/mlpt.rs"));
        assert!(config.lint_applies(LintId::W004, "crates/mlpt-wire/src/icmp.rs"));
        assert!(!config.lint_applies(LintId::W004, "crates/mlpt-core/src/mda.rs"));
    }

    #[test]
    fn fixtures_and_vendor_never_scanned() {
        let config = ScopeConfig::workspace_default();
        assert!(!config.scanned("vendor/rand/src/lib.rs"));
        assert!(!config.scanned("crates/mlpt-analyze/fixtures/bad/w001_wall_clock.rs"));
        assert!(config.scanned("crates/mlpt-analyze/src/lib.rs"));
    }
}
