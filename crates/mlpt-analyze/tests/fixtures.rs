//! The fixture corpus as an executable contract: every known-bad file
//! produces exactly the expected `(lint, line)` set, the pragma'd
//! copies suppress cleanly, the scoping pair proves per-path precision,
//! and — the gate that matters — the real workspace analyzes clean.

use mlpt_analyze::{analyze_files, analyze_workspace, LintId, ScopeConfig};
use std::path::Path;

fn fixture(rel: &str) -> (String, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rel);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    (rel.to_string(), src)
}

/// Analyzes one fixture file in isolation under the fixture scope and
/// returns its findings as `(lint, line)` pairs.
fn findings_of(rel: &str) -> Vec<(LintId, u32)> {
    let report = analyze_files(&[fixture(rel)], &ScopeConfig::fixture());
    report
        .findings
        .iter()
        .map(|f| {
            assert_eq!(f.file, rel);
            (f.lint, f.line)
        })
        .collect()
}

#[test]
fn bad_w001_wall_clock() {
    assert_eq!(
        findings_of("bad/w001_wall_clock.rs"),
        vec![(LintId::W001, 5), (LintId::W001, 10), (LintId::W001, 11),]
    );
}

#[test]
fn bad_w002_randomness() {
    assert_eq!(
        findings_of("bad/w002_randomness.rs"),
        vec![
            (LintId::W002, 5),
            (LintId::W002, 7),
            (LintId::W002, 11),
            (LintId::W002, 15),
        ]
    );
}

#[test]
fn bad_w003_hash_iteration() {
    assert_eq!(
        findings_of("bad/w003_hash_iteration.rs"),
        vec![
            (LintId::W003, 12),
            (LintId::W003, 16),
            (LintId::W003, 22),
            (LintId::W003, 31),
        ]
    );
}

#[test]
fn bad_w004_panic_class() {
    assert_eq!(
        findings_of("bad/w004_panic.rs"),
        vec![
            (LintId::W004, 6),
            (LintId::W004, 10),
            (LintId::W004, 14),
            (LintId::W004, 20),
        ]
    );
}

#[test]
fn bad_w005_merge_gap_points_at_the_missing_field() {
    let findings = findings_of("bad/w005_merge_gap.rs");
    assert_eq!(findings, vec![(LintId::W005, 8)]);
}

#[test]
fn bad_w005_no_merge_points_at_the_struct() {
    let findings = findings_of("bad/w005_no_merge.rs");
    assert_eq!(findings, vec![(LintId::W005, 5)]);
}

#[test]
fn allowed_copies_suppress_with_reasons() {
    for (rel, expected_suppressed) in [
        ("allowed/w001_allowed.rs", 2),
        ("allowed/w004_allowed.rs", 2),
    ] {
        let report = analyze_files(&[fixture(rel)], &ScopeConfig::fixture());
        assert!(report.findings.is_empty(), "{rel}: {:?}", report.findings);
        assert_eq!(report.suppressed.len(), expected_suppressed, "{rel}");
        for s in &report.suppressed {
            assert!(!s.reason.is_empty(), "{rel}: empty recorded reason");
        }
    }
}

#[test]
fn clean_file_is_silent() {
    let report = analyze_files(&[fixture("clean/clean.rs")], &ScopeConfig::fixture());
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.suppressed.is_empty());
}

#[test]
fn scoping_pair_fires_only_in_protocol_path() {
    // The SAME wall-clock read, two paths: the bench half is exempt by
    // scoping config, the protocol half fires. Precision, not recall.
    let files = vec![
        fixture("scope/crates/mlpt-bench/benches/timing.rs"),
        fixture("scope/crates/mlpt-core/src/timing.rs"),
    ];
    let report = analyze_files(&files, &ScopeConfig::fixture());
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.lint, LintId::W001);
    assert_eq!(f.file, "scope/crates/mlpt-core/src/timing.rs");
    assert_eq!(f.line, 6);
}

#[test]
fn pragma_missing_reason_is_flagged_and_suppresses_nothing() {
    let findings = findings_of("pragma/missing_reason.rs");
    assert_eq!(
        findings,
        vec![(LintId::E100, 6), (LintId::W004, 7)],
        "the unreasoned pragma must not eat the W004"
    );
}

#[test]
fn pragma_unknown_lint_is_flagged() {
    assert_eq!(
        findings_of("pragma/unknown_lint.rs"),
        vec![(LintId::E101, 5)]
    );
}

#[test]
fn pragma_unused_is_stale() {
    assert_eq!(findings_of("pragma/unused.rs"), vec![(LintId::E102, 5)]);
}

/// The acceptance gate: the real workspace, under the CI scoping
/// config, has zero live findings. Every past violation is either
/// fixed or carries a justified pragma.
#[test]
fn workspace_analyzes_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report =
        analyze_workspace(&root, &ScopeConfig::workspace_default()).expect("workspace walk");
    assert!(report.files_scanned > 50, "walk found the workspace");
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(
        report.findings.is_empty(),
        "live determinism findings:\n{}",
        rendered.join("\n")
    );
}
