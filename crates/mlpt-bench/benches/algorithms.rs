//! Tracing-algorithm cost: wall time and (reported via criterion
//! throughput labels) probe counts on the paper's canonical topologies.
//! The probe-count comparisons themselves are experiment `fig1`/`fig3`;
//! these benches keep the implementations honest about CPU cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mlpt_core::prelude::*;
use mlpt_sim::SimNetwork;
use mlpt_topo::canonical;
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");
    for (name, topo) in canonical::simulation_suite() {
        // The 48-wide meshed topology is heavy; trim its sample count.
        if name == "meshed" {
            group.sample_size(10);
        } else {
            group.sample_size(20);
        }
        group.bench_with_input(BenchmarkId::new("mda", name), &topo, |b, topo| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let net = SimNetwork::new(topo.clone(), seed);
                let mut prober = TransportProber::new(net, SRC, topo.destination());
                black_box(trace_mda(&mut prober, &TraceConfig::new(seed)))
            });
        });
        group.bench_with_input(BenchmarkId::new("mda_lite", name), &topo, |b, topo| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let net = SimNetwork::new(topo.clone(), seed);
                let mut prober = TransportProber::new(net, SRC, topo.destination());
                black_box(trace_mda_lite(&mut prober, &TraceConfig::new(seed)))
            });
        });
        group.bench_with_input(BenchmarkId::new("single_flow", name), &topo, |b, topo| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let net = SimNetwork::new(topo.clone(), seed);
                let mut prober = TransportProber::new(net, SRC, topo.destination());
                black_box(trace_single_flow(
                    &mut prober,
                    &TraceConfig::new(seed),
                    FlowId(9),
                ))
            });
        });
    }
    group.finish();

    c.bench_function("stopping/exact_table_alpha05_k128", |b| {
        b.iter(|| black_box(StoppingPoints::exact(0.05, 128)));
    });

    c.bench_function("analytic/mda_failure_meshed48", |b| {
        let topo = canonical::meshed();
        let nks = StoppingPoints::mda95();
        b.iter(|| {
            black_box(mlpt_sim::mda_failure_probability(
                black_box(&topo),
                nks.as_slice(),
            ))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench
}
criterion_main!(benches);
