//! Alias-resolution cost: MBT pair tests, partition building, and a full
//! multilevel trace over the packet path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mlpt_alias::evidence::EvidenceBase;
use mlpt_alias::mbt::{merged_monotonic, MbtParams};
use mlpt_alias::multilevel::{trace_multilevel, MultilevelConfig};
use mlpt_alias::resolver::{resolve, SeriesSource};
use mlpt_alias::series::IpIdSample;
use mlpt_core::prelude::*;
use mlpt_sim::SimNetwork;
use mlpt_topo::graph::addr;
use mlpt_topo::{MultipathTopology, RouterMap};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

fn series(base: u16, step: u16, offset: u64, n: usize) -> Vec<IpIdSample> {
    (0..n)
        .map(|i| IpIdSample {
            timestamp: offset + 2 * i as u64,
            ip_id: base.wrapping_add(step * i as u16),
            probe_ip_id: 0xFFFF,
        })
        .collect()
}

fn wide_evidence(width: usize) -> (EvidenceBase, BTreeSet<Ipv4Addr>) {
    let mut base = EvidenceBase::new();
    let mut candidates = BTreeSet::new();
    for i in 0..width {
        let a = addr(1, i);
        candidates.insert(a);
        // Pairs (2i, 2i+1) share counters.
        let counter_base = (i / 2 * 9000) as u16;
        base.entry(a).indirect_series = series(counter_base, 4, (i % 2) as u64, 30);
        base.entry(a).fingerprint.indirect_initial_ttl = Some(255);
    }
    (base, candidates)
}

fn bench(c: &mut Criterion) {
    c.bench_function("mbt/merged_monotonic_30x30", |b| {
        let a = series(100, 4, 0, 30);
        let bb = series(102, 4, 1, 30);
        let params = MbtParams::default();
        b.iter(|| black_box(merged_monotonic(black_box(&a), black_box(&bb), &params)));
    });

    for width in [8usize, 24, 48] {
        c.bench_function(&format!("resolver/partition_width_{width}"), |b| {
            let (base, candidates) = wide_evidence(width);
            let params = MbtParams::default();
            b.iter(|| {
                black_box(resolve(
                    black_box(&base),
                    &candidates,
                    SeriesSource::Indirect,
                    &params,
                ))
            });
        });
    }

    c.bench_function("multilevel/trace_1-6-1", |b| {
        let mut builder = MultipathTopology::builder();
        builder.add_hop([addr(0, 0)]);
        builder.add_hop((0..6).map(|i| addr(1, i)));
        builder.add_hop([addr(2, 0)]);
        builder.connect_unmeshed(0);
        builder.connect_unmeshed(1);
        let topo = builder.build().unwrap();
        let truth = RouterMap::from_alias_sets([
            vec![addr(1, 0), addr(1, 1)],
            vec![addr(1, 2), addr(1, 3)],
            vec![addr(1, 4), addr(1, 5)],
        ]);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let net = SimNetwork::builder(topo.clone())
                .routers(truth.clone())
                .seed(seed)
                .build();
            let mut prober =
                TransportProber::new(net, Ipv4Addr::new(192, 0, 2, 1), topo.destination());
            black_box(trace_multilevel(&mut prober, &MultilevelConfig::new(seed)))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
