//! Concurrent sweep vs the sequential full-trace loop.
//!
//! The workload is a survey slice: N synthetic-Internet destinations
//! traced with the full MDA, exactly as `run_ip_survey` traces them.
//!
//! * **sequential** — the pre-engine survey loop: one `SimNetwork` and
//!   one blocking `TransportProber` per destination, traces run one after
//!   another. Every per-trace probe round is its own transport crossing.
//! * **sweep** — the concurrent engine: one shared `MultiNetwork` (one
//!   lane per destination), one sans-IO `MdaSession` per destination,
//!   rounds merged into large cross-destination batches.
//!
//! Both paths do the identical wire work (asserted here, property-tested
//! in `tests/sweep_equivalence.rs`). The headline metric is
//! **probe-dispatch throughput**: probes moved per transport crossing.
//! On a raw-socket backend a crossing is one `sendmmsg` syscall plus one
//! round-trip wait, so probes-per-crossing is the unit that bounds how
//! fast a vantage point can drain a destination list; the sweep's merged
//! batches lift it by an order of magnitude. Wall-clock numbers on the
//! in-process simulator are also reported (there a crossing costs nothing,
//! so they mostly show the scheduler's bookkeeping overhead staying small).
//!
//! Results land in `BENCH_concurrent_sweep.json` at the workspace root.
//! Set `MLPT_BENCH_QUICK=1` (CI pull requests) for a reduced run.

use criterion::{black_box, Criterion};
use mlpt_core::engine::{SweepConfig, SweepEngine, SweepStats};
use mlpt_core::prelude::*;
use mlpt_core::session::drive;
use mlpt_sim::{MultiNetwork, SimNetwork};
use mlpt_survey::{InternetConfig, SyntheticInternet};
use serde_json::json;
use std::io::Write;

fn trace_seed_of(id: usize) -> u64 {
    0xA11A ^ (id as u64).wrapping_mul(0x9E37_79B9)
}

fn build_lane(internet: &SyntheticInternet, id: usize) -> SimNetwork {
    internet.scenario(id).build_network(trace_seed_of(id))
}

/// The sequential full-trace loop (the survey's former inner loop), also
/// counting its transport crossings: every probe round of every trace is
/// one dispatch.
fn run_sequential(internet: &SyntheticInternet, destinations: usize) -> (Vec<Trace>, u64, u64) {
    let mut traces = Vec::with_capacity(destinations);
    let mut crossings = 0u64;
    let mut probes = 0u64;
    for id in 0..destinations {
        let scenario = internet.scenario(id);
        let mut prober = TransportProber::new(
            build_lane(internet, id),
            scenario.source,
            scenario.topology.destination(),
        );
        // Drive the same session the engine runs, counting rounds: each
        // round is one probe_batch call, i.e. one transport crossing.
        let mut session = MdaSession::new(
            scenario.topology.destination(),
            TraceConfig::new(trace_seed_of(id)),
        );
        while session.poll() == SessionState::Probing {
            let results = prober.probe_batch(session.next_rounds());
            session.on_replies(&results);
            crossings += 1;
        }
        probes += prober.probes_sent();
        traces.push(session.take_trace(prober.probes_sent()));
    }
    (traces, crossings, probes)
}

/// The concurrent sweep over one shared network.
fn run_sweep(
    internet: &SyntheticInternet,
    destinations: usize,
    workers: usize,
) -> (Vec<Trace>, SweepStats) {
    let lanes: Vec<SimNetwork> = (0..destinations)
        .map(|id| build_lane(internet, id))
        .collect();
    let net = MultiNetwork::new(lanes)
        .expect("scenario destinations are unique")
        .with_workers(workers);
    let mut engine = SweepEngine::new(net, internet.scenario(0).source).with_config(SweepConfig {
        max_in_flight: 2048,
        retries: 0,
    });
    for id in 0..destinations {
        engine
            .add_session(Box::new(MdaSession::new(
                internet.scenario(id).topology.destination(),
                TraceConfig::new(trace_seed_of(id)),
            )))
            .expect("unique destination");
    }
    let traces = engine.run();
    (traces, *engine.stats())
}

fn main() {
    let quick = std::env::var("MLPT_BENCH_QUICK").is_ok_and(|v| !v.is_empty());
    let destinations = if quick { 16 } else { 64 };
    let samples = if quick { 5 } else { 12 };
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16);
    let internet = SyntheticInternet::new(InternetConfig::default());

    // Correctness first: the sweep must reproduce the sequential traces
    // bit for bit before its throughput means anything.
    let (seq_traces, seq_crossings, seq_probes) = run_sequential(&internet, destinations);
    let (sweep_traces, sweep_stats) = run_sweep(&internet, destinations, workers);
    assert_eq!(seq_traces.len(), sweep_traces.len());
    for (a, b) in seq_traces.iter().zip(&sweep_traces) {
        assert_eq!(a, b, "sweep diverged from sequential for {}", a.destination);
    }
    assert_eq!(seq_probes, sweep_stats.probes_sent);

    // Also keep the old blocking entry point honest: trace_mda is the
    // same machine under a thin driver.
    {
        let scenario = internet.scenario(0);
        let mut prober = TransportProber::new(
            build_lane(&internet, 0),
            scenario.source,
            scenario.topology.destination(),
        );
        let blocking = trace_mda(&mut prober, &TraceConfig::new(trace_seed_of(0)));
        assert_eq!(&blocking, &seq_traces[0]);
        let mut prober = TransportProber::new(
            build_lane(&internet, 0),
            scenario.source,
            scenario.topology.destination(),
        );
        let mut session = MdaSession::new(
            scenario.topology.destination(),
            TraceConfig::new(trace_seed_of(0)),
        );
        assert_eq!(drive(&mut session, &mut prober), blocking);
    }

    // Wall-clock measurements.
    let mut c = Criterion::default().sample_size(samples);
    c.bench_function("sweep/sequential_full_trace_loop", |b| {
        b.iter(|| black_box(run_sequential(&internet, destinations).2))
    });
    c.bench_function("sweep/concurrent_engine", |b| {
        b.iter(|| black_box(run_sweep(&internet, destinations, workers).1.probes_sent))
    });
    if workers > 1 {
        c.bench_function("sweep/concurrent_engine_1worker", |b| {
            b.iter(|| black_box(run_sweep(&internet, destinations, 1).1.probes_sent))
        });
    }

    let median_of = |id: &str| -> Option<f64> {
        c.results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.median.as_secs_f64())
    };
    let seq_wall = median_of("sweep/sequential_full_trace_loop");
    let sweep_wall = median_of("sweep/concurrent_engine");
    let wall_clock_speedup = seq_wall.zip(sweep_wall).map(|(s, e)| s / e);

    // The headline: probes moved per transport crossing, sweep vs the
    // sequential loop's one-round-per-crossing dispatch.
    let seq_throughput = seq_probes as f64 / seq_crossings as f64;
    let sweep_throughput = sweep_stats.probes_per_dispatch();
    let dispatch_throughput_speedup = sweep_throughput / seq_throughput;

    let results: Vec<serde_json::Value> = c
        .results()
        .iter()
        .map(|r| {
            json!({
                "id": r.id,
                "mean_ns": r.mean.as_nanos() as u64,
                "median_ns": r.median.as_nanos() as u64,
                "min_ns": r.min.as_nanos() as u64,
                "max_ns": r.max.as_nanos() as u64,
                "samples": r.samples,
                "iters_per_sample": r.iters_per_sample,
            })
        })
        .collect();

    let payload = json!({
        "benchmark": "concurrent_sweep",
        "destinations": destinations,
        "quick_mode": quick,
        "workload": "synthetic-Internet MDA traces (the ip_survey inner loop)",
        // Headline: probe-dispatch throughput = probes per transport
        // crossing. One crossing = one sendmmsg + one RTT wait on a real
        // backend; the sequential loop pays one per per-trace round, the
        // sweep amortizes one across every in-flight destination's round.
        "dispatch_throughput_speedup": dispatch_throughput_speedup,
        "probes_per_dispatch": {
            "sequential_full_trace_loop": seq_throughput,
            "concurrent_sweep": sweep_throughput,
        },
        "transport_crossings": {
            "sequential_full_trace_loop": seq_crossings,
            "concurrent_sweep": sweep_stats.dispatch_cycles,
        },
        "probes_sent_each": seq_probes,
        "traces_bit_identical": true,
        // Wall clock on the in-process simulator (a crossing costs ~0
        // here, so this isolates scheduler bookkeeping overhead; the
        // crossings metric above is what a socket backend feels).
        "wall_clock_speedup_sim": wall_clock_speedup,
        "simulator_workers": workers,
        "results": results,
    });

    let out_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_concurrent_sweep.json"
    );
    let mut file = std::fs::File::create(out_path).expect("create BENCH_concurrent_sweep.json");
    file.write_all(serde_json::to_string_pretty(&payload).unwrap().as_bytes())
        .expect("write BENCH_concurrent_sweep.json");
    println!("[concurrent_sweep results written to {out_path}]");
    println!(
        "dispatch throughput: {seq_throughput:.2} -> {sweep_throughput:.2} probes/crossing \
         ({dispatch_throughput_speedup:.1}x), wall clock {:?}x",
        wall_clock_speedup
    );
}
