//! Concurrent sweep vs the sequential full-trace loop, at survey scale.
//!
//! The workload is a survey slice: N synthetic-Internet destinations
//! traced with the full MDA, exactly as `run_ip_survey` traces them.
//!
//! * **sequential** — the pre-engine survey loop: one `SimNetwork` and
//!   one blocking `TransportProber` per destination, traces run one after
//!   another. Every per-trace probe round is its own transport crossing.
//! * **fixed table (eager admission)** — the pre-streaming engine: every
//!   session enters the table up front; batches collapse into a tail of
//!   tiny dispatches as stragglers drain.
//! * **streaming admission** — destinations stream into the engine as
//!   in-flight tokens free up, keeping batches full until the list runs
//!   dry.
//!
//! All paths do the identical wire work (asserted here, property-tested
//! in `tests/sweep_equivalence.rs`). The headline metrics:
//!
//! * **probe-dispatch throughput** — probes moved per transport
//!   crossing. On a raw-socket backend a crossing is one `sendmmsg`
//!   syscall plus one round-trip wait, so probes-per-crossing bounds how
//!   fast a vantage point drains a destination list.
//! * **tail utilization** — probes per dispatch over the *last 10% of
//!   probes*. The fixed table's tail collapses (a handful of straggler
//!   sessions per cycle); streaming admission keeps the tail within 2×
//!   of the full-sweep average. This bench FAILS (guarding CI) if the
//!   streaming tail regresses below half the full-sweep average.
//! * **wall clock** — with `simulator_workers > 1`, `MultiNetwork`
//!   spreads disjoint lanes over threads inside each crossing, so large
//!   merged batches convert into a real wall-clock speedup on multicore
//!   hosts (reported honestly along with the host's CPU count).
//!
//! An **adaptive-backoff experiment** (rate-limited lanes, inter-cycle
//! clock gap) is also run and asserted: the AIMD budget sends measurably
//! fewer probes into the rate-limited window than a fixed budget while
//! discovering the identical topology.
//!
//! An **alias-rounds sweep stage** runs the full multilevel pipeline
//! (trace + Round 0–10 alias resolution, the Sec. 4.2 protocol that
//! dominates a router-level survey's probe budget) as sessionized
//! `MultilevelSession`s: the blocking former inner loop — per-probe echo
//! crossings, per-round UDP crossings — vs all destinations streamed
//! through one engine. Probes/crossing and tail utilization are emitted
//! and floored (CI gates), with the per-destination outcomes asserted
//! bit-identical first.
//!
//! A **shared-stop-set stage** sweeps one shared-prefix destination
//! family at widths 16/64/256/1024 with the Doubletree stop set on:
//! per-destination topology equivalence (probed hops + reconstructed
//! prefix vs the classic sweep), the exact probe ledger and admission
//! bit-identity are asserted first; then probes/destination must fall
//! strictly with width and land >= 30% below the width-16 figure at
//! width 256 (CI gates).
//!
//! A **sharded-engine stage** partitions the same synthetic-Internet
//! workload across N engine shards (`ShardedSweepEngine`), each shard a
//! full engine on its own thread over its own transport split. Shard
//! counts {1, 2, 4, host_cpus} are swept; bit-identity against the
//! unsharded engine is asserted *before* any number is recorded, then
//! the wall-clock scaling curve lands in the JSON. The 2-shard run must
//! beat the 1-shard run only when the host actually has more than one
//! CPU — on a single-CPU host the threads cannot run in parallel, which
//! the report records honestly instead of gating.
//!
//! A **chaos stage** sweeps every built-in fault-schedule preset through
//! the robustness stack (probe deadlines, bounded retries, the stall
//! watchdog): liveness and the retry-wave accounting partition are
//! asserted, per-preset timeout/partial figures are reported.
//!
//! Results land in `BENCH_concurrent_sweep.json` at the workspace root.
//! Set `MLPT_BENCH_QUICK=1` (CI pull requests) for a reduced run.

use criterion::{black_box, Criterion};
use mlpt_alias::multilevel::{MultilevelConfig, MultilevelOutcome, MultilevelSession};
use mlpt_core::engine::{AdaptiveBudget, Admission, SweepConfig, SweepEngine, SweepStats};
use mlpt_core::prelude::*;
use mlpt_core::prober::ProbeSpec;
use mlpt_core::session::{drive, ProbeOutcome, ProbeRequest, ProbeSession, TraceSession};
use mlpt_sim::{FaultPlan, MultiNetwork, SimNetwork};
use mlpt_survey::{disjoint_scenario_groups, InternetConfig, SyntheticInternet, TraceScenario};
use serde_json::json;
use std::io::Write;

fn trace_seed_of(id: usize) -> u64 {
    0xA11A ^ (id as u64).wrapping_mul(0x9E37_79B9)
}

fn build_lane(internet: &SyntheticInternet, id: usize) -> SimNetwork {
    internet.scenario(id).build_network(trace_seed_of(id))
}

/// The sequential full-trace loop (the survey's former inner loop), also
/// counting its transport crossings: every probe round of every trace is
/// one dispatch.
fn run_sequential(internet: &SyntheticInternet, destinations: usize) -> (Vec<Trace>, u64, u64) {
    let mut traces = Vec::with_capacity(destinations);
    let mut crossings = 0u64;
    let mut probes = 0u64;
    for id in 0..destinations {
        let scenario = internet.scenario(id);
        let mut prober = TransportProber::new(
            build_lane(internet, id),
            scenario.source,
            scenario.topology.destination(),
        );
        // Drive the same session the engine runs, counting rounds: each
        // round is one probe_batch call, i.e. one transport crossing.
        let mut session = MdaSession::new(
            scenario.topology.destination(),
            TraceConfig::new(trace_seed_of(id)),
        );
        while session.poll() == SessionState::Probing {
            let results = prober.probe_batch(session.next_rounds());
            session.on_replies(&results);
            crossings += 1;
        }
        probes += prober.probes_sent();
        traces.push(session.take_trace(prober.probes_sent()));
    }
    (traces, crossings, probes)
}

/// One sweep over the shared network: sessions streamed (or eagerly
/// tabled) into the engine. Returns traces, stats and the per-cycle
/// batch-size series for tail measurements.
fn run_sweep(
    internet: &SyntheticInternet,
    destinations: usize,
    workers: usize,
    admission: Admission,
    max_in_flight: usize,
) -> (Vec<Trace>, SweepStats, Vec<u32>) {
    let lanes: Vec<SimNetwork> = (0..destinations)
        .map(|id| build_lane(internet, id))
        .collect();
    let net = MultiNetwork::new(lanes)
        .expect("scenario destinations are unique")
        .with_workers(workers);
    let mut engine = SweepEngine::new(net, internet.scenario(0).source).with_config(SweepConfig {
        max_in_flight,
        admission,
        ..SweepConfig::default()
    });
    let sessions = (0..destinations).map(|id| {
        Box::new(MdaSession::new(
            internet.scenario(id).topology.destination(),
            TraceConfig::new(trace_seed_of(id)),
        )) as Box<dyn TraceSession>
    });
    let traces = engine.run_stream(sessions);
    let stats = *engine.stats();
    let cycles = engine.cycle_batches().to_vec();
    (traces, stats, cycles)
}

/// Probes/dispatch over the cycles carrying the last `fraction` of the
/// probes (walked from the end of the cycle series).
fn tail_probes_per_dispatch(cycle_sizes: &[u32], fraction: f64) -> f64 {
    let total: u64 = cycle_sizes.iter().map(|&c| u64::from(c)).sum();
    if total == 0 {
        return 0.0;
    }
    let want = ((total as f64 * fraction).ceil() as u64).max(1);
    let mut got = 0u64;
    let mut cycles = 0u64;
    for &c in cycle_sizes.iter().rev() {
        got += u64::from(c);
        cycles += 1;
        if got >= want {
            break;
        }
    }
    got as f64 / cycles as f64
}

/// The adaptive-backoff acceptance experiment: rate-limited lanes behind
/// an inter-cycle clock gap, fixed vs AIMD budget.
fn backoff_experiment() -> serde_json::Value {
    const LANES: u32 = 8;
    let topologies: Vec<mlpt_topo::MultipathTopology> = (0..LANES)
        .map(|i| mlpt_topo::canonical::fig1_meshed().translated(0x0100_0000 * (i + 1)))
        .collect();
    let source: std::net::Ipv4Addr = "192.0.2.1".parse().expect("static");
    let run = |adaptive: Option<AdaptiveBudget>| {
        let lanes: Vec<SimNetwork> = topologies
            .iter()
            .enumerate()
            .map(|(i, topo)| {
                SimNetwork::builder(topo.clone())
                    .faults(FaultPlan::with_rate_limit_window(3, 12))
                    .seed(40 + i as u64)
                    .build()
            })
            .collect();
        let net = MultiNetwork::new(lanes)
            .expect("unique destinations")
            .with_cycle_gap(12);
        let mut engine = SweepEngine::new(net, source).with_config(SweepConfig {
            max_in_flight: 64,
            retries: 6,
            admission: Admission::Streaming,
            adaptive,
            ..SweepConfig::default()
        });
        let sessions = topologies.iter().enumerate().map(|(i, topo)| {
            Box::new(MdaSession::new(
                topo.destination(),
                TraceConfig::new(90 + i as u64),
            )) as Box<dyn TraceSession>
        });
        let traces = engine.run_stream(sessions);
        let stats = *engine.stats();
        let suppressed = engine.into_transport().counters().replies_rate_limited;
        (traces, stats, suppressed)
    };
    let (fixed_traces, fixed_stats, fixed_suppressed) = run(None);
    let (adaptive_traces, adaptive_stats, adaptive_suppressed) = run(Some(AdaptiveBudget {
        min_in_flight: 4,
        increase: 2,
        backoff: 0.5,
        loss_threshold: 0.02,
    }));

    // Same discovered topology (retry waves deliver every observation),
    // measurably fewer probes into the rate-limited window.
    for (fixed, adaptive) in fixed_traces.iter().zip(&adaptive_traces) {
        assert_eq!(
            fixed.discovery, adaptive.discovery,
            "backoff must not change discovery"
        );
    }
    assert!(
        adaptive_suppressed * 3 <= fixed_suppressed * 2,
        "adaptive must cut rate-limited suppressions by >=1/3: \
         fixed {fixed_suppressed}, adaptive {adaptive_suppressed}"
    );
    assert!(adaptive_stats.probes_sent < fixed_stats.probes_sent);
    assert!(adaptive_stats.budget_backoffs > 0 && adaptive_stats.lane_backoffs > 0);

    json!({
        "workload": format!("{LANES} rate-limited lanes (3 replies / 12 ticks per router), \
                             cycle gap 12, retries 6"),
        "fixed_budget": {
            "probes_sent": fixed_stats.probes_sent,
            "rate_limited_suppressions": fixed_suppressed,
        },
        "adaptive_budget": {
            "probes_sent": adaptive_stats.probes_sent,
            "rate_limited_suppressions": adaptive_suppressed,
            "budget_backoffs": adaptive_stats.budget_backoffs,
            "lane_backoffs": adaptive_stats.lane_backoffs,
            "final_in_flight_budget": adaptive_stats.final_in_flight_budget,
        },
        "suppression_cut": 1.0 - adaptive_suppressed as f64 / fixed_suppressed.max(1) as f64,
        "same_topology_discovered": true,
    })
}

/// Blocking baseline of the alias stage: the former router-survey inner
/// loop's crossing pattern — every echo probe is its own transport
/// crossing (one ping, one round-trip wait), every run of UDP probes one
/// batched crossing — driven through the same sessions so the wire work
/// is identical by construction.
fn run_alias_sequential(
    internet: &SyntheticInternet,
    ids: &[usize],
    rounds: &mlpt_alias::rounds::RoundsConfig,
) -> (Vec<MultilevelOutcome>, u64, u64) {
    let mut outcomes = Vec::with_capacity(ids.len());
    let mut crossings = 0u64;
    let mut probes = 0u64;
    for &id in ids {
        let scenario = internet.scenario(id);
        let mut prober = TransportProber::new(
            scenario.build_network(trace_seed_of(id)),
            scenario.source,
            scenario.topology.destination(),
        );
        let mut session = MultilevelSession::new(
            scenario.topology.destination(),
            MultilevelConfig {
                trace: TraceConfig::new(trace_seed_of(id)),
                rounds: rounds.clone(),
            },
        );
        let mut requests: Vec<ProbeRequest> = Vec::new();
        let mut specs: Vec<ProbeSpec> = Vec::new();
        let mut results: Vec<Option<ProbeOutcome>> = Vec::new();
        while session.poll() == SessionState::Probing {
            let before = prober.probes_sent();
            requests.clear();
            requests.extend_from_slice(session.next_rounds());
            results.clear();
            let mut i = 0;
            while i < requests.len() {
                match requests[i] {
                    ProbeRequest::Udp(_) => {
                        specs.clear();
                        while let Some(ProbeRequest::Udp(spec)) = requests.get(i) {
                            specs.push(*spec);
                            i += 1;
                        }
                        crossings += 1;
                        results.extend(
                            prober
                                .probe_batch(&specs)
                                .into_iter()
                                .map(|o| o.map(ProbeOutcome::Udp)),
                        );
                    }
                    ProbeRequest::Echo { target } => {
                        crossings += 1;
                        results.push(prober.direct_probe(target).map(ProbeOutcome::Echo));
                        i += 1;
                    }
                }
            }
            session.note_wire_probes(prober.probes_sent() - before);
            session.on_replies(&mut results);
        }
        probes += prober.probes_sent();
        outcomes.push(session.finish());
    }
    (outcomes, crossings, probes)
}

/// The alias-rounds sweep stage (see module docs): asserts bit-identical
/// outcomes, then emits probes/crossing and tail utilization with CI
/// floors.
fn alias_sweep_stage(internet: &SyntheticInternet, destinations: usize) -> serde_json::Value {
    let rounds = mlpt_alias::rounds::RoundsConfig::default(); // the paper's 10 x 30
    let ids: Vec<usize> = (0..destinations).collect();
    let (sequential, seq_crossings, seq_probes) = run_alias_sequential(internet, &ids, &rounds);

    // Streamed: address-disjoint groups (scenarios share wide core
    // structures, and echo probes route by interface address) each run
    // one engine; groups run back to back, so the concatenated cycle
    // series is the actual crossing sequence.
    let scenarios: Vec<TraceScenario> = ids.iter().map(|&id| internet.scenario(id)).collect();
    let refs: Vec<&TraceScenario> = scenarios.iter().collect();
    let mut streamed: Vec<Option<(MultilevelOutcome, u64)>> = Vec::new();
    streamed.resize_with(ids.len(), || None);
    let mut stream_probes = 0u64;
    let mut stream_crossings = 0u64;
    let mut cycle_sizes: Vec<u32> = Vec::new();
    let groups = disjoint_scenario_groups(&refs);
    let num_groups = groups.len();
    for group in groups {
        let lanes: Vec<SimNetwork> = group
            .iter()
            .map(|&i| scenarios[i].build_network(trace_seed_of(ids[i])))
            .collect();
        let net = MultiNetwork::new(lanes).expect("disjoint groups have unique destinations");
        let source = scenarios[group[0]].source;
        assert!(
            group.iter().all(|&i| scenarios[i].source == source),
            "alias sweeps assume a single vantage point"
        );
        let mut engine = SweepEngine::new(net, source).with_config(SweepConfig {
            max_in_flight: 256,
            admission: Admission::Streaming,
            ..SweepConfig::default()
        });
        let sessions = group.iter().map(|&i| {
            MultilevelSession::new(
                scenarios[i].topology.destination(),
                MultilevelConfig {
                    trace: TraceConfig::new(trace_seed_of(ids[i])),
                    rounds: rounds.clone(),
                },
            )
        });
        engine.run_sessions_with(sessions, |index, session, wire| {
            streamed[group[index]] = Some((session.finish(), wire));
        });
        stream_probes += engine.stats().probes_sent;
        stream_crossings += engine.stats().dispatch_cycles;
        cycle_sizes.extend_from_slice(engine.cycle_batches());
    }

    // Correctness before throughput: the streamed alias phase must be
    // bit-identical to the blocking loop — trace, per-round partitions,
    // per-address IP-ID evidence series, probe accounting.
    assert_eq!(seq_probes, stream_probes, "wire work diverged");
    for (i, slot) in streamed.into_iter().enumerate() {
        let (outcome, _wire) = slot.expect("every session completed");
        let reference = &sequential[i];
        assert_eq!(
            outcome.multilevel.trace, reference.multilevel.trace,
            "scenario {i}: trace diverged"
        );
        assert_eq!(
            outcome.multilevel.hop_reports, reference.multilevel.hop_reports,
            "scenario {i}: alias rounds diverged"
        );
        assert_eq!(
            outcome.hop_evidence, reference.hop_evidence,
            "scenario {i}: IP-ID evidence diverged"
        );
        assert_eq!(
            outcome.multilevel.alias_probes, reference.multilevel.alias_probes,
            "scenario {i}: alias probe accounting diverged"
        );
    }

    let seq_throughput = seq_probes as f64 / seq_crossings as f64;
    let stream_throughput = stream_probes as f64 / stream_crossings as f64;
    let speedup = stream_throughput / seq_throughput;
    let tail = tail_probes_per_dispatch(&cycle_sizes, 0.10);
    let tail_ratio = tail / stream_throughput;

    // CI floors. The blocking alias loop pays one crossing per echo, so
    // the sessionized sweep must amortize crossings by a wide margin;
    // and streaming admission must keep the tail from collapsing.
    assert!(
        speedup >= 3.0,
        "alias sweep dispatch throughput regressed: {stream_throughput:.1} vs \
         blocking {seq_throughput:.1} probes/crossing ({speedup:.2}x < 3x)"
    );
    assert!(
        tail_ratio >= 0.4,
        "alias sweep tail utilization regressed: tail {tail:.1} vs \
         overall {stream_throughput:.1} probes/dispatch (ratio {tail_ratio:.2} < 0.4)"
    );

    json!({
        "workload": format!(
            "{destinations} synthetic-Internet multilevel traces \
             (MDA-Lite + Round 0..=10 x 30 alias protocol), {num_groups} \
             address-disjoint sub-sweeps"
        ),
        "probes_sent_each": seq_probes,
        "probes_per_crossing": {
            "blocking_loop": seq_throughput,
            "streaming_engine": stream_throughput,
            "speedup": speedup,
            "floor_enforced": 3.0,
        },
        "transport_crossings": {
            "blocking_loop": seq_crossings,
            "streaming_engine": stream_crossings,
        },
        "tail_probes_per_dispatch_last10pct": {
            "streaming_engine": tail,
            "streaming_tail_over_average": tail_ratio,
            "floor_enforced": 0.4,
        },
        "outcomes_bit_identical": true,
    })
}

/// The straggler-admission stage: a mixed sweep of many narrow (no
/// alias work) and a few wide-hop destinations — the wide ones, each
/// carrying an 8-interface hop whose Round 0–10 campaign costs ~2400
/// probes, placed at the *end* of the source list. Under FIFO streaming
/// admission the narrow backlog holds the wide destinations back, so
/// their long alias wave chains start only once the cheap work is done
/// and the chain length adds to the sweep's makespan; cost-aware
/// admission reads the sessions' predicted-cost hints, starts the wide
/// destinations first, and absorbs the narrow work into the wide waves'
/// budget headroom. Outcomes are asserted bit-identical first — the
/// policy may only move probes in time — then makespan (transport
/// crossings: one sendmmsg + one RTT each on a real backend) and
/// last-10% tail utilization are floored for CI.
fn straggler_stage() -> serde_json::Value {
    use mlpt_alias::rounds::RoundsConfig;
    use mlpt_topo::graph::addr;
    use mlpt_topo::MultipathTopology;

    // Sized so the scheduling effect is real: the narrow sessions'
    // pending backlog (~6 probes each) exceeds the in-flight budget, so
    // FIFO streaming admission genuinely holds the last-listed wide
    // destinations back until the narrow stream has drained — the
    // straggler the ROADMAP describes — while the wide waves
    // (4 x 8 x 30 = 960 probes) leave budget headroom for cost-aware
    // admission to run the narrow work alongside them.
    const NARROW: usize = 1200;
    const WIDE: usize = 4;
    const BUDGET: usize = 2048;

    // Narrow lane: a straight 5-hop path — nothing to alias-resolve,
    // a handful of single-probe-per-hop trace rounds.
    let narrow_topology = || -> MultipathTopology {
        let mut b = MultipathTopology::builder();
        for hop in 0..5usize {
            b.add_hop([addr(hop, 0)]);
        }
        for hop in 0..4usize {
            b.connect_unmeshed(hop);
        }
        b.build().expect("valid path")
    };
    // Wide lane: a 1-8-1 diamond; the 8-interface hop drives a full
    // Round 0-10 x 30 campaign (8 + 2400 probes) after its trace.
    let wide_topology = || -> MultipathTopology {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop((0..8usize).map(|i| addr(1, i)));
        b.add_hop([addr(2, 0)]);
        b.connect_unmeshed(0);
        b.connect_unmeshed(1);
        b.build().expect("valid diamond")
    };
    // Narrow destinations first, the wide ones at the very end of the
    // admission stream — the straggler layout. The block stride must
    // clear each topology's own address span (< 0x0005_0000); it keeps
    // up to 8191 lanes inside the 32-bit address space, far above the
    // 1204 built here.
    const BLOCK: u32 = 0x0008_0000;
    let topologies: Vec<MultipathTopology> = (0..NARROW)
        .map(|i| narrow_topology().translated(BLOCK * (i as u32 + 1)))
        .chain((0..WIDE).map(|i| wide_topology().translated(BLOCK * ((NARROW + i) as u32 + 1))))
        .collect();
    let rounds = RoundsConfig::default();
    let cost_hint = |topology: &MultipathTopology| -> u64 {
        (0..topology.num_hops().saturating_sub(1))
            .map(|hop| topology.hop(hop).len())
            .filter(|&width| width >= 2)
            .map(|width| rounds.predicted_probes(width))
            .sum()
    };
    let source: std::net::Ipv4Addr = "192.0.2.1".parse().expect("static");

    let run = |admission: Admission| {
        let lanes: Vec<SimNetwork> = topologies
            .iter()
            .enumerate()
            .map(|(i, topology)| SimNetwork::new(topology.clone(), 1000 + i as u64))
            .collect();
        let net = MultiNetwork::new(lanes).expect("translated lanes are unique");
        let mut engine = SweepEngine::new(net, source).with_config(SweepConfig {
            max_in_flight: BUDGET,
            admission,
            ..SweepConfig::default()
        });
        let sessions = topologies.iter().enumerate().map(|(i, topology)| {
            MultilevelSession::new(
                topology.destination(),
                MultilevelConfig {
                    trace: TraceConfig::new(77 + i as u64),
                    rounds: rounds.clone(),
                },
            )
            .with_hop_fanout(true)
            .with_cost_hint(cost_hint(topology))
        });
        let mut outcomes: Vec<Option<MultilevelOutcome>> = Vec::new();
        outcomes.resize_with(topologies.len(), || None);
        engine.run_sessions_with(sessions, |index, session, _wire| {
            outcomes[index] = Some(session.finish());
        });
        let stats = *engine.stats();
        let cycles = engine.cycle_batches().to_vec();
        (outcomes, stats, cycles)
    };

    let (fifo_outcomes, fifo_stats, fifo_cycles) = run(Admission::Streaming);
    let (ca_outcomes, ca_stats, ca_cycles) = run(Admission::CostAware);

    // Correctness before scheduling: cost-aware admission must move
    // probes in time only.
    assert_eq!(fifo_stats.probes_sent, ca_stats.probes_sent);
    for (i, (fifo, ca)) in fifo_outcomes.iter().zip(&ca_outcomes).enumerate() {
        let (fifo, ca) = (
            fifo.as_ref().expect("completed"),
            ca.as_ref().expect("completed"),
        );
        assert_eq!(
            fifo.multilevel.trace, ca.multilevel.trace,
            "destination {i}: trace diverged under cost-aware admission"
        );
        assert_eq!(
            fifo.multilevel.hop_reports, ca.multilevel.hop_reports,
            "destination {i}: alias rounds diverged under cost-aware admission"
        );
        assert_eq!(
            fifo.hop_evidence, ca.hop_evidence,
            "destination {i}: evidence series diverged under cost-aware admission"
        );
    }

    let fifo_makespan = fifo_stats.dispatch_cycles;
    let ca_makespan = ca_stats.dispatch_cycles;
    let makespan_ratio = ca_makespan as f64 / fifo_makespan as f64;
    let fifo_tail = tail_probes_per_dispatch(&fifo_cycles, 0.10);
    let ca_tail = tail_probes_per_dispatch(&ca_cycles, 0.10);

    // CI floors (the ISSUE's acceptance numbers): cost-aware admission
    // must cut the mixed-width makespan by >= 10% and must not trade
    // the tail away for it.
    assert!(
        makespan_ratio <= 0.9,
        "cost-aware admission no longer cuts the straggler makespan: \
         {ca_makespan} vs FIFO {fifo_makespan} crossings (ratio {makespan_ratio:.3} > 0.9)"
    );
    assert!(
        ca_tail >= fifo_tail,
        "cost-aware tail utilization fell below FIFO's: \
         {ca_tail:.1} vs {fifo_tail:.1} probes/dispatch"
    );

    json!({
        "workload": format!(
            "{NARROW} straight-path + {WIDE} wide-hop (8-interface, Round 0..=10 x 30) \
             destinations, wide ones last in the source list, per-hop fan-out on, \
             in-flight budget {BUDGET}"
        ),
        "probes_sent_each": fifo_stats.probes_sent,
        "makespan_transport_crossings": {
            "fifo_streaming": fifo_makespan,
            "cost_aware": ca_makespan,
            "ratio": makespan_ratio,
            "ceiling_enforced": 0.9,
        },
        "tail_probes_per_dispatch_last10pct": {
            "fifo_streaming": fifo_tail,
            "cost_aware": ca_tail,
            "floor_enforced": "cost_aware >= fifo",
        },
        "outcomes_bit_identical": true,
    })
}

/// The shared-stop-set stage (Doubletree redundancy elimination): one
/// shared-prefix destination family — 20 common hops, then a 4-hop
/// per-destination suffix — swept at widths 16/64/256/1024 with the
/// sweep-wide stop set on (commit width 16, adaptive mid-path start).
///
/// Equivalence comes before any performance number: at every width the
/// classic sweep (stop set off) is run first, and each stop-set trace's
/// probed hops plus the prefix reconstructed from the final shared set
/// must equal the classic per-destination path exactly; the probe
/// ledger must balance (`sent + elided == classic sent`); and the stop
/// run must be bit-identical across admission modes (determinism
/// rule 5). Only then are probes/destination recorded. CI gates:
/// probes/destination strictly decreases with width, and width 256
/// spends >= 30% fewer probes per destination than width 16.
fn stop_set_stage() -> serde_json::Value {
    use mlpt_topo::canonical::shared_prefix_lane;
    const PREFIX: usize = 20;
    const SUFFIX: usize = 4;
    const WIDTHS: [usize; 4] = [16, 64, 256, 1024];
    let source: std::net::Ipv4Addr = "192.0.2.1".parse().expect("static");
    let stop_cfg = StopSetConfig {
        commit_width: 16,
        ..StopSetConfig::default()
    };

    // A trace's path as canonically ordered `(TTL, interface)` pairs.
    let path_of = |trace: &Trace| -> Vec<(u8, std::net::Ipv4Addr)> {
        let mut pairs: Vec<(u8, std::net::Ipv4Addr)> = (1..=trace.discovery.max_observed_ttl())
            .flat_map(|ttl| {
                trace
                    .discovery
                    .vertices_at(ttl)
                    .iter()
                    .map(move |v| (ttl, *v))
            })
            .collect();
        pairs.sort_unstable();
        pairs
    };

    let run = |width: usize, admission: Admission, stop: Option<StopSetConfig>| {
        let lanes: Vec<SimNetwork> = (0..width)
            .map(|i| SimNetwork::new(shared_prefix_lane(PREFIX, SUFFIX, i), 300 + i as u64))
            .collect();
        let net = MultiNetwork::new(lanes).expect("per-lane destinations are unique");
        let mut engine = SweepEngine::new(net, source).with_config(SweepConfig {
            max_in_flight: 256,
            admission,
            stop_set: stop,
            ..SweepConfig::default()
        });
        let sessions = (0..width).map(|i| {
            let destination = shared_prefix_lane(PREFIX, SUFFIX, i).destination();
            Box::new(SingleFlowSession::new(
                destination,
                TraceConfig::new(500 + i as u64),
                FlowId(7),
            )) as Box<dyn TraceSession>
        });
        let traces = engine.run_stream(sessions);
        let stats = *engine.stats();
        let snapshot = engine.stop_snapshot().cloned();
        (traces, stats, snapshot)
    };

    let mut per_width = Vec::new();
    let mut probes_per_destination = Vec::new();
    for width in WIDTHS {
        let (classic_traces, classic_stats, _) = run(width, Admission::Streaming, None);
        let (traces, stats, snapshot) = run(width, Admission::Streaming, Some(stop_cfg));
        let snapshot = snapshot.expect("stop-set run publishes a snapshot");

        // Topology equivalence first: every destination's classic path
        // must be recoverable from its stop-set trace plus the set.
        for (classic, stopped) in classic_traces.iter().zip(&traces) {
            assert!(stopped.reached_destination);
            let probed = path_of(stopped);
            let &(first_ttl, first_iface) = probed.first().expect("non-empty trace");
            let mut full: Vec<(u8, std::net::Ipv4Addr)> = snapshot
                .reconstruct_prefix(first_ttl, first_iface)
                .into_iter()
                .chain(probed)
                .collect();
            full.sort_unstable();
            full.dedup();
            assert_eq!(
                full,
                path_of(classic),
                "stop-set sweep lost topology for {} at width {width}",
                classic.destination
            );
        }
        // Exact ledger: every elided probe is one the classic sweep sent.
        assert_eq!(
            stats.probes_sent + stats.probes_elided,
            classic_stats.probes_sent,
            "probe ledger out of balance at width {width}"
        );
        // Determinism rule 5: admission modes replay the identical sweep.
        for admission in [
            Admission::Eager,
            Admission::CostAware,
            Admission::CostAwareWindowed(32),
        ] {
            let (again, again_stats, _) = run(width, admission, Some(stop_cfg));
            assert_eq!(
                again, traces,
                "admission {admission:?} diverged at width {width}"
            );
            assert_eq!(again_stats.probes_sent, stats.probes_sent);
            assert_eq!(again_stats.probes_elided, stats.probes_elided);
        }

        let per_dest = stats.probes_sent as f64 / width as f64;
        probes_per_destination.push(per_dest);
        per_width.push(json!({
            "width": width,
            "probes_sent": stats.probes_sent,
            "probes_elided": stats.probes_elided,
            "stop_set_hits": stats.stop_set_hits,
            "classic_probes_sent": classic_stats.probes_sent,
            "probes_per_destination": per_dest,
        }));
    }

    // CI gates: sharing must compound with width, and the 256-wide sweep
    // must spend >= 30% fewer probes per destination than the 16-wide.
    for pair in probes_per_destination.windows(2) {
        assert!(
            pair[1] < pair[0],
            "probes/destination must strictly decrease with width: {probes_per_destination:?}"
        );
    }
    let reduction = 1.0 - probes_per_destination[2] / probes_per_destination[0];
    assert!(
        reduction >= 0.30,
        "stop set no longer saves >=30% at width 256: \
         {:.2} vs {:.2} probes/destination ({:.0}% reduction)",
        probes_per_destination[2],
        probes_per_destination[0],
        reduction * 100.0
    );

    json!({
        "workload": format!(
            "shared-prefix family ({PREFIX} common hops + {SUFFIX}-hop private suffix), \
             single-flow tracer, stop set commit width {}, adaptive mid-path start",
            stop_cfg.commit_width
        ),
        "per_width": per_width,
        "probes_per_destination_reduction_256_vs_16": reduction,
        "floor_enforced": 0.30,
        "topology_equivalence_asserted": true,
        "admission_bit_identity_asserted": true,
    })
}

/// One sharded sweep over the synthetic-Internet workload: the
/// destination space split across `shards` engine shards, each driven
/// on its own scoped thread over its own transport partition.
fn run_sharded_sweep(
    internet: &SyntheticInternet,
    destinations: usize,
    shards: usize,
    max_in_flight: usize,
) -> (Vec<Trace>, SweepStats, Vec<SweepStats>) {
    let lanes: Vec<SimNetwork> = (0..destinations)
        .map(|id| build_lane(internet, id))
        .collect();
    let net = MultiNetwork::new(lanes).expect("scenario destinations are unique");
    let parts = net.split_by(shards, |d| shard_of(d, shards));
    let mut engine =
        ShardedSweepEngine::new(parts, internet.scenario(0).source).with_config(SweepConfig {
            max_in_flight,
            admission: Admission::Streaming,
            ..SweepConfig::default()
        });
    let sessions = (0..destinations).map(|id| {
        Box::new(MdaSession::new(
            internet.scenario(id).topology.destination(),
            TraceConfig::new(trace_seed_of(id)),
        )) as Box<dyn TraceSession>
    });
    let traces = engine.run_stream(sessions);
    let stats = *engine.stats();
    let per_shard = engine.shard_stats().into_iter().copied().collect();
    (traces, stats, per_shard)
}

/// The sharded-engine stage (see module docs): bit-identity against the
/// unsharded baseline asserted at every shard count *first*, then the
/// wall-clock scaling curve. The multicore gate (2 shards beating 1)
/// only arms when the host can actually run two shards at once.
fn sharded_stage(
    internet: &SyntheticInternet,
    destinations: usize,
    max_in_flight: usize,
    samples: usize,
    host_cpus: usize,
    baseline: &[Trace],
    baseline_probes: u64,
) -> serde_json::Value {
    let mut shard_counts = vec![1usize, 2, 4];
    if !shard_counts.contains(&host_cpus) {
        shard_counts.push(host_cpus);
    }
    shard_counts.sort_unstable();

    // Correctness before any number: every shard count must reproduce
    // the unsharded engine's traces and wire work bit for bit.
    for &shards in &shard_counts {
        let (traces, stats, per_shard) =
            run_sharded_sweep(internet, destinations, shards, max_in_flight);
        assert_eq!(traces.len(), baseline.len());
        for (a, b) in baseline.iter().zip(&traces) {
            assert_eq!(a, b, "{shards}-shard sweep diverged for {}", a.destination);
        }
        assert_eq!(stats.probes_sent, baseline_probes, "wire work diverged");
        let summed: u64 = per_shard.iter().map(|s| s.probes_sent).sum();
        assert_eq!(
            summed, stats.probes_sent,
            "per-shard counters out of balance"
        );
        for shard in &per_shard {
            assert_eq!(
                shard.probes_timed_out
                    + shard.replies_delivered
                    + shard.malformed_replies
                    + shard.mismatched_replies,
                shard.probes_sent,
                "retry-wave accounting must partition per shard"
            );
        }
    }

    // Wall-clock scaling curve: best-of-samples per shard count (the
    // minimum is the least noisy estimator of the work's true cost).
    let mut measured = Vec::new();
    let mut wall_by_shards = std::collections::BTreeMap::new();
    for &shards in &shard_counts {
        let mut best = f64::INFINITY;
        let mut probes = 0u64;
        let mut stalls = 0u64;
        for _ in 0..samples.max(1) {
            // Wall-clock timing is the whole point of a bench harness:
            // MLPT-W001 exempts crates/mlpt-bench/ by scoping config
            // (protocol code must use the virtual clock instead).
            let started = std::time::Instant::now();
            let (_, stats, _) = run_sharded_sweep(internet, destinations, shards, max_in_flight);
            let wall = started.elapsed().as_secs_f64();
            best = best.min(wall);
            probes = stats.probes_sent;
            stalls = stats.generation_barrier_stalls;
        }
        wall_by_shards.insert(shards, best);
        measured.push((shards, best, probes, stalls));
    }
    let one_shard_wall = wall_by_shards[&1];
    let curve: Vec<serde_json::Value> = measured
        .iter()
        .map(|&(shards, wall, probes, stalls)| {
            json!({
                "shards": shards,
                "wall_s_best": wall,
                "probes_sent": probes,
                "generation_barrier_stalls": stalls,
                "speedup_vs_1shard": one_shard_wall / wall,
            })
        })
        .collect();

    // The multicore gate: with real parallel hardware, two shards must
    // beat one. On a single-CPU host the threads serialize, so the gate
    // would only measure scheduler overhead — recorded, not enforced.
    let gate_armed = host_cpus > 1;
    if gate_armed {
        assert!(
            wall_by_shards[&2] < one_shard_wall,
            "2 shards must beat 1 shard on a {host_cpus}-CPU host: \
             {:.3}s vs {:.3}s",
            wall_by_shards[&2],
            one_shard_wall
        );
    }

    json!({
        "workload": format!(
            "{destinations} synthetic-Internet MDA traces, streaming admission, \
             in-flight budget {max_in_flight} per shard"
        ),
        "bit_identity_asserted_first": true,
        "scaling_curve": curve,
        "host_cpus": host_cpus,
        "multicore_gate_armed": gate_armed,
        "caveat": if gate_armed {
            "2-shard < 1-shard wall clock enforced".to_string()
        } else {
            format!(
                "host has {host_cpus} CPU: shard threads serialize, so the curve \
                 measures scheduler overhead, not parallel speedup; the 2-vs-1 \
                 gate is disarmed"
            )
        },
    })
}

/// The chaos stage: every built-in fault-schedule preset swept through
/// the engine's robustness stack (deadlines, bounded retries, the stall
/// watchdog). Liveness is the bench: each preset must terminate, keep
/// the retry-wave accounting partition exact, and the all-dark preset
/// must degrade every lane to an honest partial. Emits per-preset
/// probe/timeout/partial figures for the JSON report.
fn chaos_stage(lanes: usize) -> serde_json::Value {
    use mlpt_sim::FaultSchedule;
    let topologies: Vec<mlpt_topo::MultipathTopology> = (0..lanes)
        .map(|i| mlpt_topo::canonical::fig1_meshed().translated(0x0100_0000 * (i as u32 + 1)))
        .collect();
    let source: std::net::Ipv4Addr = "192.0.2.1".parse().expect("static");
    let presets: Vec<serde_json::Value> = FaultSchedule::preset_names()
        .iter()
        .map(|&preset| {
            let nets: Vec<SimNetwork> = topologies
                .iter()
                .enumerate()
                .map(|(i, topo)| {
                    SimNetwork::builder(topo.clone())
                        .fault_schedule(FaultSchedule::preset(preset).expect("known preset"))
                        .seed(29 + i as u64)
                        .build()
                })
                .collect();
            let net = MultiNetwork::new(nets).expect("unique destinations");
            let mut engine = SweepEngine::new(net, source).with_config(SweepConfig {
                max_in_flight: 64,
                retries: 1,
                stall_rounds: 4,
                admission: Admission::Streaming,
                ..SweepConfig::default()
            });
            let sessions = topologies.iter().enumerate().map(|(i, topo)| {
                Box::new(MdaSession::new(
                    topo.destination(),
                    TraceConfig::new(i as u64),
                )) as Box<dyn TraceSession>
            });
            // Wall-clock timing is the whole point of a bench harness:
            // MLPT-W001 exempts crates/mlpt-bench/ by scoping config
            // (protocol code must use the virtual clock instead).
            let started = std::time::Instant::now();
            let traces = engine.run_stream(sessions);
            let wall = started.elapsed();
            let stats = *engine.stats();
            assert_eq!(
                stats.sessions_completed, lanes as u64,
                "{preset}: every session must finalize"
            );
            assert_eq!(
                stats.probes_timed_out
                    + stats.replies_delivered
                    + stats.malformed_replies
                    + stats.mismatched_replies,
                stats.probes_sent,
                "{preset}: retry-wave accounting must partition probes_sent"
            );
            if preset == "midtrace-blackhole" {
                assert_eq!(
                    stats.sessions_partial, lanes as u64,
                    "the all-dark preset must degrade every lane to partial"
                );
            }
            let partial = traces.iter().filter(|t| t.outcome.is_partial()).count();
            json!({
                "preset": preset,
                "probes_sent": stats.probes_sent,
                "probes_timed_out": stats.probes_timed_out,
                "retries_exhausted": stats.retries_exhausted,
                "sessions_partial": stats.sessions_partial,
                "partial_traces": partial,
                "max_lane_backoff_depth": stats.max_lane_backoff_depth,
                "wall_ns": wall.as_nanos() as u64,
            })
        })
        .collect();
    json!({
        "workload": format!(
            "{lanes} fig1-meshed MDA lanes per preset, retries 1, stall watchdog 4 rounds"
        ),
        "all_presets_terminated": true,
        "presets": presets,
    })
}

fn main() {
    let quick = std::env::var("MLPT_BENCH_QUICK").is_ok_and(|v| !v.is_empty());
    let env_usize = |key: &str, default: usize| -> usize {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let destinations = env_usize("MLPT_BENCH_DESTINATIONS", 512);
    // The streaming-admission headroom. Deliberately small relative to
    // the destination count: the engine should still be admitting new
    // sessions deep into the sweep, because leftover source is the only
    // thing that can overlap the serial round chains of straggler
    // sessions (the MDA's node-control hunts are one probe per round —
    // a heavy trace is a long chain of tiny rounds, and once the source
    // is dry nothing can fill the batches around it).
    let max_in_flight = env_usize("MLPT_BENCH_IN_FLIGHT", 32);
    // The fixed-table engine's shipped configuration (PR 2): admit-all
    // with a big token budget. Its batches are huge up front and then
    // collapse into the straggler tail — the behaviour streaming
    // admission replaces.
    let fixed_table_budget = 2048;
    // Quick mode (CI pull requests) runs the identical workload — the
    // tail guard must test the acceptance configuration — with fewer
    // wall-clock samples.
    let samples = if quick { 2 } else { 5 };
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The acceptance workload runs the simulator with workers > 1 so
    // lane processing inside each crossing is parallel; on a single-CPU
    // host the threads exist but cannot speed anything up, which the
    // reported host_cpus makes explicit.
    let workers = host_cpus.clamp(2, 16);
    let internet = SyntheticInternet::new(InternetConfig::default());

    // Correctness first: both engine modes must reproduce the sequential
    // traces bit for bit before their throughput means anything.
    let (seq_traces, seq_crossings, seq_probes) = run_sequential(&internet, destinations);
    let (stream_traces, stream_stats, stream_cycles) = run_sweep(
        &internet,
        destinations,
        workers,
        Admission::Streaming,
        max_in_flight,
    );
    let (fixed_traces, fixed_stats, fixed_cycles) = run_sweep(
        &internet,
        destinations,
        1,
        Admission::Eager,
        fixed_table_budget,
    );
    assert_eq!(seq_traces.len(), stream_traces.len());
    for ((a, b), c) in seq_traces.iter().zip(&stream_traces).zip(&fixed_traces) {
        assert_eq!(a, b, "streaming sweep diverged for {}", a.destination);
        assert_eq!(a, c, "fixed-table sweep diverged for {}", a.destination);
    }
    assert_eq!(seq_probes, stream_stats.probes_sent);
    assert_eq!(seq_probes, fixed_stats.probes_sent);

    // Also keep the old blocking entry point honest: trace_mda is the
    // same machine under a thin driver.
    {
        let scenario = internet.scenario(0);
        let mut prober = TransportProber::new(
            build_lane(&internet, 0),
            scenario.source,
            scenario.topology.destination(),
        );
        let blocking = trace_mda(&mut prober, &TraceConfig::new(trace_seed_of(0)));
        assert_eq!(&blocking, &seq_traces[0]);
        let mut prober = TransportProber::new(
            build_lane(&internet, 0),
            scenario.source,
            scenario.topology.destination(),
        );
        let mut session = MdaSession::new(
            scenario.topology.destination(),
            TraceConfig::new(trace_seed_of(0)),
        );
        assert_eq!(drive(&mut session, &mut prober), blocking);
    }

    // Tail utilization: probes/dispatch over the last 10% of probes.
    let stream_overall = stream_stats.probes_per_dispatch();
    let fixed_overall = fixed_stats.probes_per_dispatch();
    let stream_tail = tail_probes_per_dispatch(&stream_cycles, 0.10);
    let fixed_tail = tail_probes_per_dispatch(&fixed_cycles, 0.10);
    let stream_tail_ratio = stream_tail / stream_overall;
    if std::env::var("MLPT_BENCH_EXPLORE").is_ok_and(|v| !v.is_empty()) {
        // Parameter-exploration mode: report tail numbers and stop.
        println!(
            "explore: dest {destinations} budget {max_in_flight}: overall {stream_overall:.1} \
             (fixed {fixed_overall:.1}), tail {stream_tail:.1} (fixed {fixed_tail:.1}), \
             ratio {stream_tail_ratio:.3}, cycles {} (fixed {})",
            stream_stats.dispatch_cycles, fixed_stats.dispatch_cycles
        );
        return;
    }
    // The CI floor: streaming admission must keep the tail within 2x of
    // the full-sweep average (the fixed table collapses far below).
    assert!(
        stream_tail_ratio >= 0.5,
        "streaming tail utilization regressed: tail {stream_tail:.1} vs \
         overall {stream_overall:.1} probes/dispatch (ratio {stream_tail_ratio:.2} < 0.5)"
    );
    // Overall amortization must not regress below the 64-destination
    // fixed-table figure of PR 2 (15.03 probes/dispatch).
    assert!(
        stream_overall >= 15.03,
        "streaming overall probes/dispatch regressed below the \
         64-destination fixed-table figure: {stream_overall:.2} < 15.03"
    );

    // Adaptive backoff acceptance experiment (asserts internally).
    let backoff = backoff_experiment();

    // Alias-rounds sweep stage (asserts bit-identity + floors
    // internally). The workload is identical in quick mode; only the
    // wall-clock sampling above shrinks.
    let alias_destinations = env_usize("MLPT_BENCH_ALIAS_DESTINATIONS", 64);
    let alias_sweep = alias_sweep_stage(&internet, alias_destinations);

    // Straggler-admission stage (asserts bit-identical outcomes plus the
    // makespan <= 0.9x and tail floors internally).
    let straggler = straggler_stage();

    // Shared-stop-set stage (asserts topology equivalence, the exact
    // probe ledger and admission bit-identity, then gates the >=30%
    // probes/destination reduction at width 256).
    let stop_set = stop_set_stage();

    // Sharded-engine stage (asserts bit-identity at every shard count
    // before recording the wall-clock scaling curve; the 2-vs-1 gate
    // arms only on multicore hosts).
    let sharded = sharded_stage(
        &internet,
        destinations,
        max_in_flight,
        if quick { 1 } else { 3 },
        host_cpus,
        &seq_traces,
        seq_probes,
    );

    // Chaos stage: every fault-schedule preset must terminate under the
    // robustness stack (asserts liveness + accounting internally).
    let chaos = chaos_stage(if quick { 4 } else { 16 });

    // Wall-clock measurements.
    let mut c = Criterion::default().sample_size(samples);
    c.bench_function("sweep/sequential_full_trace_loop", |b| {
        b.iter(|| black_box(run_sequential(&internet, destinations).2))
    });
    c.bench_function("sweep/streaming_engine", |b| {
        b.iter(|| {
            black_box(
                run_sweep(
                    &internet,
                    destinations,
                    workers,
                    Admission::Streaming,
                    max_in_flight,
                )
                .1
                .probes_sent,
            )
        })
    });
    c.bench_function("sweep/streaming_engine_1worker", |b| {
        b.iter(|| {
            black_box(
                run_sweep(
                    &internet,
                    destinations,
                    1,
                    Admission::Streaming,
                    max_in_flight,
                )
                .1
                .probes_sent,
            )
        })
    });

    let median_of = |id: &str| -> Option<f64> {
        c.results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.median.as_secs_f64())
    };
    let seq_wall = median_of("sweep/sequential_full_trace_loop");
    let sweep_wall = median_of("sweep/streaming_engine");
    let sweep_wall_1w = median_of("sweep/streaming_engine_1worker");
    let wall_clock_speedup = seq_wall.zip(sweep_wall).map(|(s, e)| s / e);
    let wall_clock_speedup_1w = seq_wall.zip(sweep_wall_1w).map(|(s, e)| s / e);

    // The headline: probes moved per transport crossing, sweep vs the
    // sequential loop's one-round-per-crossing dispatch.
    let seq_throughput = seq_probes as f64 / seq_crossings as f64;
    let dispatch_throughput_speedup = stream_overall / seq_throughput;

    let results: Vec<serde_json::Value> = c
        .results()
        .iter()
        .map(|r| {
            json!({
                "id": r.id,
                "mean_ns": r.mean.as_nanos() as u64,
                "median_ns": r.median.as_nanos() as u64,
                "min_ns": r.min.as_nanos() as u64,
                "max_ns": r.max.as_nanos() as u64,
                "samples": r.samples,
                "iters_per_sample": r.iters_per_sample,
            })
        })
        .collect();

    let payload = json!({
        "benchmark": "concurrent_sweep",
        "destinations": destinations,
        "quick_mode": quick,
        "workload": "synthetic-Internet MDA traces (the ip_survey inner loop)",
        "streaming_max_in_flight": max_in_flight,
        "fixed_table_max_in_flight": fixed_table_budget,
        // Headline: probe-dispatch throughput = probes per transport
        // crossing. One crossing = one sendmmsg + one RTT wait on a real
        // backend; the sequential loop pays one per per-trace round, the
        // sweep amortizes one across every in-flight destination's round.
        "dispatch_throughput_speedup": dispatch_throughput_speedup,
        "probes_per_dispatch": {
            "sequential_full_trace_loop": seq_throughput,
            "fixed_table_engine": fixed_overall,
            "streaming_engine": stream_overall,
        },
        // Tail utilization: probes/dispatch over the last 10% of probes.
        // Streaming admission must stay within 2x of its own full-sweep
        // average (enforced above); the fixed table collapses.
        "tail_probes_per_dispatch_last10pct": {
            "fixed_table_engine": fixed_tail,
            "streaming_engine": stream_tail,
            "streaming_tail_over_average": stream_tail_ratio,
            "fixed_tail_over_average": fixed_tail / fixed_overall,
            "floor_enforced": 0.5,
        },
        "transport_crossings": {
            "sequential_full_trace_loop": seq_crossings,
            "fixed_table_engine": fixed_stats.dispatch_cycles,
            "streaming_engine": stream_stats.dispatch_cycles,
        },
        "probes_sent_each": seq_probes,
        "traces_bit_identical": true,
        // Wall clock: the streaming engine with simulator_workers worker
        // threads spreading disjoint lanes inside each crossing, vs the
        // sequential loop. Honest hardware note: on a single-CPU host
        // (host_cpus = 1) the worker threads cannot run in parallel, so
        // the speedup degenerates to the scheduler-overhead ratio; on
        // multicore hosts the merged batches convert into real speedup.
        "wall_clock_speedup_sim": wall_clock_speedup,
        "wall_clock_speedup_sim_1worker": wall_clock_speedup_1w,
        "simulator_workers": workers,
        "host_cpus": host_cpus,
        "adaptive_backoff": backoff,
        "alias_sweep": alias_sweep,
        "straggler_admission": straggler,
        "stop_set_sweep": stop_set,
        "sharded_engine": sharded,
        "chaos": chaos,
        "results": results,
    });

    let out_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_concurrent_sweep.json"
    );
    let mut file = std::fs::File::create(out_path).expect("create BENCH_concurrent_sweep.json");
    file.write_all(serde_json::to_string_pretty(&payload).unwrap().as_bytes())
        .expect("write BENCH_concurrent_sweep.json");
    println!("[concurrent_sweep results written to {out_path}]");
    println!(
        "dispatch throughput: {seq_throughput:.2} -> {stream_overall:.2} probes/crossing \
         ({dispatch_throughput_speedup:.1}x); tail(10%) {stream_tail:.1} streaming vs \
         {fixed_tail:.1} fixed-table; wall clock {wall_clock_speedup:?}x \
         ({workers} workers, {host_cpus} cpus)"
    );
}
