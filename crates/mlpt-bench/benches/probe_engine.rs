//! Batched vs single-probe dispatch: the probe engine's before/after.
//!
//! Every pair below runs the *same* trace workload twice:
//!
//! * **batched** — the current engine: vectorized `send_batch` rounds,
//!   reusable packet/reply buffers, interned-address routing tables;
//! * **single** — the legacy path preserved in
//!   [`mlpt_bench::reference::ReferenceNetwork`]: one allocating
//!   `send_packet` per probe over per-packet `HashMap` lookups, driven by
//!   `DispatchMode::PerProbe` (a unit test asserts both paths do
//!   identical work, probe for probe).
//!
//! Besides the human-readable criterion output, results and pairwise
//! speedups are written to `BENCH_probe_engine.json` at the workspace
//! root for machine consumption.

use criterion::{black_box, Bencher, Criterion};
use mlpt_bench::reference::ReferenceNetwork;
use mlpt_core::prelude::*;
use mlpt_core::prober::DispatchMode;
use mlpt_sim::SimNetwork;
use mlpt_survey::{InternetConfig, SyntheticInternet};
use mlpt_topo::{canonical, MultipathTopology};
use mlpt_wire::probe::{build_udp_probe_into, ProbePacket};
use mlpt_wire::transport::{BatchTransport, PacketBatch, PacketTransport, ReplyBatch};
use mlpt_wire::FlowId;
use serde_json::json;
use std::io::Write;
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

fn bench_trace_batched(b: &mut Bencher, topo: &MultipathTopology) {
    // The network is built once: the benchmark isolates the probe path
    // (dispatch + routing + reply assembly), not simulator construction.
    let mut net = SimNetwork::new(topo.clone(), 7);
    let mut seed = 0u64;
    b.iter(|| {
        seed += 1;
        let mut prober = TransportProber::new(&mut net, SRC, topo.destination());
        black_box(trace_mda_lite(&mut prober, &TraceConfig::new(seed)))
    });
}

fn bench_trace_single(b: &mut Bencher, topo: &MultipathTopology) {
    let mut net = ReferenceNetwork::new(topo.clone(), 7);
    let mut seed = 0u64;
    b.iter(|| {
        seed += 1;
        let mut prober = TransportProber::new(&mut net, SRC, topo.destination())
            .with_dispatch(DispatchMode::PerProbe);
        black_box(trace_mda_lite(&mut prober, &TraceConfig::new(seed)))
    });
}

/// Raw transport throughput: the same traceroute-round workload (every
/// TTL of the topology for 128 flows), dispatched as one batch vs probe
/// by probe.
fn bench_transport(c: &mut Criterion, topo: &MultipathTopology, name: &str) {
    let dst = topo.destination();
    let mut batch = PacketBatch::new();
    for flow in 0..128u16 {
        for ttl in 1..=topo.num_hops() as u8 {
            batch.push_with(|buf| {
                build_udp_probe_into(
                    &ProbePacket {
                        source: SRC,
                        destination: dst,
                        flow: FlowId(flow),
                        ttl,
                        sequence: flow,
                    },
                    buf,
                )
            });
        }
    }

    c.bench_function(&format!("transport/batched/{name}"), |b| {
        let mut net = SimNetwork::new(topo.clone(), 7);
        let mut replies = ReplyBatch::new();
        b.iter(|| {
            net.send_batch(black_box(&batch), &mut replies);
            black_box(replies.len())
        });
    });

    c.bench_function(&format!("transport/single/{name}"), |b| {
        let mut net = ReferenceNetwork::new(topo.clone(), 7);
        b.iter(|| {
            let mut answered = 0usize;
            for packet in batch.iter() {
                if net.send_packet(black_box(packet)).is_some() {
                    answered += 1;
                }
            }
            black_box(answered)
        });
    });
}

fn main() {
    let mut c = Criterion::default().sample_size(20);

    // Fig. 1-style diamond (1-4-2-1): the paper's canonical example.
    let fig1 = canonical::fig1_unmeshed();
    c.bench_function("dispatch/batched/fig1_diamond", |b| {
        bench_trace_batched(b, &fig1)
    });
    c.bench_function("dispatch/single/fig1_diamond", |b| {
        bench_trace_single(b, &fig1)
    });

    // The 48-wide meshed diamond: survey-scale probing volume.
    let meshed = canonical::meshed();
    let mut heavy = Criterion::default().sample_size(10);
    heavy.bench_function("dispatch/batched/meshed48", |b| {
        bench_trace_batched(b, &meshed)
    });
    heavy.bench_function("dispatch/single/meshed48", |b| {
        bench_trace_single(b, &meshed)
    });

    // A synthetic-Internet scenario end to end, like a survey run.
    let internet = SyntheticInternet::new(InternetConfig::default());
    let scenario = internet.scenario(8);
    let survey_topo = scenario.topology.clone();
    heavy.bench_function("dispatch/batched/survey_scenario", |b| {
        bench_trace_batched(b, &survey_topo)
    });
    heavy.bench_function("dispatch/single/survey_scenario", |b| {
        bench_trace_single(b, &survey_topo)
    });

    // Raw transport dispatch: the probe path itself, on the fig-1
    // diamond, the survey scenario, and the 48-wide meshed diamond.
    bench_transport(&mut c, &fig1, "fig1_diamond");
    bench_transport(&mut c, &survey_topo, "survey_scenario");
    bench_transport(&mut c, &meshed, "meshed48");

    // ---- machine-readable emission ------------------------------------
    let mut all = Vec::new();
    all.extend(c.results().iter().cloned());
    all.extend(heavy.results().iter().cloned());

    let mut results: Vec<serde_json::Value> = Vec::new();
    for r in &all {
        results.push(json!({
            "id": r.id,
            "mean_ns": r.mean.as_nanos() as u64,
            "median_ns": r.median.as_nanos() as u64,
            "min_ns": r.min.as_nanos() as u64,
            "max_ns": r.max.as_nanos() as u64,
            "samples": r.samples,
            "iters_per_sample": r.iters_per_sample,
        }));
    }

    let median_of = |id: String| -> Option<f64> {
        all.iter()
            .find(|r| r.id == id)
            .map(|r| r.median.as_secs_f64())
    };
    let mut speedups = serde_json::Map::new();
    for pair in [
        "dispatch/fig1_diamond",
        "dispatch/meshed48",
        "dispatch/survey_scenario",
        "transport/fig1_diamond",
        "transport/survey_scenario",
        "transport/meshed48",
    ] {
        let (kind, name) = pair.split_once('/').expect("kind/name");
        if let (Some(batched), Some(single)) = (
            median_of(format!("{kind}/batched/{name}")),
            median_of(format!("{kind}/single/{name}")),
        ) {
            speedups.insert(pair.replace('/', "_"), json!(single / batched));
        }
    }

    let headline_diamond = median_of("transport/single/fig1_diamond".into())
        .zip(median_of("transport/batched/fig1_diamond".into()))
        .map(|(s, b)| s / b);
    let headline_survey = median_of("transport/single/survey_scenario".into())
        .zip(median_of("transport/batched/survey_scenario".into()))
        .map(|(s, b)| s / b);

    let payload = json!({
        "benchmark": "probe_engine",
        // Headline numbers: probe-dispatch throughput, batched engine vs
        // the legacy per-probe path, on the fig-1 diamond and a
        // survey-style scenario. The `dispatch/*` pairs below additionally
        // include the (shared) tracing-algorithm CPU and therefore show
        // the Amdahl-limited whole-trace effect.
        "dispatch_speedup_diamond": headline_diamond,
        "dispatch_speedup_survey": headline_survey,
        "description": "batched dispatch (vectorized send_batch + interned SimNetwork) \
                        vs the legacy per-probe path (allocating send_packet + HashMap \
                        lookups); identical probing work per pair",
        "results": results,
        "speedup_batched_over_single": serde_json::Value::Object(speedups),
    });

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_probe_engine.json");
    let mut file = std::fs::File::create(out_path).expect("create BENCH_probe_engine.json");
    file.write_all(serde_json::to_string_pretty(&payload).unwrap().as_bytes())
        .expect("write BENCH_probe_engine.json");
    println!("[probe_engine results written to {out_path}]");
}
