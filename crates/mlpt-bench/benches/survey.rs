//! Survey-pipeline cost: scenario generation and end-to-end survey
//! throughput, which bound how fast the paper-scale experiments run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mlpt_survey::{
    evaluate_scenarios, run_ip_survey, EvaluationConfig, InternetConfig, IpSurveyConfig,
    SyntheticInternet,
};

fn bench(c: &mut Criterion) {
    c.bench_function("generator/scenario", |b| {
        let internet = SyntheticInternet::new(InternetConfig::default());
        let mut id = 0usize;
        b.iter(|| {
            id += 1;
            black_box(internet.scenario(black_box(id)))
        });
    });

    c.bench_function("survey/ip_survey_40_scenarios", |b| {
        let internet = SyntheticInternet::new(InternetConfig::default());
        let config = IpSurveyConfig {
            scenarios: 40,
            workers: 4,
            trace_seed: 3,
            phi: 2,
            ..IpSurveyConfig::default()
        };
        b.iter(|| black_box(run_ip_survey(black_box(&internet), &config)));
    });

    c.bench_function("survey/evaluation_20_scenarios", |b| {
        let internet = SyntheticInternet::new(InternetConfig::default());
        let config = EvaluationConfig {
            scenarios: 20,
            workers: 4,
            trace_seed: 3,
            ..EvaluationConfig::default()
        };
        b.iter(|| black_box(evaluate_scenarios(black_box(&internet), &config)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
