//! Wire-substrate throughput: every probe of every experiment pays these
//! costs, so they bound the whole harness's speed.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mlpt_wire::checksum::internet_checksum;
use mlpt_wire::icmp::{IcmpExtensions, IcmpMessage, MplsLabelStackEntry};
use mlpt_wire::ipv4::Ipv4Header;
use mlpt_wire::probe::{build_udp_probe, parse_reply, parse_udp_probe, ProbePacket};
use mlpt_wire::FlowId;
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
const DST: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 9);
const ROUTER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);

fn probe() -> ProbePacket {
    ProbePacket {
        source: SRC,
        destination: DST,
        flow: FlowId(77),
        ttl: 7,
        sequence: 4242,
    }
}

fn reply_bytes(with_mpls: bool) -> Vec<u8> {
    let quoted = build_udp_probe(&probe())[..28].to_vec();
    let extensions = if with_mpls {
        IcmpExtensions {
            mpls_stack: vec![MplsLabelStackEntry::new(16001, 0, true, 255)],
        }
    } else {
        IcmpExtensions::default()
    };
    let icmp = IcmpMessage::TimeExceeded { quoted, extensions }.emit();
    let ip = Ipv4Header::new(ROUTER, SRC, 1, 250, 999, icmp.len());
    let mut packet = Vec::new();
    packet.extend_from_slice(&ip.emit());
    packet.extend_from_slice(&icmp);
    packet
}

fn bench(c: &mut Criterion) {
    c.bench_function("wire/build_udp_probe", |b| {
        let p = probe();
        b.iter(|| black_box(build_udp_probe(black_box(&p))));
    });

    c.bench_function("wire/parse_udp_probe", |b| {
        let bytes = build_udp_probe(&probe());
        b.iter(|| black_box(parse_udp_probe(black_box(&bytes)).unwrap()));
    });

    c.bench_function("wire/parse_reply_plain", |b| {
        let bytes = reply_bytes(false);
        b.iter(|| black_box(parse_reply(black_box(&bytes)).unwrap()));
    });

    c.bench_function("wire/parse_reply_mpls", |b| {
        let bytes = reply_bytes(true);
        b.iter(|| black_box(parse_reply(black_box(&bytes)).unwrap()));
    });

    c.bench_function("wire/internet_checksum_1500B", |b| {
        let data: Vec<u8> = (0..1500u32).map(|i| (i * 31 % 251) as u8).collect();
        b.iter(|| black_box(internet_checksum(black_box(&data))));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench
}
criterion_main!(benches);
