//! The experiment harness CLI: regenerates every table and figure.
//!
//! ```text
//! experiments <id> [--scale small|medium|paper] [--out DIR]
//! experiments all  [--scale ...]
//! experiments list
//! ```

use mlpt_bench::experiments::{self, ALL_IDS};
use mlpt_bench::Scale;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }
    let id = args[0].as_str();
    if id == "list" {
        println!("experiments: {}", ALL_IDS.join(", "));
        println!(
            "ablations:   ablation-phi, ablation-faults, ablation-stopping, ablation-weighted"
        );
        println!("meta:        all");
        return;
    }

    let mut scale = Scale::Medium;
    let mut out_dir: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| {
                        eprintln!("invalid --scale (small|medium|paper)");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                i += 1;
                out_dir = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage();
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let Some(results) = experiments::run(id, scale) else {
        eprintln!("unknown experiment id: {id} (try `experiments list`)");
        std::process::exit(2);
    };

    for result in &results {
        println!("================================================================");
        println!("experiment {} @ scale {scale}", result.id);
        println!("================================================================");
        println!("{}", result.text);
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).expect("create output dir");
            let path = format!("{dir}/{}-{scale}.json", result.id);
            let mut file = std::fs::File::create(&path).expect("create result file");
            let payload = serde_json::json!({
                "experiment": result.id,
                "scale": scale.to_string(),
                "data": result.json,
            });
            file.write_all(serde_json::to_string_pretty(&payload).unwrap().as_bytes())
                .expect("write result file");
            println!("[written {path}]");
        }
    }
}

fn usage() {
    eprintln!("usage: experiments <id|all|list> [--scale small|medium|paper] [--out DIR]");
}
