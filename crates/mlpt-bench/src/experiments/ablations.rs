//! Ablation experiments for the design choices DESIGN.md calls out.
//!
//! * `ablation-phi` — the MDA-Lite meshing-test effort φ: detection rate
//!   vs probing cost on the Fig. 1 meshed diamond (Sec. 2.3.2 leaves φ
//!   tunable; the paper finds φ = 2 vs φ = 4 indistinguishable end to
//!   end).
//! * `ablation-faults` — reply loss and ICMP rate limiting vs discovery
//!   completeness (the paper's future-work item 2).
//! * `ablation-stopping` — 95 % vs 99 % vs Veitch Table 1 stopping
//!   points: cost vs failure rate on the simplest diamond.
//! * `ablation-weighted` — uneven load balancing vs MDA-Lite asymmetry
//!   detection (future-work item 1).

use super::ExperimentResult;
use crate::render::{f3, f4, table};
use crate::Scale;
use mlpt_core::prelude::*;
use mlpt_sim::{FaultPlan, SimNetwork};
use mlpt_topo::canonical;
use serde_json::json;

fn runs_for(scale: Scale) -> usize {
    match scale {
        Scale::Small => 40,
        Scale::Medium => 200,
        Scale::Paper => 1_000,
    }
}

/// φ sweep on the meshed Fig. 1 diamond.
pub fn run_phi(scale: Scale) -> ExperimentResult {
    let runs = runs_for(scale);
    let topo = canonical::fig1_meshed();
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for phi in [2u32, 3, 4, 5] {
        let mut detected = 0usize;
        let mut probes = 0u64;
        for seed in 0..runs as u64 {
            let net = SimNetwork::new(topo.clone(), seed);
            let mut prober =
                TransportProber::new(net, "192.0.2.1".parse().unwrap(), topo.destination());
            let config = TraceConfig::new(seed).with_phi(phi);
            let trace = trace_mda_lite(&mut prober, &config);
            if matches!(trace.switched, Some(SwitchReason::MeshingDetected { .. })) {
                detected += 1;
            }
            probes += trace.probes_sent;
        }
        let rate = detected as f64 / runs as f64;
        // Eq. 1 for this topology: miss = (1/2)^(4(phi-1)).
        let analytic_miss = 0.5f64.powi(4 * (phi as i32 - 1));
        rows.push(vec![
            phi.to_string(),
            f3(rate),
            f4(1.0 - analytic_miss),
            f3(probes as f64 / runs as f64),
        ]);
        payload.push(json!({"phi": phi, "detection_rate": rate,
                            "analytic_floor": 1.0 - analytic_miss,
                            "mean_probes": probes as f64 / runs as f64}));
    }
    let mut text =
        format!("Ablation: meshing-test effort phi on the Fig. 1 meshed diamond ({runs} runs)\n\n");
    text.push_str(&table(
        &[
            "phi",
            "meshing detection rate",
            "Eq.1 analytic floor",
            "mean probes",
        ],
        &rows,
    ));
    text.push_str("\n(The detection rate exceeds the Eq. 1 floor because hop-discovery\nprobes contribute degree evidence too.)\n");
    ExperimentResult {
        id: "ablation-phi",
        json: json!(payload),
        text,
    }
}

/// Loss/rate-limit sweep.
pub fn run_faults(scale: Scale) -> ExperimentResult {
    let runs = runs_for(scale) / 2;
    let topo = canonical::fig1_unmeshed();
    let truth_vertices = topo.total_vertices() as f64;
    let mut rows = Vec::new();
    let mut payload = Vec::new();

    let plans: [(&str, FaultPlan); 5] = [
        ("no faults", FaultPlan::none()),
        ("5% reply loss", FaultPlan::with_loss(0.0, 0.05)),
        ("15% reply loss", FaultPlan::with_loss(0.0, 0.15)),
        ("30% reply loss", FaultPlan::with_loss(0.0, 0.30)),
        ("rate limit 8/0.5", FaultPlan::with_rate_limit(8, 0.5)),
    ];
    for (label, plan) in plans {
        for retries in [0u8, 2] {
            let mut vertex_fraction = 0.0;
            let mut probes = 0u64;
            let mut reached = 0usize;
            for seed in 0..runs as u64 {
                let net = SimNetwork::builder(topo.clone())
                    .faults(plan)
                    .seed(seed)
                    .build();
                let mut prober =
                    TransportProber::new(net, "192.0.2.1".parse().unwrap(), topo.destination())
                        .with_retries(retries);
                let trace = trace_mda(&mut prober, &TraceConfig::new(seed));
                vertex_fraction += trace.total_vertices() as f64 / truth_vertices;
                probes += trace.probes_sent;
                reached += usize::from(trace.reached_destination);
            }
            rows.push(vec![
                label.to_string(),
                retries.to_string(),
                f3(vertex_fraction / runs as f64),
                f3(reached as f64 / runs as f64),
                f3(probes as f64 / runs as f64),
            ]);
            payload.push(json!({"plan": label, "retries": retries,
                                "vertex_fraction": vertex_fraction / runs as f64,
                                "reach_rate": reached as f64 / runs as f64,
                                "mean_probes": probes as f64 / runs as f64}));
        }
    }
    let mut text = format!(
        "Ablation: fault injection vs MDA discovery on the unmeshed Fig. 1 diamond ({runs} runs each)\n\n"
    );
    text.push_str(&table(
        &[
            "faults",
            "retries",
            "vertex fraction",
            "reach rate",
            "mean probes",
        ],
        &rows,
    ));
    ExperimentResult {
        id: "ablation-faults",
        json: json!(payload),
        text,
    }
}

/// Stopping-points sweep on the simplest diamond.
pub fn run_stopping(scale: Scale) -> ExperimentResult {
    let runs = runs_for(scale) * 5;
    let topo = canonical::simplest_diamond();
    let tables = [
        ("MDA 95%", StoppingPoints::mda95()),
        ("MDA 99%", StoppingPoints::mda99()),
        ("Veitch Table 1", StoppingPoints::veitch_table1()),
    ];
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for (label, stopping) in tables {
        let analytic = mlpt_sim::mda_failure_probability(&topo, stopping.as_slice());
        let mut failures = 0usize;
        let mut probes = 0u64;
        for seed in 0..runs as u64 {
            let net = SimNetwork::new(topo.clone(), seed);
            let mut prober =
                TransportProber::new(net, "192.0.2.1".parse().unwrap(), topo.destination());
            let config = TraceConfig::new(seed).with_stopping(stopping.clone());
            let trace = trace_mda(&mut prober, &config);
            if trace.total_vertices() < topo.total_vertices() {
                failures += 1;
            }
            probes += trace.probes_sent;
        }
        let rate = failures as f64 / runs as f64;
        rows.push(vec![
            label.to_string(),
            stopping.n(1).to_string(),
            f4(analytic),
            f4(rate),
            f3(probes as f64 / runs as f64),
        ]);
        payload.push(json!({"table": label, "n1": stopping.n(1),
                            "analytic": analytic, "empirical": rate,
                            "mean_probes": probes as f64 / runs as f64}));
    }
    let mut text =
        format!("Ablation: stopping points on the simplest diamond ({runs} runs each)\n\n");
    text.push_str(&table(
        &[
            "table",
            "n1",
            "analytic failure",
            "empirical failure",
            "mean probes",
        ],
        &rows,
    ));
    ExperimentResult {
        id: "ablation-stopping",
        json: json!(payload),
        text,
    }
}

/// Weighted (uneven) load balancing: the MDA model assumes uniformity;
/// this quantifies what uneven splits do to discovery and to MDA-Lite's
/// switch behaviour (paper future-work item 1).
pub fn run_weighted(scale: Scale) -> ExperimentResult {
    let runs = runs_for(scale);
    let topo = canonical::max_length_2();
    // Give the divergence point a skewed distribution: interface i gets
    // weight proportional to (i+1) — mild but real unevenness.
    let divergence = topo.hop(0)[0];
    let n = topo.successors(0, divergence).len();
    let weights: Vec<u32> = (1..=n as u32).collect();

    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for (label, weighted) in [("uniform", false), ("weighted 1..28", true)] {
        let mut vertex_fraction = 0.0;
        let mut probes = 0u64;
        for seed in 0..runs as u64 {
            let mut builder = SimNetwork::builder(topo.clone()).seed(seed);
            if weighted {
                builder = builder.weights(0, divergence, weights.clone());
            }
            let net = builder.build();
            let mut prober =
                TransportProber::new(net, "192.0.2.1".parse().unwrap(), topo.destination());
            let trace = trace_mda_lite(&mut prober, &TraceConfig::new(seed));
            vertex_fraction += trace.total_vertices() as f64 / topo.total_vertices() as f64;
            probes += trace.probes_sent;
        }
        rows.push(vec![
            label.to_string(),
            f3(vertex_fraction / runs as f64),
            f3(probes as f64 / runs as f64),
        ]);
        payload.push(json!({"mode": label,
                            "vertex_fraction": vertex_fraction / runs as f64,
                            "mean_probes": probes as f64 / runs as f64}));
    }
    let mut text = format!(
        "Ablation: uneven load balancing vs MDA-Lite on the 28-wide diamond ({runs} runs)\n\n"
    );
    text.push_str(&table(
        &["balancing", "vertex fraction", "mean probes"],
        &rows,
    ));
    text.push_str("\n(Uneven balancing starves low-weight interfaces of probes; the\nstopping rule, calibrated for uniformity, gives up earlier than it should.)\n");
    ExperimentResult {
        id: "ablation-weighted",
        json: json!(payload),
        text,
    }
}
