//! Experiment `fakeroute`: the Sec. 3 statistical validation.
//!
//! "For example, on a topology with the simplest possible diamond …, we
//! were able to test that the real failure probability of the topology,
//! which is 0.03125, given the set of nk values used by the MDA for a
//! failure probability of 0.05, was respected. We ran the MDA 1000 times
//! on this topology to obtain a sample mean rate of failure, and obtained
//! 50 such samples …, giving a 0.03206 mean of failure, with a 95%
//! confidence interval of size 0.00156."
//!
//! Here the tool under validation is this workspace's own MDA, run over
//! the byte-level simulator.

use super::ExperimentResult;
use crate::render::f4;
use crate::Scale;
use mlpt_core::prelude::*;
use mlpt_sim::validate_tool;
use mlpt_topo::canonical;
use serde_json::json;

/// Runs the experiment.
pub fn run(scale: Scale) -> ExperimentResult {
    let (samples, runs) = scale.fakeroute_shape();
    let topology = canonical::simplest_diamond();
    let stopping = StoppingPoints::mda95();
    let nks = stopping.as_slice().to_vec();

    let report = validate_tool(&topology, &nks, samples, runs, 0xFA4E, 0.95, |net, seed| {
        let dst = net.topology().destination();
        let truth_vertices = net.topology().total_vertices();
        let truth_edges = net.topology().total_edges();
        let mut prober = TransportProber::new(net, "192.0.2.1".parse().unwrap(), dst);
        let trace = trace_mda(&mut prober, &TraceConfig::new(seed));
        let topo = match trace.to_topology() {
            Some(t) => t,
            None => return false,
        };
        topo.total_vertices() == truth_vertices && topo.total_edges() == truth_edges
    });

    let text = format!(
        "Fakeroute validation (Sec. 3): simplest diamond, 95% stopping points\n\n\
         analytic failure probability : {} (paper: 0.03125)\n\
         empirical mean failure rate  : {} (paper: 0.03206)\n\
         95% confidence interval size : {} (paper: 0.00156)\n\
         interval                     : [{}, {}]\n\
         samples x runs               : {} x {}\n\
         analytic value within CI     : {}\n",
        f4(report.analytic_failure),
        f4(report.interval.mean),
        f4(report.interval.size()),
        f4(report.interval.low()),
        f4(report.interval.high()),
        samples,
        runs,
        report.analytic_within_interval(),
    );

    ExperimentResult {
        id: "fakeroute",
        json: json!({
            "analytic": report.analytic_failure,
            "mean": report.interval.mean,
            "ci_size": report.interval.size(),
            "ci": [report.interval.low(), report.interval.high()],
            "samples": samples,
            "runs_per_sample": runs,
            "analytic_within_ci": report.analytic_within_interval(),
            "paper": {"analytic": 0.03125, "mean": 0.03206, "ci_size": 0.00156},
        }),
        text,
    }
}
