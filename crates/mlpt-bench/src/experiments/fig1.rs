//! Experiment `fig1`: the worked probe-accounting example of Secs. 2.1
//! and 2.3.1.
//!
//! With Veitch et al.'s Table 1 stopping points (n₁ = 9, n₂ = 17,
//! n₄ = 33), the paper derives: MDA on the unmeshed 1-4-2-1 diamond costs
//! 11·n₁ + δ = 99 + δ probes; on the meshed variant 8·n₂ + 3·n₁ + δ′ =
//! 163 + δ′; MDA-Lite's vertex discovery costs n₄ + n₂ + 2·n₁ = 68 on
//! either. This experiment measures all six numbers over many runs.

use super::ExperimentResult;
use crate::render::{f3, table};
use crate::Scale;
use mlpt_core::prelude::*;
use mlpt_sim::SimNetwork;
use mlpt_stats::Summary;
use mlpt_topo::{canonical, MultipathTopology};
use serde_json::json;

fn mean_probes(topo: &MultipathTopology, runs: usize, lite: bool) -> (Summary, usize) {
    let mut summary = Summary::new();
    let mut switched = 0usize;
    for seed in 0..runs as u64 {
        let net = SimNetwork::new(topo.clone(), seed.wrapping_mul(31).wrapping_add(7));
        let mut prober =
            TransportProber::new(net, "192.0.2.1".parse().unwrap(), topo.destination());
        let config = TraceConfig::new(seed).with_stopping(StoppingPoints::veitch_table1());
        let trace = if lite {
            trace_mda_lite(&mut prober, &config)
        } else {
            trace_mda(&mut prober, &config)
        };
        if trace.switched.is_some() {
            switched += 1;
        }
        summary.record(trace.probes_sent as f64);
    }
    (summary, switched)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> ExperimentResult {
    let runs = scale.fig1_runs();
    let unmeshed = canonical::fig1_unmeshed();
    let meshed = canonical::fig1_meshed();

    let (mda_unmeshed, _) = mean_probes(&unmeshed, runs, false);
    let (mda_meshed, _) = mean_probes(&meshed, runs, false);
    let (lite_unmeshed, lite_unmeshed_switched) = mean_probes(&unmeshed, runs, true);
    let (lite_meshed, lite_meshed_switched) = mean_probes(&meshed, runs, true);

    let rows = vec![
        vec![
            "MDA / unmeshed".into(),
            "11*n1 + d = 99 + d".into(),
            f3(mda_unmeshed.mean()),
            f3(mda_unmeshed.mean() - 99.0),
        ],
        vec![
            "MDA / meshed".into(),
            "8*n2 + 3*n1 + d' = 163 + d'".into(),
            f3(mda_meshed.mean()),
            f3(mda_meshed.mean() - 163.0),
        ],
        vec![
            "MDA-Lite / unmeshed".into(),
            "n4 + n2 + 2*n1 = 68 (+ edge & meshing-test overhead)".into(),
            f3(lite_unmeshed.mean()),
            f3(lite_unmeshed.mean() - 68.0),
        ],
        vec![
            "MDA-Lite / meshed".into(),
            "68 + overhead, then switch to MDA".into(),
            f3(lite_meshed.mean()),
            f3(lite_meshed.mean() - 68.0),
        ],
    ];
    let mut text = format!(
        "Fig. 1 / Sec. 2.1 probe accounting (Veitch Table 1 stopping points, {runs} runs)\n\n"
    );
    text.push_str(&table(
        &[
            "run",
            "paper formula",
            "measured mean probes",
            "measured - formula",
        ],
        &rows,
    ));
    text.push_str(&format!(
        "\nMDA-Lite switched to full MDA on {}/{} unmeshed runs and {}/{} meshed runs\n\
         (the meshed diamond must trigger the switch; Eq. 1 gives a 1/16 miss rate at phi = 2).\n",
        lite_unmeshed_switched, runs, lite_meshed_switched, runs
    ));
    text.push_str(&format!(
        "Probe savings on the unmeshed diamond: {:.1}% (paper: ~31%, 68 vs 99+d).\n",
        100.0 * (1.0 - lite_unmeshed.mean() / mda_unmeshed.mean())
    ));

    ExperimentResult {
        id: "fig1",
        json: json!({
            "runs": runs,
            "mda_unmeshed_mean": mda_unmeshed.mean(),
            "mda_meshed_mean": mda_meshed.mean(),
            "lite_unmeshed_mean": lite_unmeshed.mean(),
            "lite_meshed_mean": lite_meshed.mean(),
            "lite_meshed_switch_rate": lite_meshed_switched as f64 / runs as f64,
            "paper": {"mda_unmeshed": 99, "mda_meshed": 163, "lite_vertices": 68},
        }),
        text,
    }
}
