//! Experiment `fig12`: router sizes (Sec. 5.2).
//!
//! "68% of the routers had a size of 2 and 97% had a size of 10 or less.
//! We found 1 distinct router with more than 50 interfaces, and 5 such
//! routers when we aggregated the address sets."

use super::ExperimentResult;
use crate::render::{cdf_row, f3, table};
use crate::Scale;
use mlpt_stats::EmpiricalCdf;
use mlpt_survey::{run_router_survey, InternetConfig, RouterSurveyConfig, SyntheticInternet};
use serde_json::json;

/// Runs the experiment.
pub fn run(scale: Scale) -> ExperimentResult {
    let internet = SyntheticInternet::new(InternetConfig::default());
    let config = RouterSurveyConfig {
        scenarios: scale.router_survey_scenarios(),
        with_direct_comparison: false,
        ..RouterSurveyConfig::default()
    };
    let report = run_router_survey(&internet, &config);

    let distinct = EmpiricalCdf::from_iter(report.router_sizes_distinct.iter().map(|&s| s as f64));
    let aggregated =
        EmpiricalCdf::from_iter(report.router_sizes_aggregated.iter().map(|&s| s as f64));
    let grid = [2.0, 3.0, 5.0, 10.0, 20.0, 50.0, 100.0];
    let rows = vec![
        cdf_row("distinct", &distinct, &grid),
        cdf_row("aggregated", &aggregated, &grid),
    ];
    let mut headers: Vec<String> = vec!["population".into()];
    headers.extend(grid.iter().map(|x| format!("size<={x}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let over50_distinct = report
        .router_sizes_distinct
        .iter()
        .filter(|&&s| s > 50)
        .count();
    let over50_aggregated = report
        .router_sizes_aggregated
        .iter()
        .filter(|&&s| s > 50)
        .count();

    let mut text = format!(
        "Fig. 12: router sizes; {} distinct routers, {} aggregated routers\n\n",
        distinct.len(),
        aggregated.len()
    );
    text.push_str(&table(&header_refs, &rows));
    if !distinct.is_empty() {
        text.push_str(&format!(
            "\nSize-2 share (distinct): {} (paper: 0.68). Share <= 10: {} (paper: 0.97).\n\
             Routers with > 50 interfaces: distinct {} (paper: 1), aggregated {} (paper: 5).\n",
            f3(distinct.fraction_at_or_below(2.0)),
            f3(distinct.fraction_at_or_below(10.0)),
            over50_distinct,
            over50_aggregated,
        ));
    }

    ExperimentResult {
        id: "fig12",
        json: json!({
            "distinct_cdf": distinct.evaluate_on(&grid),
            "aggregated_cdf": aggregated.evaluate_on(&grid),
            "size2_share": if distinct.is_empty() { 0.0 } else { distinct.fraction_at_or_below(2.0) },
            "over50_distinct": over50_distinct,
            "over50_aggregated": over50_aggregated,
            "paper": {"size2": 0.68, "le10": 0.97, "over50_distinct": 1, "over50_aggregated": 5},
        }),
        text,
    }
}
