//! Experiment `fig2`: the probability of failing to detect meshing.
//!
//! Fig. 2 plots CDFs, over the meshed hop pairs found in the survey, of
//! the probability (Eq. 1) that the MDA-Lite's φ = 2 meshing test misses
//! the meshing. The paper reads off: ≤ 0.1 for 70 % of meshed hop pairs
//! and ≤ 0.25 for 95 %.

use super::ExperimentResult;
use crate::render::{cdf_row, f3, table};
use crate::Scale;
use mlpt_stats::EmpiricalCdf;
use mlpt_survey::{run_ip_survey, InternetConfig, IpSurveyConfig, SyntheticInternet};
use serde_json::json;

/// Runs the experiment.
pub fn run(scale: Scale) -> ExperimentResult {
    let internet = SyntheticInternet::new(InternetConfig::default());
    let config = IpSurveyConfig {
        scenarios: scale.ip_survey_scenarios(),
        ..IpSurveyConfig::default()
    };
    let report = run_ip_survey(&internet, &config);

    let measured = EmpiricalCdf::new(report.meshing_miss_measured.clone());
    let distinct = EmpiricalCdf::new(report.meshing_miss_distinct.clone());

    let grid = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0];
    let rows = vec![
        cdf_row("measured", &measured, &grid),
        cdf_row("distinct", &distinct, &grid),
    ];
    let mut headers: Vec<String> = vec!["population".into()];
    headers.extend(grid.iter().map(|x| format!("P<= {x}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut text = format!(
        "Fig. 2: CDF of P(miss meshing) with phi = 2 over meshed hop pairs\n\
         ({} meshed pairs measured, {} distinct)\n\n",
        measured.len(),
        distinct.len()
    );
    text.push_str(&table(&header_refs, &rows));
    if !measured.is_empty() {
        text.push_str(&format!(
            "\nShare of meshed hop pairs with miss probability <= 0.1: {} (paper: ~0.70)\n\
             Share with miss probability <= 0.25: {} (paper: ~0.95)\n",
            f3(measured.fraction_at_or_below(0.1)),
            f3(measured.fraction_at_or_below(0.25)),
        ));
    }

    ExperimentResult {
        id: "fig2",
        json: json!({
            "measured_pairs": measured.len(),
            "distinct_pairs": distinct.len(),
            "measured_cdf": measured.evaluate_on(&grid),
            "distinct_cdf": distinct.evaluate_on(&grid),
            "paper": {"p_le_0.1": 0.70, "p_le_0.25": 0.95},
        }),
        text,
    }
}
