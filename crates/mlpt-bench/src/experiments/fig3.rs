//! Experiment `fig3`: MDA-Lite vs MDA discovery curves on the four
//! Sec. 2.4.1 topologies.
//!
//! 30 runs per topology per algorithm; the vertical axis is the fraction
//! of the (known) topology's vertices/edges discovered, the horizontal
//! axis the number of probes normalised to the MDA's total for that run.
//! The paper's reading: MDA-Lite discovers more, faster, and on the
//! unswitched topologies (max-length-2, symmetric) stops well short of
//! the MDA's packet total.

use super::ExperimentResult;
use crate::progress::{replay, sample_at};
use crate::render::{f3, table};
use crate::Scale;
use mlpt_core::prelude::*;
use mlpt_sim::SimNetwork;
use mlpt_stats::Summary;
use mlpt_topo::canonical;
use serde_json::json;

const GRID: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Runs the experiment.
pub fn run(scale: Scale) -> ExperimentResult {
    let runs = scale.fig3_runs();
    let mut text = format!("Fig. 3: discovery vs normalised packets ({runs} runs each)\n");
    let mut payload = serde_json::Map::new();

    for (name, topo) in canonical::simulation_suite() {
        // Per grid point, across runs: vertex/edge fractions per algorithm.
        let mut curves: Vec<[Summary; 4]> = (0..GRID.len())
            .map(|_| {
                [
                    Summary::new(),
                    Summary::new(),
                    Summary::new(),
                    Summary::new(),
                ]
            })
            .collect();
        let mut lite_packet_ratio = Summary::new();

        for seed in 0..runs as u64 {
            // MDA run defines the normalisation.
            let net = SimNetwork::new(topo.clone(), seed);
            let mut prober =
                TransportProber::new(net, "192.0.2.1".parse().unwrap(), topo.destination());
            let mda_trace = trace_mda(&mut prober, &TraceConfig::new(seed));
            let mda_total = mda_trace.probes_sent;
            let mda_curve = replay(prober.log(), &topo);

            let net = SimNetwork::new(topo.clone(), seed);
            let mut prober =
                TransportProber::new(net, "192.0.2.1".parse().unwrap(), topo.destination());
            let lite_trace = trace_mda_lite(&mut prober, &TraceConfig::new(seed));
            let lite_curve = replay(prober.log(), &topo);
            lite_packet_ratio.record(lite_trace.probes_sent as f64 / mda_total as f64);

            for (gi, &x) in GRID.iter().enumerate() {
                let (mv, me) = sample_at(&mda_curve, &topo, mda_total, x);
                let (lv, le) = sample_at(&lite_curve, &topo, mda_total, x);
                curves[gi][0].record(mv);
                curves[gi][1].record(me);
                curves[gi][2].record(lv);
                curves[gi][3].record(le);
            }
        }

        let rows: Vec<Vec<String>> = GRID
            .iter()
            .enumerate()
            .map(|(gi, &x)| {
                vec![
                    f3(x),
                    f3(curves[gi][0].mean()),
                    f3(curves[gi][2].mean()),
                    f3(curves[gi][1].mean()),
                    f3(curves[gi][3].mean()),
                ]
            })
            .collect();
        text.push_str(&format!(
            "\n--- {name} diamond ---  (MDA-Lite packets / MDA packets: mean {})\n",
            f3(lite_packet_ratio.mean())
        ));
        text.push_str(&table(
            &[
                "packet fraction",
                "MDA vertices",
                "Lite vertices",
                "MDA edges",
                "Lite edges",
            ],
            &rows,
        ));

        payload.insert(
            name.to_string(),
            json!({
                "grid": GRID,
                "mda_vertices": curves.iter().map(|c| c[0].mean()).collect::<Vec<_>>(),
                "lite_vertices": curves.iter().map(|c| c[2].mean()).collect::<Vec<_>>(),
                "mda_edges": curves.iter().map(|c| c[1].mean()).collect::<Vec<_>>(),
                "lite_edges": curves.iter().map(|c| c[3].mean()).collect::<Vec<_>>(),
                "lite_packet_ratio": lite_packet_ratio.mean(),
            }),
        );
    }

    ExperimentResult {
        id: "fig3",
        json: serde_json::Value::Object(payload),
        text,
    }
}
