//! Experiments `fig4` and `table1`: the five-way comparison over
//! diamond-bearing traces (Sec. 2.4.2).
//!
//! Fig. 4 plots CDFs of per-trace vertex / edge / packet ratios of each
//! alternative against a first MDA run; Table 1 aggregates the same
//! quantities over the whole dataset. The paper's Table 1:
//!
//! ```text
//!                  Vertices  Edges  Packets
//! MDA 2            0.998     0.999  1.005
//! MDA-Lite φ=2     1.002     1.007  0.696
//! MDA-Lite φ=4     1.004     1.005  0.711
//! Single flow ID   0.537     0.201  0.040
//! ```

use super::ExperimentResult;
use crate::render::{cdf_row, f3, table};
use crate::Scale;
use mlpt_survey::evaluation::{Variant, VARIANTS};
use mlpt_survey::{
    evaluate_scenarios, EvaluationConfig, EvaluationOutcome, InternetConfig, SyntheticInternet,
};
use serde_json::json;

fn evaluate(scale: Scale) -> EvaluationOutcome {
    let internet = SyntheticInternet::new(InternetConfig::default());
    let config = EvaluationConfig {
        scenarios: scale.evaluation_scenarios(),
        ..EvaluationConfig::default()
    };
    evaluate_scenarios(&internet, &config)
}

/// Fig. 4: the three ratio CDFs.
pub fn run_fig4(scale: Scale) -> ExperimentResult {
    let out = evaluate(scale);
    let grid = [
        0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 1.0, 1.01, 1.1, 10.0, 100.0,
    ];
    let mut headers: Vec<String> = vec!["variant".into()];
    headers.extend(grid.iter().map(|x| format!("r<={x}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut text = format!(
        "Fig. 4: CDFs of ratios vs first MDA over {} diamond-bearing traces\n",
        out.measured_traces
    );
    let mut payload = serde_json::Map::new();
    for (metric, select) in [
        ("vertex ratio", 0usize),
        ("edge ratio", 1),
        ("packet ratio", 2),
    ] {
        let mut rows = Vec::new();
        for variant in VARIANTS {
            let cdf = out.cdf(variant, |r| match select {
                0 => r.vertices,
                1 => r.edges,
                _ => r.packets,
            });
            rows.push(cdf_row(variant.label(), &cdf, &grid));
            payload.insert(
                format!("{}_{}", variant.label().replace(' ', "_"), select),
                json!(cdf.evaluate_on(&grid)),
            );
        }
        text.push_str(&format!("\n--- {metric} ---\n"));
        text.push_str(&table(&header_refs, &rows));
    }

    ExperimentResult {
        id: "fig4",
        json: serde_json::Value::Object(payload),
        text,
    }
}

/// Table 1: aggregate-topology ratios.
pub fn run_table1(scale: Scale) -> ExperimentResult {
    let out = evaluate(scale);
    let paper = [
        (Variant::SecondMda, (0.998, 0.999, 1.005)),
        (Variant::MdaLitePhi2, (1.002, 1.007, 0.696)),
        (Variant::MdaLitePhi4, (1.004, 1.005, 0.711)),
        (Variant::SingleFlow, (0.537, 0.201, 0.040)),
    ];
    let mut rows = Vec::new();
    let mut payload = serde_json::Map::new();
    for (variant, (pv, pe, pp)) in paper {
        let (v, e, p) = out.aggregate_of(variant);
        rows.push(vec![
            variant.label().to_string(),
            format!("{} (paper {})", f3(v), f3(pv)),
            format!("{} (paper {})", f3(e), f3(pe)),
            format!("{} (paper {})", f3(p), f3(pp)),
        ]);
        payload.insert(
            variant.label().replace(' ', "_"),
            json!({"vertices": v, "edges": e, "packets": p,
                   "paper": {"vertices": pv, "edges": pe, "packets": pp}}),
        );
    }
    let mut text = format!(
        "Table 1: aggregated ratios vs first MDA over {} traces\n\n",
        out.measured_traces
    );
    text.push_str(&table(&["variant", "vertices", "edges", "packets"], &rows));

    ExperimentResult {
        id: "table1",
        json: serde_json::Value::Object(payload),
        text,
    }
}
