//! Experiment `fig5`: alias resolution over ten rounds (Sec. 4.2).
//!
//! "Round 0 … yielded 68% precision and 81% recall with respect to the
//! Round 10 results. A significant jump to 92% in both cases came with a
//! first round of probing, and then there was a slow increase with each
//! successive round."

use super::ExperimentResult;
use crate::render::{f3, table};
use crate::Scale;
use mlpt_survey::{run_router_survey, InternetConfig, RouterSurveyConfig, SyntheticInternet};
use serde_json::json;

/// Runs the experiment.
pub fn run(scale: Scale) -> ExperimentResult {
    let internet = SyntheticInternet::new(InternetConfig::default());
    let config = RouterSurveyConfig {
        scenarios: scale.router_survey_scenarios(),
        with_direct_comparison: false, // Fig. 5 is indirect-only
        ..RouterSurveyConfig::default()
    };
    let report = run_router_survey(&internet, &config);

    let rows: Vec<Vec<String>> = report
        .round_metrics
        .iter()
        .map(|m| {
            vec![
                m.round.to_string(),
                f3(m.precision),
                f3(m.recall),
                f3(m.probe_ratio),
            ]
        })
        .collect();
    let mut text = format!(
        "Fig. 5: precision/recall vs Round 10, and alias probes / trace probes\n\
         ({} load-balanced traces)\n\n",
        report.traces
    );
    text.push_str(&table(
        &["round", "precision", "recall", "probe ratio"],
        &rows,
    ));
    if let (Some(r0), Some(r1)) = (report.round_metrics.first(), report.round_metrics.get(1)) {
        text.push_str(&format!(
            "\nRound 0: precision {} recall {} (paper: 0.68 / 0.81)\n\
             Round 1: precision {} recall {} (paper: ~0.92 / ~0.92)\n",
            f3(r0.precision),
            f3(r0.recall),
            f3(r1.precision),
            f3(r1.recall),
        ));
    }

    ExperimentResult {
        id: "fig5",
        json: json!({
            "rounds": report.round_metrics.iter().map(|m| json!({
                "round": m.round,
                "precision": m.precision,
                "recall": m.recall,
                "probe_ratio": m.probe_ratio,
            })).collect::<Vec<_>>(),
            "paper": {"round0": [0.68, 0.81], "round1": [0.92, 0.92]},
        }),
        text,
    }
}
