//! One module per paper artifact. Every experiment returns an
//! [`ExperimentResult`]: an identifier, the printed text (the same
//! rows/series the paper reports), and a JSON value for archival.

pub mod ablations;
pub mod fakeroute;
pub mod fig1;
pub mod fig12;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod surveys;
pub mod table2;
pub mod table3;

use crate::Scale;
use serde_json::Value;

/// The outcome of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id (`fig4`, `table1`, ...).
    pub id: &'static str,
    /// Human-readable rendering.
    pub text: String,
    /// Machine-readable payload.
    pub json: Value,
}

/// All experiment ids in presentation order.
pub const ALL_IDS: [&str; 16] = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "table1",
    "fakeroute",
    "fig5",
    "table2",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table3",
    "fig13",
];

/// Runs one experiment by id (fig13 also covers fig14; fig4 also covers
/// table1's inputs, but table1 prints its own view).
pub fn run(id: &str, scale: Scale) -> Option<Vec<ExperimentResult>> {
    match id {
        "fig1" => Some(vec![fig1::run(scale)]),
        "fig2" => Some(vec![fig2::run(scale)]),
        "fig3" => Some(vec![fig3::run(scale)]),
        "fig4" => Some(vec![fig4::run_fig4(scale)]),
        "table1" => Some(vec![fig4::run_table1(scale)]),
        "fakeroute" => Some(vec![fakeroute::run(scale)]),
        "fig5" => Some(vec![fig5::run(scale)]),
        "table2" => Some(vec![table2::run(scale)]),
        "fig7" => Some(vec![surveys::run_fig7(scale)]),
        "fig8" => Some(vec![surveys::run_fig8(scale)]),
        "fig9" => Some(vec![surveys::run_fig9(scale)]),
        "fig10" => Some(vec![surveys::run_fig10(scale)]),
        "fig11" => Some(vec![surveys::run_fig11(scale)]),
        "fig12" => Some(vec![fig12::run(scale)]),
        "table3" => Some(vec![table3::run_table3(scale)]),
        "fig13" | "fig14" => Some(vec![table3::run_fig13_14(scale)]),
        "ablation-phi" => Some(vec![ablations::run_phi(scale)]),
        "ablation-faults" => Some(vec![ablations::run_faults(scale)]),
        "ablation-stopping" => Some(vec![ablations::run_stopping(scale)]),
        "ablation-weighted" => Some(vec![ablations::run_weighted(scale)]),
        "all" => {
            let mut out = Vec::new();
            for id in ALL_IDS {
                out.extend(run(id, scale).expect("known id"));
            }
            for id in [
                "ablation-phi",
                "ablation-faults",
                "ablation-stopping",
                "ablation-weighted",
            ] {
                out.extend(run(id, scale).expect("known id"));
            }
            Some(out)
        }
        _ => None,
    }
}
