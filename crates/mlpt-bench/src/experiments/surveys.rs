//! Experiments `fig7`–`fig11`: the IP-level survey distributions
//! (Sec. 5.1).

use super::ExperimentResult;
use crate::render::{cdf_row, f3, pct, table};
use crate::Scale;
use mlpt_stats::Histogram;
use mlpt_survey::{
    run_ip_survey, InternetConfig, IpSurveyConfig, IpSurveyReport, SyntheticInternet,
};
use serde_json::json;
use std::sync::OnceLock;

/// The survey is shared by five figures; run it once per scale.
fn survey(scale: Scale) -> &'static IpSurveyReport {
    static SMALL: OnceLock<IpSurveyReport> = OnceLock::new();
    static MEDIUM: OnceLock<IpSurveyReport> = OnceLock::new();
    static PAPER: OnceLock<IpSurveyReport> = OnceLock::new();
    let cell = match scale {
        Scale::Small => &SMALL,
        Scale::Medium => &MEDIUM,
        Scale::Paper => &PAPER,
    };
    cell.get_or_init(|| {
        let internet = SyntheticInternet::new(InternetConfig::default());
        let config = IpSurveyConfig {
            scenarios: scale.ip_survey_scenarios(),
            ..IpSurveyConfig::default()
        };
        run_ip_survey(&internet, &config)
    })
}

fn histogram_rows(h: &Histogram, values: &[u64]) -> Vec<String> {
    values.iter().map(|&v| f3(h.portion(v))).collect()
}

/// Fig. 7: width asymmetry distributions.
pub fn run_fig7(scale: Scale) -> ExperimentResult {
    let report = survey(scale);
    let (measured, distinct) = report.asymmetry_histograms();
    let values = [0u64, 1, 2, 3, 5, 10, 17, 20, 50];
    let mut headers: Vec<String> = vec!["population".into()];
    headers.extend(values.iter().map(|v| format!("asym={v}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows = vec![
        {
            let mut r = vec!["measured".to_string()];
            r.extend(histogram_rows(&measured, &values));
            r
        },
        {
            let mut r = vec!["distinct".to_string()];
            r.extend(histogram_rows(&distinct, &values));
            r
        },
    ];
    let (zm, zd) = report.zero_asymmetry_share();
    let mut text = format!(
        "Fig. 7: max width asymmetry over {} measured / {} distinct diamonds\n\n",
        report.diamonds.measured_count(),
        report.diamonds.distinct_count()
    );
    text.push_str(&table(&header_refs, &rows));
    text.push_str(&format!(
        "\nZero-asymmetry share: measured {} distinct {} (paper: 89% both)\n",
        pct(zm),
        pct(zd)
    ));
    ExperimentResult {
        id: "fig7",
        json: json!({
            "zero_share_measured": zm,
            "zero_share_distinct": zd,
            "paper_zero_share": 0.89,
        }),
        text,
    }
}

/// Fig. 8: max probability difference among asymmetric unmeshed diamonds.
pub fn run_fig8(scale: Scale) -> ExperimentResult {
    let report = survey(scale);
    let (measured, distinct) = report.probability_difference_cdfs();
    let grid = [0.05, 0.1, 0.25, 0.5, 0.75, 0.9];
    let rows = vec![
        cdf_row("measured", &measured, &grid),
        cdf_row("distinct", &distinct, &grid),
    ];
    let mut headers: Vec<String> = vec!["population".into()];
    headers.extend(grid.iter().map(|x| format!("d<={x}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut text = format!(
        "Fig. 8: max probability difference, asymmetric unmeshed diamonds\n\
         ({} measured, {} distinct)\n\n",
        measured.len(),
        distinct.len()
    );
    text.push_str(&table(&header_refs, &rows));
    if !measured.is_empty() {
        text.push_str(&format!(
            "\nShare <= 0.25: measured {} (paper: 0.90); share <= 0.5: {} (paper: 0.99)\n",
            f3(measured.fraction_at_or_below(0.25)),
            f3(measured.fraction_at_or_below(0.5)),
        ));
    }
    ExperimentResult {
        id: "fig8",
        json: json!({
            "measured": measured.evaluate_on(&grid),
            "distinct": distinct.evaluate_on(&grid),
            "paper": {"le_0.25_measured": 0.90, "le_0.5": 0.99},
        }),
        text,
    }
}

/// Fig. 9: ratio of meshed hops over meshed diamonds.
pub fn run_fig9(scale: Scale) -> ExperimentResult {
    let report = survey(scale);
    let (measured, distinct) = report.meshed_ratio_cdfs();
    let grid = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8];
    let rows = vec![
        cdf_row("measured", &measured, &grid),
        cdf_row("distinct", &distinct, &grid),
    ];
    let mut headers: Vec<String> = vec!["population".into()];
    headers.extend(grid.iter().map(|x| format!("r<={x}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut text = format!(
        "Fig. 9: ratio of meshed hops over meshed diamonds ({} measured, {} distinct)\n\n",
        measured.len(),
        distinct.len()
    );
    text.push_str(&table(&header_refs, &rows));
    if !measured.is_empty() {
        text.push_str(&format!(
            "\nShare of meshed diamonds with ratio <= 0.4: {} (paper: >0.80)\n",
            f3(measured.fraction_at_or_below(0.4))
        ));
    }
    ExperimentResult {
        id: "fig9",
        json: json!({
            "measured": measured.evaluate_on(&grid),
            "distinct": distinct.evaluate_on(&grid),
            "paper": {"le_0.4": 0.80},
        }),
        text,
    }
}

/// Fig. 10: max length and max width distributions.
pub fn run_fig10(scale: Scale) -> ExperimentResult {
    let report = survey(scale);
    let (ml, dl, mw, dw) = report.length_width_histograms();
    let lengths = [2u64, 3, 4, 5, 7, 10, 15];
    let widths = [2u64, 4, 8, 16, 28, 40, 48, 56, 96];

    let mut text = format!(
        "Fig. 10: max length / max width over {} measured, {} distinct diamonds\n",
        report.diamonds.measured_count(),
        report.diamonds.distinct_count()
    );
    let mut headers: Vec<String> = vec!["lengths".into()];
    headers.extend(lengths.iter().map(|v| format!("L={v}")));
    let hr: Vec<&str> = headers.iter().map(String::as_str).collect();
    text.push('\n');
    text.push_str(&table(
        &hr,
        &[
            {
                let mut r = vec!["measured".to_string()];
                r.extend(histogram_rows(&ml, &lengths));
                r
            },
            {
                let mut r = vec!["distinct".to_string()];
                r.extend(histogram_rows(&dl, &lengths));
                r
            },
        ],
    ));
    let mut headers: Vec<String> = vec!["widths".into()];
    headers.extend(widths.iter().map(|v| format!("W={v}")));
    let hr: Vec<&str> = headers.iter().map(String::as_str).collect();
    text.push('\n');
    text.push_str(&table(
        &hr,
        &[
            {
                let mut r = vec!["measured".to_string()];
                r.extend(histogram_rows(&mw, &widths));
                r
            },
            {
                let mut r = vec!["distinct".to_string()];
                r.extend(histogram_rows(&dw, &widths));
                r
            },
        ],
    ));
    text.push_str(&format!(
        "\nLength-2 share: measured {} (paper: ~0.48). Max width seen: {} (paper: 96).\n\
         Width peaks above the tail floor: {:?} (paper: peaks at 48 and 56).\n",
        f3(ml.portion(2)),
        mw.max_value().unwrap_or(0),
        mw.peaks(0.0005),
    ));
    ExperimentResult {
        id: "fig10",
        json: json!({
            "length2_share_measured": ml.portion(2),
            "max_width": mw.max_value(),
            "width_peaks": mw.peaks(0.0005),
            "paper": {"length2": 0.48, "max_width": 96, "peaks": [48, 56]},
        }),
        text,
    }
}

/// Fig. 11: joint (max length, max width) distributions.
pub fn run_fig11(scale: Scale) -> ExperimentResult {
    let report = survey(scale);
    let (measured, distinct) = report.joint_length_width();
    let simplest_m = measured.portion(2, 2);
    let simplest_d = distinct.portion(2, 2);
    let mut text = format!(
        "Fig. 11: joint (max length, max width); {} measured / {} distinct diamonds\n\n",
        measured.total(),
        distinct.total()
    );
    text.push_str(&format!(
        "Simplest diamond (L=2, W=2): measured {} distinct {} (paper: 24.2% / 27.4%)\n",
        pct(simplest_m),
        pct(simplest_d)
    ));
    text.push_str("\nTop measured cells (length, width, portion):\n");
    let mut cells: Vec<((u64, u64), u64)> = measured.cells().collect();
    cells.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for ((l, w), c) in cells.into_iter().take(12) {
        text.push_str(&format!(
            "  L={l:<3} W={w:<3} {}\n",
            f3(c as f64 / measured.total() as f64)
        ));
    }
    ExperimentResult {
        id: "fig11",
        json: json!({
            "simplest_measured": simplest_m,
            "simplest_distinct": simplest_d,
            "paper": {"simplest_measured": 0.242, "simplest_distinct": 0.274},
        }),
        text,
    }
}
