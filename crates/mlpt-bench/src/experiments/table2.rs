//! Experiment `table2`: indirect (MMLPT) vs direct (MIDAR-style) probing
//! verdicts over the union of identified router sets (Sec. 4.2).
//!
//! Paper's Table 2 (portions over 4798 sets):
//!
//! ```text
//!                    Accept Direct  Reject Direct  Unable Direct
//! Accept Indirect    0.365          0.005          0.283
//! Reject Indirect    0.144          N/A            N/A
//! Unable Indirect    0.203          N/A            N/A
//! ```

use super::ExperimentResult;
use crate::render::{f3, table};
use crate::Scale;
use mlpt_alias::resolver::SetVerdict;
use mlpt_survey::{run_router_survey, InternetConfig, RouterSurveyConfig, SyntheticInternet};
use serde_json::json;

/// Runs the experiment.
pub fn run(scale: Scale) -> ExperimentResult {
    let internet = SyntheticInternet::new(InternetConfig::default());
    let config = RouterSurveyConfig {
        scenarios: scale.router_survey_scenarios(),
        with_direct_comparison: true,
        ..RouterSurveyConfig::default()
    };
    let report = run_router_survey(&internet, &config);
    let m = &report.verdicts;

    let verdicts = [SetVerdict::Accept, SetVerdict::Reject, SetVerdict::Unable];
    let labels = ["Accept", "Reject", "Unable"];
    let mut rows = Vec::new();
    for (vi, li) in verdicts.iter().zip(labels) {
        let mut row = vec![format!("{li} Indirect")];
        for vd in verdicts {
            row.push(f3(m.portion(*vi, vd)));
        }
        rows.push(row);
    }

    let mut text = format!(
        "Table 2: verdicts for {} address sets identified as routers by either\n\
         indirect (MMLPT) or direct (MIDAR-style) probing\n\n",
        m.total
    );
    text.push_str(&table(
        &["", "Accept Direct", "Reject Direct", "Unable Direct"],
        &rows,
    ));
    text.push_str(
        "\nPaper: Accept/Accept 0.365, Accept-Ind/Reject-Dir 0.005, Accept-Ind/Unable-Dir 0.283,\n\
         Reject-Ind/Accept-Dir 0.144 (per-interface Time Exceeded counters), Unable-Ind/Accept-Dir 0.203.\n",
    );

    ExperimentResult {
        id: "table2",
        json: json!({
            "total_sets": m.total,
            "matrix": labels.iter().enumerate().map(|(i, li)| json!({
                "indirect": li,
                "accept_direct": m.portion(verdicts[i], SetVerdict::Accept),
                "reject_direct": m.portion(verdicts[i], SetVerdict::Reject),
                "unable_direct": m.portion(verdicts[i], SetVerdict::Unable),
            })).collect::<Vec<_>>(),
            "paper": {
                "accept_accept": 0.365, "accept_reject": 0.005, "accept_unable": 0.283,
                "reject_accept": 0.144, "unable_accept": 0.203,
            },
        }),
        text,
    }
}
