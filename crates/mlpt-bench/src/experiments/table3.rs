//! Experiments `table3` and `fig13`/`fig14`: the effect of alias
//! resolution on diamonds (Sec. 5.2).
//!
//! Table 3 (fractions of unique diamonds): no change 0.579, single
//! smaller diamond 0.355, multiple smaller diamonds 0.006, one path
//! 0.058 — "some degree of router resolution takes place on 41.9% of
//! unique diamonds". Fig. 13: the max-width peak at 48 survives
//! resolution, the peak at 56 disappears. Fig. 14: the joint
//! before/after widths of diamonds that changed.

use super::ExperimentResult;
use crate::render::{f3, pct, table};
use crate::Scale;
use mlpt_survey::{
    run_router_survey, InternetConfig, ResolutionCase, RouterSurveyConfig, RouterSurveyReport,
    SyntheticInternet,
};
use serde_json::json;
use std::sync::OnceLock;

fn survey(scale: Scale) -> &'static RouterSurveyReport {
    static SMALL: OnceLock<RouterSurveyReport> = OnceLock::new();
    static MEDIUM: OnceLock<RouterSurveyReport> = OnceLock::new();
    static PAPER: OnceLock<RouterSurveyReport> = OnceLock::new();
    let cell = match scale {
        Scale::Small => &SMALL,
        Scale::Medium => &MEDIUM,
        Scale::Paper => &PAPER,
    };
    cell.get_or_init(|| {
        let internet = SyntheticInternet::new(InternetConfig::default());
        let config = RouterSurveyConfig {
            scenarios: scale.router_survey_scenarios(),
            with_direct_comparison: false,
            ..RouterSurveyConfig::default()
        };
        run_router_survey(&internet, &config)
    })
}

/// Table 3.
pub fn run_table3(scale: Scale) -> ExperimentResult {
    let report = survey(scale);
    let cases = [
        (ResolutionCase::NoChange, 0.579),
        (ResolutionCase::SingleSmaller, 0.355),
        (ResolutionCase::MultipleSmaller, 0.006),
        (ResolutionCase::OnePath, 0.058),
    ];
    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|&(case, paper)| {
            vec![
                case.label().to_string(),
                f3(report.resolution_portion(case)),
                f3(paper),
            ]
        })
        .collect();
    let total: u64 = report.resolution_counts.values().sum();
    let mut text = format!(
        "Table 3: effect of alias resolution on {} unique diamonds\n\n",
        total
    );
    text.push_str(&table(&["case", "measured", "paper"], &rows));
    text.push_str(&format!(
        "\nSome resolution on {} of unique diamonds (paper: 41.9%)\n",
        pct(report.some_resolution_portion())
    ));
    ExperimentResult {
        id: "table3",
        json: json!({
            "unique_diamonds": total,
            "portions": cases.iter().map(|&(c, paper)| json!({
                "case": c.label(),
                "measured": report.resolution_portion(c),
                "paper": paper,
            })).collect::<Vec<_>>(),
            "some_resolution": report.some_resolution_portion(),
            "paper_some_resolution": 0.419,
        }),
        text,
    }
}

/// Figs. 13 & 14.
pub fn run_fig13_14(scale: Scale) -> ExperimentResult {
    let report = survey(scale);
    let widths = [2u64, 4, 8, 16, 28, 40, 48, 56, 96];
    let before = &report.width_before;
    let after = &report.width_after;

    let mut rows = Vec::new();
    for &w in &widths {
        rows.push(vec![
            format!("W={w}"),
            f3(before.portion(w)),
            f3(after.portion(w)),
        ]);
    }
    let mut text = format!(
        "Fig. 13: max width of unique diamonds before ({}) and after ({}) alias resolution\n\n",
        before.total(),
        after.total()
    );
    text.push_str(&table(&["width", "IP level", "router level"], &rows));
    text.push_str(&format!(
        "\nPortion at width 48: before {} after {} (paper: peak persists)\n\
         Portion at width 56: before {} after {} (paper: peak disappears)\n",
        f3(before.portion(48)),
        f3(after.portion(48)),
        f3(before.portion(56)),
        f3(after.portion(56)),
    ));

    text.push_str(&format!(
        "\nFig. 14: joint (before, after) widths for the {} diamonds that changed\n",
        report.width_change.total()
    ));
    let mut cells: Vec<((u64, u64), u64)> = report.width_change.cells().collect();
    cells.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for ((b, a), c) in cells.into_iter().take(12) {
        text.push_str(&format!("  before={b:<3} after={a:<3} count={c}\n"));
    }
    text.push_str(&format!(
        "Changed diamonds strictly narrower: {} of {}\n",
        report.width_change.below_diagonal(),
        report.width_change.total()
    ));

    ExperimentResult {
        id: "fig13",
        json: json!({
            "width48_before": before.portion(48),
            "width48_after": after.portion(48),
            "width56_before": before.portion(56),
            "width56_after": after.portion(56),
            "changed": report.width_change.total(),
            "narrower": report.width_change.below_diagonal(),
        }),
        text,
    }
}
