//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation.
//!
//! Each experiment is a library function returning a serializable result
//! plus a plain-text rendering, so the `experiments` binary can print it,
//! integration tests can assert on it at reduced scale, and `results/`
//! can archive the JSON. See DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured records.

pub mod experiments;
pub mod progress;
pub mod reference;
pub mod render;
pub mod scale;

pub use scale::Scale;
