//! Discovery trajectories: fraction of the topology found vs packets sent.
//!
//! Fig. 3 plots, for each algorithm and topology, the portion of vertices
//! and edges discovered as a function of probes sent (normalised to the
//! MDA's total). The algorithms don't expose mid-run state, but the probe
//! log is a complete record: replaying it reconstructs the discovery
//! curve exactly.

use mlpt_core::prober::ProbeLog;
use mlpt_topo::MultipathTopology;
use mlpt_wire::FlowId;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// One point on a discovery curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressPoint {
    /// Probes sent so far.
    pub packets: u64,
    /// Distinct (hop, vertex) pairs discovered so far.
    pub vertices: usize,
    /// Distinct (hop, from, to) edges witnessed so far.
    pub edges: usize,
}

/// Replays an indirect probe log into a discovery curve.
///
/// Vertices/edges are counted against ground truth membership so that
/// phantom responses (impossible in the simulator) would not inflate the
/// curve.
pub fn replay(log: &ProbeLog, truth: &MultipathTopology) -> Vec<ProgressPoint> {
    let mut vertices: BTreeSet<(u8, Ipv4Addr)> = BTreeSet::new();
    let mut edges: BTreeSet<(u8, Ipv4Addr, Ipv4Addr)> = BTreeSet::new();
    let mut flow_paths: BTreeMap<FlowId, BTreeMap<u8, Ipv4Addr>> = BTreeMap::new();
    let mut curve = Vec::with_capacity(log.indirect.len());

    for (i, obs) in log.indirect.iter().enumerate() {
        let hop = usize::from(obs.ttl - 1);
        if truth.contains(hop, obs.responder) {
            vertices.insert((obs.ttl, obs.responder));

            // Edges adjacent single-vertex hops imply deterministically
            // (all flows pass through the single vertex): both the MDA and
            // MDA-Lite report them without needing a flow observed at both
            // TTLs, so the curve credits them at discovery time.
            if hop > 0 && truth.hop(hop - 1).len() == 1 {
                let parent = truth.hop(hop - 1)[0];
                if vertices.contains(&(obs.ttl - 1, parent)) {
                    edges.insert((obs.ttl - 1, parent, obs.responder));
                }
            }
            if hop + 1 < truth.num_hops() && truth.hop(hop + 1).len() == 1 {
                let child = truth.hop(hop + 1)[0];
                if vertices.contains(&(obs.ttl + 1, child)) {
                    edges.insert((obs.ttl, obs.responder, child));
                }
            }
            if truth.hop(hop).len() == 1 {
                // A newly discovered single vertex implies edges to every
                // already-discovered neighbour on both sides (it is the
                // only possible successor / predecessor there).
                for &(t, v) in vertices.clone().iter() {
                    if hop > 0 && usize::from(t) == hop {
                        edges.insert((obs.ttl - 1, v, obs.responder));
                    }
                    if hop + 1 < truth.num_hops() && usize::from(t) == hop + 2 {
                        edges.insert((obs.ttl, obs.responder, v));
                    }
                }
            }
        }
        let path = flow_paths.entry(obs.flow).or_default();
        path.insert(obs.ttl, obs.responder);
        // New edges this flow witnesses with its neighbours.
        if obs.ttl >= 2 {
            if let Some(&prev) = path.get(&(obs.ttl - 1)) {
                if truth.successors(hop - 1, prev).contains(&obs.responder) {
                    edges.insert((obs.ttl - 1, prev, obs.responder));
                }
            }
        }
        if let Some(&next) = path.get(&(obs.ttl + 1)) {
            if truth.successors(hop, obs.responder).contains(&next) {
                edges.insert((obs.ttl, obs.responder, next));
            }
        }
        curve.push(ProgressPoint {
            packets: (i + 1) as u64,
            vertices: vertices.len(),
            edges: edges.len(),
        });
    }
    curve
}

/// Samples a curve at a normalised packet fraction `x` of `total_packets`,
/// returning (vertex fraction, edge fraction) against ground truth counts.
pub fn sample_at(
    curve: &[ProgressPoint],
    truth: &MultipathTopology,
    total_packets: u64,
    x: f64,
) -> (f64, f64) {
    let target = (x * total_packets as f64).round() as u64;
    let total_vertices = truth.total_vertices() as f64;
    let total_edges = truth.total_edges() as f64;
    let point = curve
        .iter()
        .rev()
        .find(|p| p.packets <= target)
        .copied()
        .unwrap_or(ProgressPoint {
            packets: 0,
            vertices: 0,
            edges: 0,
        });
    (
        point.vertices as f64 / total_vertices,
        point.edges as f64 / total_edges,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpt_core::prelude::*;
    use mlpt_sim::SimNetwork;
    use mlpt_topo::canonical;

    #[test]
    fn replay_monotone_and_complete() {
        let topo = canonical::fig1_unmeshed();
        let net = SimNetwork::new(topo.clone(), 5);
        let mut prober =
            TransportProber::new(net, "192.0.2.1".parse().unwrap(), topo.destination());
        let trace = trace_mda(&mut prober, &TraceConfig::new(5));
        assert!(trace.reached_destination);
        let curve = replay(prober.log(), &topo);
        assert!(!curve.is_empty());
        // Monotone non-decreasing.
        for w in curve.windows(2) {
            assert!(w[1].vertices >= w[0].vertices);
            assert!(w[1].edges >= w[0].edges);
            assert_eq!(w[1].packets, w[0].packets + 1);
        }
        // Ends at full vertex discovery for a green run.
        let last = curve.last().unwrap();
        assert_eq!(last.vertices, topo.total_vertices());
    }

    #[test]
    fn sample_fractions() {
        let topo = canonical::simplest_diamond();
        let net = SimNetwork::new(topo.clone(), 2);
        let mut prober =
            TransportProber::new(net, "192.0.2.1".parse().unwrap(), topo.destination());
        let _ = trace_mda(&mut prober, &TraceConfig::new(2));
        let curve = replay(prober.log(), &topo);
        let total = curve.last().unwrap().packets;
        let (v0, e0) = sample_at(&curve, &topo, total, 0.0);
        let (v1, e1) = sample_at(&curve, &topo, total, 1.0);
        assert_eq!((v0, e0), (0.0, 0.0));
        assert!(v1 >= 0.99, "end of curve = full discovery, got {v1}");
        assert!(e1 > 0.0);
    }
}
