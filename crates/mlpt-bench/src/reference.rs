//! The pre-batching probe path, preserved as a benchmark baseline.
//!
//! [`ReferenceNetwork`] reproduces the cost profile the simulator had
//! before the batched probe engine landed: per-packet
//! `HashMap<Ipv4Addr, …>` lookups for router ownership and hop distance,
//! a `BTreeSet → Vec` collection per walk step, an owned quote buffer and
//! [`IcmpMessage`] construction per reply, and a freshly allocated reply
//! `Vec` per probe. Behaviour is identical to [`mlpt_sim::SimNetwork`]
//! for fault-free UDP probing (same hasher, same RNG stream, same IP-ID
//! engine), so `probe_engine` benchmarks compare equal work — only the
//! dispatch machinery differs.
//!
//! This module exists solely so the `probe_engine` benchmark can report
//! an honest before/after number; nothing in the product path uses it.

use mlpt_sim::{FlowHasher, IpIdEngine, ReplyClass, RouterProfile};
use mlpt_topo::{MultipathTopology, RouterId};
use mlpt_wire::icmp::{IcmpExtensions, IcmpMessage, CODE_PORT_UNREACHABLE};
use mlpt_wire::ipv4::{Ipv4Header, PROTO_ICMP, PROTO_UDP};
use mlpt_wire::probe::parse_udp_probe;
use mlpt_wire::transport::{BatchTransport, PacketTransport};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The legacy-architecture simulator (see module docs). Fault-free,
/// per-flow balancing, well-behaved routers — the configuration every
/// probe-engine benchmark runs under.
pub struct ReferenceNetwork {
    topology: MultipathTopology,
    router_of: HashMap<Ipv4Addr, RouterId>,
    distance: HashMap<Ipv4Addr, usize>,
    hasher: FlowHasher,
    profile: RouterProfile,
    ipid: IpIdEngine,
    rng: rand_chacha::ChaCha8Rng,
    clock: u64,
}

impl ReferenceNetwork {
    /// Builds the reference simulator over a topology: every interface
    /// its own router, uniform per-flow balancing, no faults.
    pub fn new(topology: MultipathTopology, seed: u64) -> Self {
        use rand_chacha::rand_core::SeedableRng;
        let mut router_of = HashMap::new();
        for (i, addr) in topology.all_addresses().into_iter().enumerate() {
            router_of.insert(addr, RouterId(i as u32));
        }
        let mut distance: HashMap<Ipv4Addr, usize> = HashMap::new();
        for i in 0..topology.num_hops() {
            for &a in topology.hop(i) {
                distance.entry(a).or_insert(i + 1);
            }
        }
        Self {
            topology,
            router_of,
            distance,
            hasher: FlowHasher::new(seed),
            profile: RouterProfile::well_behaved(),
            ipid: IpIdEngine::new(),
            rng: rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xF1E2_D3C4_B5A6_9788),
            clock: 0,
        }
    }

    /// The legacy walk: a `BTreeSet` lookup plus a `Vec` collection per
    /// hop step.
    fn walk(&mut self, flow: u64, target_hop: usize) -> Ipv4Addr {
        let entry = self.topology.hop(0);
        let mut current = if entry.len() == 1 {
            entry[0]
        } else {
            entry[self
                .hasher
                .choose(usize::MAX, Ipv4Addr::UNSPECIFIED, flow, 0, entry.len())]
        };
        for i in 0..target_hop {
            let succs = self.topology.successors(i, current);
            let succ_list: Vec<Ipv4Addr> = succs.iter().copied().collect();
            let idx = self.hasher.choose(i, current, flow, 0, succ_list.len());
            current = succ_list[idx];
        }
        current
    }

    fn handle_udp(&mut self, packet: &[u8]) -> Option<Vec<u8>> {
        let probe = parse_udp_probe(packet).ok()?;
        if probe.destination != self.topology.destination() || probe.ttl == 0 {
            return None;
        }
        let last_hop = self.topology.num_hops() - 1;
        let target_hop = usize::from(probe.ttl - 1).min(last_hop);
        let responder = self.walk(u64::from(probe.flow.value()), target_hop);

        let reached_destination = target_hop == last_hop;
        let router = self.router_of[&responder];

        let ip_id = self.ipid.sample(
            &mut self.rng,
            router.0,
            responder,
            &self.profile.ipid,
            ReplyClass::Indirect,
            probe.sequence,
            self.clock,
        )?;

        // Owned quote + message construction, as the seed code did.
        let mut quoted = packet[..28.min(packet.len())].to_vec();
        if quoted.len() > 8 {
            quoted[8] = 1;
        }
        let icmp = if reached_destination {
            IcmpMessage::DestinationUnreachable {
                code: CODE_PORT_UNREACHABLE,
                quoted,
                extensions: IcmpExtensions::default(),
            }
        } else {
            IcmpMessage::TimeExceeded {
                quoted,
                extensions: IcmpExtensions::default(),
            }
        };

        let hop_distance = (target_hop + 1) as u8;
        let reply_ttl = 255u8.saturating_sub(hop_distance);
        let icmp_bytes = icmp.emit();
        let ip = Ipv4Header::new(
            responder,
            probe.source,
            PROTO_ICMP,
            reply_ttl,
            ip_id,
            icmp_bytes.len(),
        );
        let mut reply = Vec::with_capacity(20 + icmp_bytes.len());
        reply.extend_from_slice(&ip.emit());
        reply.extend_from_slice(&icmp_bytes);
        let _ = self.distance; // kept for parity with the old struct layout
        Some(reply)
    }
}

impl PacketTransport for ReferenceNetwork {
    fn now(&self) -> u64 {
        self.clock
    }

    /// The legacy verb: always allocates the reply.
    fn send_packet(&mut self, packet: &[u8]) -> Option<Vec<u8>> {
        self.clock += 1;
        let (header, _ihl) = Ipv4Header::parse(packet).ok()?;
        match header.protocol {
            PROTO_UDP => self.handle_udp(packet),
            _ => None,
        }
    }

    /// Deliberately routed through the allocating `send_packet`, so
    /// batched callers over this transport still pay the legacy per-probe
    /// allocation — that is the point of the baseline.
    fn send_packet_into(&mut self, packet: &[u8], reply: &mut Vec<u8>) -> bool {
        match self.send_packet(packet) {
            Some(bytes) => {
                reply.extend_from_slice(&bytes);
                true
            }
            None => false,
        }
    }
}

impl BatchTransport for ReferenceNetwork {}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpt_core::prelude::*;
    use mlpt_core::prober::DispatchMode;
    use mlpt_sim::SimNetwork;
    use mlpt_topo::canonical;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    /// The baseline must do the same *work* as the real simulator: same
    /// replies, same discovered topology, same probe counts — otherwise
    /// the benchmark comparison would be apples to oranges.
    #[test]
    fn reference_matches_sim_network() {
        for topo in [canonical::fig1_unmeshed(), canonical::fig1_meshed()] {
            let seed = 11u64;
            let mut legacy = TransportProber::new(
                ReferenceNetwork::new(topo.clone(), seed),
                SRC,
                topo.destination(),
            )
            .with_dispatch(DispatchMode::PerProbe);
            let legacy_trace = trace_mda_lite(&mut legacy, &TraceConfig::new(seed));

            let mut current =
                TransportProber::new(SimNetwork::new(topo.clone(), seed), SRC, topo.destination());
            let current_trace = trace_mda_lite(&mut current, &TraceConfig::new(seed));

            assert_eq!(legacy_trace.probes_sent, current_trace.probes_sent);
            assert_eq!(legacy_trace.to_topology(), current_trace.to_topology());
            assert_eq!(legacy.log().indirect, current.log().indirect);
        }
    }
}
