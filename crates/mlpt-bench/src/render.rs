//! Plain-text rendering helpers for experiment output.

/// Renders a table with a header row; columns are left-aligned and padded
/// to the widest cell.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * cols;
    out.push_str(&"-".repeat(total.saturating_sub(2)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 4 decimal places.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Renders an ASCII CDF sparkline: fraction at-or-below each grid value.
pub fn cdf_row(label: &str, cdf: &mlpt_stats::EmpiricalCdf, grid: &[f64]) -> Vec<String> {
    let mut row = vec![label.to_string()];
    for &x in grid {
        row.push(f3(cdf.fraction_at_or_below(x)));
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let out = table(
            &["name", "value"],
            &[
                vec!["alpha".into(), "1".into()],
                vec!["b".into(), "1234".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.69642), "0.696");
        assert_eq!(f4(0.03125), "0.0312");
        assert_eq!(pct(0.579), "57.9%");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        let _ = table(&["a", "b"], &[vec!["only-one".into()]]);
    }
}
