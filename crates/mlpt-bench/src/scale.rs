//! Experiment scale presets.
//!
//! The paper's evaluation dataset is 10 000 source-destination pairs
//! (Sec. 2.4.2) and its Fakeroute validation 50 samples × 1000 runs
//! (Sec. 3). `Scale::Paper` reproduces those sizes; `Scale::Small` keeps
//! every experiment's structure but shrinks populations so the whole
//! battery runs in seconds (used by integration tests and quick looks);
//! `Scale::Medium` is the default for `experiments all`.

use serde::{Deserialize, Serialize};

/// How big to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds-scale: structure checks and CI.
    Small,
    /// Minutes-scale: stable shapes (default).
    Medium,
    /// The paper's population sizes.
    Paper,
}

impl Scale {
    /// Parses a CLI token.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Scenarios for the evaluation dataset (Fig. 4 / Table 1).
    pub fn evaluation_scenarios(self) -> usize {
        match self {
            Scale::Small => 150,
            Scale::Medium => 1_500,
            Scale::Paper => 10_000,
        }
    }

    /// Scenarios for the IP-level survey (Figs. 2, 7–11).
    pub fn ip_survey_scenarios(self) -> usize {
        match self {
            Scale::Small => 300,
            Scale::Medium => 3_000,
            Scale::Paper => 40_000,
        }
    }

    /// Scenarios for the router-level survey (Figs. 5, 12–14, Tables 2–3).
    pub fn router_survey_scenarios(self) -> usize {
        match self {
            Scale::Small => 60,
            Scale::Medium => 400,
            Scale::Paper => 3_000,
        }
    }

    /// Fakeroute validation: (samples, runs per sample).
    pub fn fakeroute_shape(self) -> (usize, usize) {
        match self {
            Scale::Small => (10, 200),
            Scale::Medium => (25, 500),
            Scale::Paper => (50, 1_000),
        }
    }

    /// Runs per topology for the Fig. 3 simulation curves.
    pub fn fig3_runs(self) -> usize {
        match self {
            Scale::Small => 10,
            Scale::Medium => 30,
            Scale::Paper => 30,
        }
    }

    /// Runs for the Fig. 1 probe-accounting averages.
    pub fn fig1_runs(self) -> usize {
        match self {
            Scale::Small => 30,
            Scale::Medium => 200,
            Scale::Paper => 1_000,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scale::Small => write!(f, "small"),
            Scale::Medium => write!(f, "medium"),
            Scale::Paper => write!(f, "paper"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_tokens() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn paper_scale_matches_paper() {
        assert_eq!(Scale::Paper.evaluation_scenarios(), 10_000);
        assert_eq!(Scale::Paper.fakeroute_shape(), (50, 1_000));
        assert_eq!(Scale::Paper.fig3_runs(), 30);
    }

    #[test]
    fn scales_ordered() {
        assert!(Scale::Small.evaluation_scenarios() < Scale::Medium.evaluation_scenarios());
        assert!(Scale::Medium.evaluation_scenarios() < Scale::Paper.evaluation_scenarios());
    }
}
