//! Route-change artifact detection and bounded re-trace recovery.
//!
//! MDA assumption (1) — "no routing changes during measurement" — is the
//! one assumption the stopping rules cannot police from inside a single
//! round: a route flap mid-trace leaves *committed* evidence (the
//! per-flow `(flow, TTL) → interface` bindings in [`Discovery`]) silently
//! contradicting the network. Viger et al. taxonomize the resulting
//! artifacts as loops, cycles and diamonds that were never really there.
//!
//! [`RouteAudit`] is the detector sessions run after their stopping rule
//! fires: it replays one probe per committed vertex (smallest recorded
//! flow, ascending TTL) and compares each firsthand answer against the
//! committed binding. The first contradiction is classified
//! ([`ArtifactKind`]), the suffix from the contradicted TTL is
//! invalidated ([`Discovery::invalidate_from`]), and the session re-enters
//! its MDA rounds at that TTL only — never from the top. Both the audit
//! probes and the number of re-entries are bounded by [`ReprobeBudget`];
//! exhaustion finalizes as the honest
//! [`PartialReason::RouteChanged`] instead of chasing a flapping route
//! forever.
//!
//! Contradictions of *adopted* stop-set predictions (secondhand evidence
//! merged by a single-flow trace, PR 7) are not route changes: they are
//! stale-stop hits — counted separately, repaired in place with the
//! firsthand truth, and queued for eviction from the shared stop set so a
//! flapped prefix cannot keep serving stale predictions.
//!
//! Determinism rule: every decision here — which probes the audit sends,
//! how a contradiction is classified, whether recovery re-enters or
//! finalizes partial — is a pure function of the session's own committed
//! state and the replies it receives. The sweep scheduler (any of the
//! four admission modes) decides only *when* audit rounds go on the
//! wire, never *what* they contain or conclude.

use crate::discovery::Discovery;
use crate::prober::{ProbeObservation, ProbeSpec};
use crate::trace::PartialReason;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// The Viger et al. artifact class assigned to a detected contradiction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// The same `(flow, TTL)` now resolves to a different interface than
    /// the committed evidence — the generic route-change signature.
    FlowHopMismatch,
    /// The contradicting responder already appears at a *smaller* TTL on
    /// the same flow's path: the classic post-change loop artifact.
    TtlLoop,
    /// A committed diamond branch was invalidated and never answered
    /// again anywhere on the re-traced path (counted at finalize).
    VanishedBranch,
}

/// Bounds on the recovery protocol: how many audit probes a session may
/// spend re-verifying committed evidence, and how many times it may
/// re-enter MDA rounds after a confirmed contradiction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReprobeBudget {
    /// Total audit probes across all audit passes.
    pub max_reprobes: u64,
    /// Total recovery re-entries before finalizing
    /// [`PartialReason::RouteChanged`].
    pub max_recoveries: u32,
}

impl Default for ReprobeBudget {
    fn default() -> Self {
        Self {
            max_reprobes: 256,
            max_recoveries: 4,
        }
    }
}

/// Per-session route-health counters, surfaced through
/// `TraceSession::route_health` and rolled into the sweep stats when the
/// session finalizes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteHealth {
    /// Firsthand `(flow, TTL)` contradictions classified as plain
    /// mismatches.
    pub flow_hop_mismatches: u64,
    /// Contradictions classified as TTL loops.
    pub ttl_loops: u64,
    /// Committed branches that vanished across a recovery.
    pub vanished_branches: u64,
    /// Recovery re-entries performed.
    pub recoveries: u32,
    /// Audit probes charged against the [`ReprobeBudget`].
    pub reprobes_sent: u64,
    /// Adopted stop-set predictions contradicted by firsthand replies.
    pub stale_stop_hits: u64,
    /// True if the session finalized as
    /// [`PartialReason::RouteChanged`].
    pub route_changed_partial: bool,
}

impl RouteHealth {
    /// Total artifacts detected, across all classes.
    pub fn artifacts(&self) -> u64 {
        self.flow_hop_mismatches + self.ttl_loops + self.vanished_branches
    }
}

/// What an audit pass concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditVerdict {
    /// Every answered audit probe matched its committed binding.
    Clean,
    /// A firsthand contradiction at `at_ttl`: the suffix was invalidated
    /// and the session should re-enter its rounds at that TTL.
    Recover {
        /// First contradicted TTL; everything at and beyond it was wiped.
        at_ttl: u8,
    },
    /// A contradiction was found but the recovery budget is spent: the
    /// session must finalize as [`PartialReason::RouteChanged`].
    Exhausted {
        /// The contradicted TTL; the suffix from here was invalidated.
        at_ttl: u8,
    },
}

/// The audit + recovery state machine a session drives after its own
/// stopping rule fires. See the module docs for the protocol.
#[derive(Debug, Clone)]
pub struct RouteAudit {
    budget: ReprobeBudget,
    reprobes_used: u64,
    recoveries_used: u32,
    health: RouteHealth,
    partial: Option<PartialReason>,
    /// `(ttl, interface)` pairs wiped by suffix invalidation, pending the
    /// vanished-branch check at finalize.
    pending_vanished: Vec<(u8, Ipv4Addr)>,
    /// Stop-set entries contradicted by firsthand evidence, to be evicted
    /// from the shared set via the session's contribution.
    evictions: Vec<(u8, Ipv4Addr)>,
    clean: bool,
    finalized: bool,
}

impl RouteAudit {
    /// A fresh audit under `budget`.
    pub fn new(budget: ReprobeBudget) -> Self {
        Self {
            budget,
            reprobes_used: 0,
            recoveries_used: 0,
            health: RouteHealth::default(),
            partial: None,
            pending_vanished: Vec::new(),
            evictions: Vec::new(),
            clean: false,
            finalized: false,
        }
    }

    /// Builds the next audit round: one probe per committed vertex
    /// (ascending TTL, each re-probed on the smallest flow recorded to
    /// reach it), truncated to the remaining reprobe budget. Returns
    /// `None` when the audit is over — the last pass came back clean, a
    /// partial was finalized, the budget is spent, or there is nothing
    /// committed to verify.
    pub fn start(&mut self, state: &Discovery) -> Option<Vec<ProbeSpec>> {
        if self.clean || self.partial.is_some() {
            return None;
        }
        let remaining = self.budget.max_reprobes.saturating_sub(self.reprobes_used);
        if remaining == 0 {
            return None;
        }
        let mut specs = Vec::new();
        'hops: for ttl in 1..=state.max_observed_ttl() {
            for vertex in state.vertices_at(ttl) {
                let Some(&flow) = state.flows_reaching(ttl, *vertex).iter().next() else {
                    continue;
                };
                specs.push(ProbeSpec::new(flow, ttl));
                if specs.len() as u64 >= remaining {
                    break 'hops;
                }
            }
        }
        if specs.is_empty() {
            self.clean = true;
            return None;
        }
        self.reprobes_used += specs.len() as u64;
        self.health.reprobes_sent = self.reprobes_used;
        Some(specs)
    }

    /// Digests one audit round. `adopted` maps TTLs to interfaces whose
    /// committed record came *secondhand* from a stop-set prediction
    /// (empty for sessions that never adopt). Unanswered probes are
    /// inconclusive, stale adopted entries are repaired in place, and the
    /// first firsthand contradiction classifies an artifact, invalidates
    /// the suffix and decides recovery-versus-partial.
    pub fn absorb(
        &mut self,
        specs: &[ProbeSpec],
        results: &[Option<ProbeObservation>],
        state: &mut Discovery,
        destination: Ipv4Addr,
        adopted: &BTreeMap<u8, Ipv4Addr>,
    ) -> AuditVerdict {
        for (spec, result) in specs.iter().zip(results) {
            let Some(obs) = result.as_ref() else {
                continue; // timeout: inconclusive, never an artifact
            };
            let Some(committed) = state.flow_vertex(spec.ttl, spec.flow) else {
                continue; // binding already invalidated earlier this pass
            };
            if obs.responder == committed {
                continue;
            }
            if adopted.get(&spec.ttl) == Some(&committed) {
                // A stale stop-set prediction, not a route change: replace
                // the secondhand record with the firsthand truth and queue
                // the shared-set eviction.
                self.health.stale_stop_hits += 1;
                self.evictions.push((spec.ttl, committed));
                state.remove_record(spec.flow, spec.ttl);
                if committed == destination {
                    state.invalidate_destination_ttl(spec.ttl);
                }
                state.record(spec.flow, spec.ttl, obs.responder, obs.at_destination);
                continue;
            }
            // Firsthand contradiction: a real route-change artifact.
            let is_loop = obs.responder != destination
                && (1..spec.ttl).any(|t| state.flow_vertex(t, spec.flow) == Some(obs.responder));
            if is_loop {
                self.health.ttl_loops += 1;
            } else {
                self.health.flow_hop_mismatches += 1;
            }
            // The contradicted interface is the mismatch artifact itself
            // (already counted above): evict its stale stop-set entry,
            // but only *collaterally* wiped branches can count as
            // vanished at finalize.
            let wiped = state.invalidate_from(spec.ttl);
            self.pending_vanished.extend(
                wiped
                    .into_iter()
                    .filter(|&(ttl, iface)| !(ttl == spec.ttl && iface == committed)),
            );
            if !self.evictions.contains(&(spec.ttl, committed)) {
                self.evictions.push((spec.ttl, committed));
            }
            state.record(spec.flow, spec.ttl, obs.responder, obs.at_destination);
            if self.recoveries_used < self.budget.max_recoveries {
                self.recoveries_used += 1;
                self.health.recoveries = self.recoveries_used;
                return AuditVerdict::Recover { at_ttl: spec.ttl };
            }
            self.partial = Some(PartialReason::RouteChanged { at_ttl: spec.ttl });
            self.health.route_changed_partial = true;
            return AuditVerdict::Exhausted { at_ttl: spec.ttl };
        }
        self.clean = true;
        AuditVerdict::Clean
    }

    /// Settles the vanished-branch count: every interface wiped by a
    /// suffix invalidation that never answered again anywhere on the
    /// re-traced path is a [`ArtifactKind::VanishedBranch`], and its
    /// stale `(ttl, interface)` stop-set entries are queued for eviction.
    /// Idempotent; call once the audit has concluded.
    pub fn finalize(&mut self, state: &Discovery) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        let mut vanished = BTreeSet::new();
        for &(ttl, addr) in &self.pending_vanished {
            if state.has_vertex(addr) {
                continue;
            }
            vanished.insert(addr);
            if !self.evictions.contains(&(ttl, addr)) {
                self.evictions.push((ttl, addr));
            }
        }
        self.health.vanished_branches += vanished.len() as u64;
    }

    /// The health counters as they stand.
    pub fn health(&self) -> RouteHealth {
        self.health
    }

    /// The partial reason, if recovery was exhausted.
    pub fn partial(&self) -> Option<PartialReason> {
        self.partial
    }

    /// Stop-set entries contradicted by firsthand evidence, in detection
    /// order.
    pub fn evictions(&self) -> &[(u8, Ipv4Addr)] {
        &self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpt_wire::FlowId;

    const DEST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 9);

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    fn obs(spec: ProbeSpec, responder: Ipv4Addr) -> ProbeObservation {
        ProbeObservation {
            flow: spec.flow,
            ttl: spec.ttl,
            responder,
            at_destination: responder == DEST,
            ip_id: 0,
            reply_ttl: 64,
            mpls: Vec::new(),
            timestamp: 0,
        }
    }

    fn committed_state() -> Discovery {
        let mut state = Discovery::new();
        state.record(FlowId(1), 1, ip(1), false);
        state.record(FlowId(1), 2, ip(2), false);
        state.record(FlowId(2), 2, ip(3), false);
        state.record(FlowId(1), 3, DEST, true);
        state
    }

    #[test]
    fn clean_pass_ends_the_audit() {
        let mut state = committed_state();
        let mut audit = RouteAudit::new(ReprobeBudget::default());
        let specs = audit.start(&state).expect("committed evidence to audit");
        assert_eq!(specs.len(), 4, "one audit probe per committed vertex");
        let results: Vec<_> = specs
            .iter()
            .map(|s| Some(obs(*s, state.flow_vertex(s.ttl, s.flow).unwrap())))
            .collect();
        let verdict = audit.absorb(&specs, &results, &mut state, DEST, &BTreeMap::new());
        assert_eq!(verdict, AuditVerdict::Clean);
        assert!(audit.start(&state).is_none(), "clean audit is over");
        audit.finalize(&state);
        assert_eq!(audit.health().artifacts(), 0);
        assert!(audit.partial().is_none());
    }

    #[test]
    fn firsthand_contradiction_recovers_at_the_contradicted_ttl() {
        let mut state = committed_state();
        let mut audit = RouteAudit::new(ReprobeBudget::default());
        let specs = audit.start(&state).unwrap();
        let results: Vec<_> = specs
            .iter()
            .map(|s| {
                let committed = state.flow_vertex(s.ttl, s.flow).unwrap();
                if s.ttl == 2 && s.flow == FlowId(1) {
                    Some(obs(*s, ip(7))) // route changed under flow 1
                } else {
                    Some(obs(*s, committed))
                }
            })
            .collect();
        let verdict = audit.absorb(&specs, &results, &mut state, DEST, &BTreeMap::new());
        assert_eq!(verdict, AuditVerdict::Recover { at_ttl: 2 });
        assert_eq!(audit.health().flow_hop_mismatches, 1);
        assert_eq!(audit.health().recoveries, 1);
        // Suffix invalidated, fresh firsthand evidence recorded at TTL 2.
        assert_eq!(state.flow_vertex(2, FlowId(1)), Some(ip(7)));
        assert_eq!(state.flow_vertex(3, FlowId(1)), None);
        assert_eq!(state.destination_ttl(), None);
        // The prefix survives untouched.
        assert_eq!(state.flow_vertex(1, FlowId(1)), Some(ip(1)));
    }

    #[test]
    fn loop_shaped_contradictions_classify_as_ttl_loops() {
        let mut state = committed_state();
        let mut audit = RouteAudit::new(ReprobeBudget::default());
        let specs = audit.start(&state).unwrap();
        let results: Vec<_> = specs
            .iter()
            .map(|s| {
                let committed = state.flow_vertex(s.ttl, s.flow).unwrap();
                if s.ttl == 2 && s.flow == FlowId(1) {
                    Some(obs(*s, ip(1))) // the TTL-1 router answers again
                } else {
                    Some(obs(*s, committed))
                }
            })
            .collect();
        audit.absorb(&specs, &results, &mut state, DEST, &BTreeMap::new());
        assert_eq!(audit.health().ttl_loops, 1);
        assert_eq!(audit.health().flow_hop_mismatches, 0);
    }

    #[test]
    fn recovery_exhaustion_finalizes_route_changed_partial() {
        let mut state = committed_state();
        let mut audit = RouteAudit::new(ReprobeBudget {
            max_reprobes: 64,
            max_recoveries: 0,
        });
        let specs = audit.start(&state).unwrap();
        let results: Vec<_> = specs
            .iter()
            .map(|s| {
                let committed = state.flow_vertex(s.ttl, s.flow).unwrap();
                if s.ttl == 2 && s.flow == FlowId(1) {
                    Some(obs(*s, ip(7)))
                } else {
                    Some(obs(*s, committed))
                }
            })
            .collect();
        let verdict = audit.absorb(&specs, &results, &mut state, DEST, &BTreeMap::new());
        assert_eq!(verdict, AuditVerdict::Exhausted { at_ttl: 2 });
        assert_eq!(
            audit.partial(),
            Some(PartialReason::RouteChanged { at_ttl: 2 })
        );
        assert!(audit.health().route_changed_partial);
        assert!(audit.start(&state).is_none(), "partial audit is over");
    }

    #[test]
    fn stale_adopted_entries_repair_in_place_without_recovery() {
        let mut state = committed_state();
        let mut adopted = BTreeMap::new();
        adopted.insert(2u8, ip(2)); // TTL-2 binding came from the stop set
        let mut audit = RouteAudit::new(ReprobeBudget::default());
        let specs = audit.start(&state).unwrap();
        let results: Vec<_> = specs
            .iter()
            .map(|s| {
                let committed = state.flow_vertex(s.ttl, s.flow).unwrap();
                if s.ttl == 2 && s.flow == FlowId(1) {
                    Some(obs(*s, ip(8))) // firsthand truth disagrees
                } else {
                    Some(obs(*s, committed))
                }
            })
            .collect();
        let verdict = audit.absorb(&specs, &results, &mut state, DEST, &adopted);
        assert_eq!(
            verdict,
            AuditVerdict::Clean,
            "stale hit is not a route change"
        );
        assert_eq!(audit.health().stale_stop_hits, 1);
        assert_eq!(audit.health().artifacts(), 0);
        assert_eq!(audit.evictions(), &[(2, ip(2))]);
        // Repaired in place: the firsthand truth replaces the stale record
        // and the rest of the trace survives.
        assert_eq!(state.flow_vertex(2, FlowId(1)), Some(ip(8)));
        assert_eq!(state.flow_vertex(3, FlowId(1)), Some(DEST));
    }

    #[test]
    fn vanished_branches_count_at_finalize() {
        let mut state = committed_state();
        let mut audit = RouteAudit::new(ReprobeBudget::default());
        let specs = audit.start(&state).unwrap();
        let results: Vec<_> = specs
            .iter()
            .map(|s| {
                let committed = state.flow_vertex(s.ttl, s.flow).unwrap();
                if s.ttl == 2 && s.flow == FlowId(1) {
                    Some(obs(*s, ip(7)))
                } else {
                    Some(obs(*s, committed))
                }
            })
            .collect();
        audit.absorb(&specs, &results, &mut state, DEST, &BTreeMap::new());
        // Recovery re-discovers TTL 3 but ip(3) (the other TTL-2 branch)
        // never answers again.
        state.record(FlowId(1), 3, DEST, true);
        audit.finalize(&state);
        assert_eq!(audit.health().vanished_branches, 1);
        assert!(audit.evictions().contains(&(2, ip(3))));
        audit.finalize(&state); // idempotent
        assert_eq!(audit.health().vanished_branches, 1);
    }

    #[test]
    fn reprobe_budget_truncates_audit_rounds() {
        let state = committed_state();
        let mut audit = RouteAudit::new(ReprobeBudget {
            max_reprobes: 2,
            max_recoveries: 4,
        });
        let specs = audit.start(&state).unwrap();
        assert_eq!(specs.len(), 2, "round truncated to remaining budget");
        assert!(
            audit.start(&state).is_none(),
            "budget spent: no further audit rounds"
        );
    }
}
