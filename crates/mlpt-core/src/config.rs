//! Shared trace configuration.

use crate::artifact::ReprobeBudget;
use crate::stopping::StoppingPoints;
use serde::{Deserialize, Serialize};

/// Configuration shared by all tracing algorithms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Stopping points n_k controlling per-hop/per-vertex probing.
    pub stopping: StoppingPoints,
    /// Largest TTL probed before giving up on reaching the destination.
    pub max_ttl: u8,
    /// Hard cap on probes sent by one trace: a run that hits it reports
    /// `budget_exhausted` rather than looping forever (e.g. when node
    /// control hunts flows through a vertex that per-packet balancing
    /// keeps moving).
    pub probe_budget: u64,
    /// Cap on probes spent hunting flow IDs for one vertex during a single
    /// node-control episode.
    pub node_control_attempts: u64,
    /// MDA-Lite meshing-test effort φ ≥ 2 (Sec. 2.3.2): flow IDs generated
    /// per vertex when testing a hop pair for meshing.
    pub phi: u32,
    /// Seed for the trace's own randomness (flow ID draws).
    pub seed: u64,
    /// Route-change audit budget. `Some` arms the post-stopping-rule
    /// audit/recovery protocol ([`crate::artifact::RouteAudit`]); `None`
    /// (the default) keeps the classic trust-the-evidence behaviour.
    pub reprobe: Option<ReprobeBudget>,
}

impl TraceConfig {
    /// Defaults: 95 % stopping points, φ = 2.
    pub fn new(seed: u64) -> Self {
        Self {
            stopping: StoppingPoints::mda95(),
            max_ttl: 40,
            probe_budget: 1_000_000,
            node_control_attempts: 50_000,
            phi: 2,
            seed,
            reprobe: None,
        }
    }

    /// Arms the route-change audit with `budget`.
    pub fn with_reprobe(mut self, budget: ReprobeBudget) -> Self {
        self.reprobe = Some(budget);
        self
    }

    /// Replaces the stopping points.
    pub fn with_stopping(mut self, stopping: StoppingPoints) -> Self {
        self.stopping = stopping;
        self
    }

    /// Sets the meshing-test effort φ.
    pub fn with_phi(mut self, phi: u32) -> Self {
        assert!(phi >= 2, "the meshing test requires phi >= 2");
        self.phi = phi;
        self
    }

    /// Sets the probe budget.
    pub fn with_probe_budget(mut self, budget: u64) -> Self {
        self.probe_budget = budget;
        self
    }

    /// The default mid-path start TTL for Doubletree-style stop-set
    /// probing when no destination-distance evidence exists yet: a
    /// fifth of the TTL horizon (8 under the default `max_ttl` of 40,
    /// matching the near-source prefix lengths Donnet et al. report),
    /// never below 1.
    pub fn default_start_ttl(&self) -> u8 {
        (self.max_ttl / 5).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = TraceConfig::new(1);
        assert_eq!(c.phi, 2);
        assert_eq!(c.stopping.n(1), 6);
        assert!(c.probe_budget > 10_000);
        assert_eq!(c.default_start_ttl(), 8);
    }

    #[test]
    fn start_ttl_never_below_one() {
        let mut c = TraceConfig::new(1);
        c.max_ttl = 3;
        assert_eq!(c.default_start_ttl(), 1);
    }

    #[test]
    #[should_panic(expected = "phi >= 2")]
    fn phi_lower_bound() {
        let _ = TraceConfig::new(1).with_phi(1);
    }
}
