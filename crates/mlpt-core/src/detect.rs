//! Per-packet load-balancer detection.
//!
//! The MDA model assumes there is no per-packet load balancing
//! (assumption 2, Sec. 2.1); Augustin et al.'s 2011 survey found it rare,
//! and the paper omits the classic per-packet checks from both MDA and
//! MDA-Lite. This module restores the check as an optional pre-flight: a
//! hop is per-packet balanced exactly when repeating the *same* flow
//! identifier yields different responders, which per-flow balancing can
//! never do.

use crate::prober::Prober;
use mlpt_wire::FlowId;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Result of a per-packet check at one TTL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerPacketReport {
    /// TTL checked.
    pub ttl: u8,
    /// Distinct responders seen for the constant flow.
    pub responders: BTreeSet<Ipv4Addr>,
    /// Probes sent by the check.
    pub probes_sent: u64,
}

impl PerPacketReport {
    /// True if the hop balances per packet (flow identity was violated).
    pub fn is_per_packet(&self) -> bool {
        self.responders.len() > 1
    }
}

/// Sends `samples` probes with the same flow at `ttl`; flow-stable hops
/// answer from one interface every time.
pub fn check_per_packet<P: Prober>(
    prober: &mut P,
    flow: FlowId,
    ttl: u8,
    samples: u32,
) -> PerPacketReport {
    let mut responders = BTreeSet::new();
    let mut sent = 0u64;
    for _ in 0..samples {
        sent += 1;
        if let Some(obs) = prober.probe(flow, ttl) {
            responders.insert(obs.responder);
        }
    }
    PerPacketReport {
        ttl,
        responders,
        probes_sent: sent,
    }
}

/// Checks every TTL up to `max_ttl` (or until the destination answers);
/// returns the TTLs where per-packet balancing was detected.
pub fn scan_per_packet<P: Prober>(
    prober: &mut P,
    flow: FlowId,
    max_ttl: u8,
    samples: u32,
) -> Vec<u8> {
    let mut detected = Vec::new();
    for ttl in 1..=max_ttl {
        let report = check_per_packet(prober, flow, ttl, samples);
        if report.is_per_packet() {
            detected.push(ttl);
        }
        // Stop at the destination.
        if let Some(obs) = prober.probe(flow, ttl) {
            if obs.at_destination {
                break;
            }
        }
    }
    detected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::TransportProber;
    use mlpt_sim::{BalanceMode, SimNetwork};
    use mlpt_topo::canonical;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    #[test]
    fn per_flow_network_not_flagged() {
        let topo = canonical::max_length_2();
        let net = SimNetwork::new(topo.clone(), 5);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let report = check_per_packet(&mut prober, FlowId(1), 2, 16);
        assert!(!report.is_per_packet());
        assert_eq!(report.probes_sent, 16);
    }

    #[test]
    fn per_packet_network_flagged() {
        let topo = canonical::max_length_2();
        let net = SimNetwork::builder(topo.clone())
            .mode(BalanceMode::PerPacket)
            .seed(5)
            .build();
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let report = check_per_packet(&mut prober, FlowId(1), 2, 16);
        assert!(report.is_per_packet());
    }

    #[test]
    fn scan_reports_balanced_ttls_only() {
        let topo = canonical::max_length_2();
        let net = SimNetwork::builder(topo.clone())
            .mode(BalanceMode::PerPacket)
            .seed(5)
            .build();
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let detected = scan_per_packet(&mut prober, FlowId(1), 3, 16);
        // Only the 28-wide middle hop (ttl 2) can vary.
        assert_eq!(detected, vec![2]);
    }
}
