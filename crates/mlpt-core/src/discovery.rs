//! Shared discovery state: what a trace has learned so far.
//!
//! Both the MDA and the MDA-Lite accumulate the same kind of evidence —
//! "flow f probed at TTL t was answered by interface a" — and derive
//! everything else from it: the vertices at each hop, the flow→vertex maps
//! node control relies on, and the edges (a flow observed at consecutive
//! TTLs witnesses an edge between the two responding interfaces).
//! [`Discovery`] is that evidence base; the algorithms differ only in how
//! they decide which probe to send next.

use mlpt_wire::FlowId;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Evidence accumulated by a trace in progress.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Discovery {
    /// Per hop index (ttl - 1): vertex → flows observed reaching it.
    hops: Vec<BTreeMap<Ipv4Addr, BTreeSet<FlowId>>>,
    /// Discovery order of vertices per hop (stable iteration for
    /// deterministic algorithms).
    hop_order: Vec<Vec<Ipv4Addr>>,
    /// Flow → (ttl → responder): each flow's observed path. Ordered so
    /// that iteration (edge derivation, suffix invalidation) visits
    /// flows in a stable order — determinism rules 3 and 5 (MLPT-W003).
    flow_paths: BTreeMap<FlowId, BTreeMap<u8, Ipv4Addr>>,
    /// Flows probed at each ttl (whether or not answered). Ordered for
    /// the same reason as `flow_paths`.
    probed_at: BTreeMap<u8, BTreeSet<FlowId>>,
    /// Probes sent per hop index (for the paper's per-hop accounting).
    probes_per_hop: Vec<u64>,
    /// Every flow ID ever used.
    used_flows: BTreeSet<FlowId>,
    /// Smallest TTL at which the destination answered.
    destination_ttl: Option<u8>,
}

impl Discovery {
    /// Fresh, empty state.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_hop(&mut self, index: usize) {
        while self.hops.len() <= index {
            self.hops.push(BTreeMap::new());
            self.hop_order.push(Vec::new());
            self.probes_per_hop.push(0);
        }
    }

    /// Notes that a probe was *sent* at `ttl` with `flow` (counted even if
    /// it goes unanswered).
    pub fn note_probe_sent(&mut self, flow: FlowId, ttl: u8) {
        assert!(ttl >= 1);
        self.ensure_hop(usize::from(ttl - 1));
        self.probes_per_hop[usize::from(ttl - 1)] += 1;
        self.probed_at.entry(ttl).or_default().insert(flow);
        self.used_flows.insert(flow);
    }

    /// Notes a whole round of probes as sent (the batched analogue of
    /// [`Discovery::note_probe_sent`]).
    pub fn note_probes_sent(&mut self, specs: &[crate::prober::ProbeSpec]) {
        for spec in specs {
            self.note_probe_sent(spec.flow, spec.ttl);
        }
    }

    /// Records a whole round's observations, in spec order (the batched
    /// analogue of [`Discovery::record`]; unanswered slots are skipped).
    pub fn record_batch(
        &mut self,
        specs: &[crate::prober::ProbeSpec],
        results: &[Option<crate::prober::ProbeObservation>],
    ) {
        debug_assert_eq!(specs.len(), results.len());
        for (spec, result) in specs.iter().zip(results) {
            if let Some(obs) = result {
                self.record(spec.flow, spec.ttl, obs.responder, obs.at_destination);
            }
        }
    }

    /// Records a successful observation.
    pub fn record(&mut self, flow: FlowId, ttl: u8, responder: Ipv4Addr, at_destination: bool) {
        assert!(ttl >= 1);
        let h = usize::from(ttl - 1);
        self.ensure_hop(h);
        let entry = self.hops[h].entry(responder).or_insert_with(|| {
            self.hop_order[h].push(responder);
            BTreeSet::new()
        });
        entry.insert(flow);
        self.flow_paths
            .entry(flow)
            .or_default()
            .insert(ttl, responder);
        if at_destination {
            self.destination_ttl = Some(match self.destination_ttl {
                Some(t) => t.min(ttl),
                None => ttl,
            });
        }
    }

    /// Route-change recovery: wipes every committed fact at or beyond
    /// `ttl` — vertices, flow bindings, probe accounting and (if it fell
    /// in the wiped suffix) the destination TTL — so the stopping rules
    /// see the suffix as virgin territory and re-probe it from scratch.
    /// `used_flows` survives: the flow allocator must never re-issue an
    /// identifier just because its evidence was invalidated. Returns the
    /// wiped `(ttl, vertex)` pairs in hop/discovery order, for
    /// vanished-branch accounting.
    pub fn invalidate_from(&mut self, ttl: u8) -> Vec<(u8, Ipv4Addr)> {
        assert!(ttl >= 1);
        let h = usize::from(ttl - 1);
        let mut wiped = Vec::new();
        for (idx, order) in self.hop_order.iter().enumerate().skip(h) {
            for &vertex in order {
                wiped.push(((idx + 1) as u8, vertex));
            }
        }
        for idx in h..self.hops.len() {
            self.hops[idx].clear();
            self.hop_order[idx].clear();
            self.probes_per_hop[idx] = 0;
        }
        for path in self.flow_paths.values_mut() {
            let _ = path.split_off(&ttl);
        }
        self.flow_paths.retain(|_, path| !path.is_empty());
        self.probed_at.retain(|&t, _| t < ttl);
        self.invalidate_destination_ttl(ttl);
        wiped
    }

    /// Removes one committed `(flow, ttl)` binding, dropping the vertex
    /// entirely if no other flow witnesses it. Returns the interface the
    /// binding pointed at. Used to repair stale stop-set adoptions in
    /// place without invalidating the whole suffix.
    pub fn remove_record(&mut self, flow: FlowId, ttl: u8) -> Option<Ipv4Addr> {
        let h = usize::from(ttl.saturating_sub(1));
        let addr = self
            .flow_paths
            .get_mut(&flow)
            .and_then(|p| p.remove(&ttl))?;
        self.flow_paths.retain(|_, path| !path.is_empty());
        if let Some(map) = self.hops.get_mut(h) {
            if let Some(flows) = map.get_mut(&addr) {
                flows.remove(&flow);
                if flows.is_empty() {
                    map.remove(&addr);
                    if let Some(order) = self.hop_order.get_mut(h) {
                        order.retain(|&v| v != addr);
                    }
                }
            }
        }
        Some(addr)
    }

    /// Forgets the destination TTL if it lies at or beyond `ttl` (the
    /// evidence that placed it there was invalidated).
    pub fn invalidate_destination_ttl(&mut self, ttl: u8) {
        if self.destination_ttl.is_some_and(|t| t >= ttl) {
            self.destination_ttl = None;
        }
    }

    /// True if `addr` is currently recorded as a vertex at any hop.
    pub fn has_vertex(&self, addr: Ipv4Addr) -> bool {
        self.hops.iter().any(|m| m.contains_key(&addr))
    }

    /// Number of hops with any recorded state.
    pub fn num_hops(&self) -> usize {
        self.hops.len()
    }

    /// Vertices discovered at `ttl`, in discovery order.
    pub fn vertices_at(&self, ttl: u8) -> &[Ipv4Addr] {
        let h = usize::from(ttl.saturating_sub(1));
        self.hop_order.get(h).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Flows observed reaching `vertex` at `ttl`.
    pub fn flows_reaching(&self, ttl: u8, vertex: Ipv4Addr) -> BTreeSet<FlowId> {
        let h = usize::from(ttl.saturating_sub(1));
        self.hops
            .get(h)
            .and_then(|m| m.get(&vertex))
            .cloned()
            .unwrap_or_default()
    }

    /// The vertex `flow` was observed to reach at `ttl`, if known.
    pub fn flow_vertex(&self, ttl: u8, flow: FlowId) -> Option<Ipv4Addr> {
        self.flow_paths
            .get(&flow)
            .and_then(|p| p.get(&ttl))
            .copied()
    }

    /// True if `flow` was already probed at `ttl`.
    pub fn flow_probed_at(&self, ttl: u8, flow: FlowId) -> bool {
        self.probed_at.get(&ttl).is_some_and(|s| s.contains(&flow))
    }

    /// Probes sent at `ttl` so far.
    pub fn probes_at(&self, ttl: u8) -> u64 {
        let h = usize::from(ttl.saturating_sub(1));
        self.probes_per_hop.get(h).copied().unwrap_or(0)
    }

    /// Total probes noted across hops.
    pub fn total_probes(&self) -> u64 {
        self.probes_per_hop.iter().sum()
    }

    /// Smallest TTL where the destination answered, if reached.
    pub fn destination_ttl(&self) -> Option<u8> {
        self.destination_ttl
    }

    /// Largest TTL at which any vertex was recorded (0 if none).
    pub fn max_observed_ttl(&self) -> u8 {
        for (h, order) in self.hop_order.iter().enumerate().rev() {
            if !order.is_empty() {
                return (h + 1) as u8;
            }
        }
        0
    }

    /// All flows ever used.
    pub fn used_flows(&self) -> &BTreeSet<FlowId> {
        &self.used_flows
    }

    /// Node-control accounting: over flows *probed* at `ttl` whose vertex
    /// at `ttl - 1` is `parent`, returns (probes sent, distinct successors
    /// observed). This is the per-vertex state the MDA's stopping rule
    /// applies to.
    pub fn probes_via(&self, parent: Ipv4Addr, ttl: u8) -> (u64, BTreeSet<Ipv4Addr>) {
        assert!(ttl >= 2, "probes_via needs a previous hop");
        let mut sent = 0u64;
        let mut successors = BTreeSet::new();
        if let Some(probed) = self.probed_at.get(&ttl) {
            for &f in probed {
                if self.flow_vertex(ttl - 1, f) == Some(parent) {
                    sent += 1;
                    if let Some(v) = self.flow_vertex(ttl, f) {
                        successors.insert(v);
                    }
                }
            }
        }
        (sent, successors)
    }

    /// Flows probed at `ttl` (answered or not).
    pub fn probed_flows_at(&self, ttl: u8) -> BTreeSet<FlowId> {
        self.probed_at.get(&ttl).cloned().unwrap_or_default()
    }

    /// Successor map between `ttl` and `ttl + 1` derived from flows
    /// observed at both: vertex at `ttl` → set of vertices at `ttl + 1`.
    pub fn edges_from(&self, ttl: u8) -> BTreeMap<Ipv4Addr, BTreeSet<Ipv4Addr>> {
        let mut edges: BTreeMap<Ipv4Addr, BTreeSet<Ipv4Addr>> = BTreeMap::new();
        for path in self.flow_paths.values() {
            if let (Some(&from), Some(&to)) = (path.get(&ttl), path.get(&(ttl + 1))) {
                edges.entry(from).or_default().insert(to);
            }
        }
        edges
    }

    /// Predecessor map between `ttl` and `ttl + 1`: vertex at `ttl + 1` →
    /// set of vertices at `ttl`.
    pub fn reverse_edges_from(&self, ttl: u8) -> BTreeMap<Ipv4Addr, BTreeSet<Ipv4Addr>> {
        let mut edges: BTreeMap<Ipv4Addr, BTreeSet<Ipv4Addr>> = BTreeMap::new();
        for path in self.flow_paths.values() {
            if let (Some(&from), Some(&to)) = (path.get(&ttl), path.get(&(ttl + 1))) {
                edges.entry(to).or_default().insert(from);
            }
        }
        edges
    }

    /// Total distinct edges witnessed across all hop pairs.
    pub fn total_edges(&self) -> usize {
        let mut count = 0usize;
        let max_ttl = self.hops.len() as u8;
        for ttl in 1..max_ttl {
            count += self
                .edges_from(ttl)
                .values()
                .map(BTreeSet::len)
                .sum::<usize>();
        }
        count
    }

    /// Total vertices discovered across hops (destination and duplicates
    /// at different hops each count as topological vertices).
    pub fn total_vertices(&self) -> usize {
        self.hop_order.iter().map(Vec::len).sum()
    }

    /// Flows observed reaching any vertex at `ttl`, in discovery order of
    /// their vertices — the MDA-Lite's preferred reuse order ("one flow
    /// identifier from each of the vertices … then additional
    /// previously-used flow identifiers").
    pub fn reuse_queue(&self, ttl: u8) -> Vec<FlowId> {
        let mut queue = Vec::new();
        let mut enqueued: BTreeSet<FlowId> = BTreeSet::new();
        let vertices = self.vertices_at(ttl);
        // Round-robin across vertices: first one flow per vertex, then
        // seconds, and so on.
        let per_vertex: Vec<Vec<FlowId>> = vertices
            .iter()
            .map(|&v| self.flows_reaching(ttl, v).into_iter().collect())
            .collect();
        let max_len = per_vertex.iter().map(Vec::len).max().unwrap_or(0);
        for round in 0..max_len {
            for flows in &per_vertex {
                if let Some(&f) = flows.get(round) {
                    if enqueued.insert(f) {
                        queue.push(f);
                    }
                }
            }
        }
        queue
    }
}

/// Allocator handing out previously unused flow identifiers, seeded and
/// deterministic.
#[derive(Debug)]
pub struct FlowAllocator {
    rng: ChaCha8Rng,
    handed_out: BTreeSet<FlowId>,
}

impl FlowAllocator {
    /// Creates an allocator with its own stream of randomness.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x5EED_F10E_5EED_F10E),
            handed_out: BTreeSet::new(),
        }
    }

    /// Draws a fresh flow ID never handed out before.
    ///
    /// # Panics
    /// Panics if the 16-bit flow space is exhausted (65 536 flows —
    /// far beyond any trace's needs; a trace that hungry is a bug).
    pub fn fresh(&mut self) -> FlowId {
        self.try_fresh().expect("flow space exhausted")
    }

    /// Draws a fresh flow ID, or `None` once the 16-bit flow space is
    /// exhausted. Sessions whose flow hunts can run long (node control
    /// against a route that keeps changing) use this to give up on the
    /// hunt honestly instead of panicking mid-sweep.
    pub fn try_fresh(&mut self) -> Option<FlowId> {
        if self.handed_out.len() >= usize::from(u16::MAX) {
            return None;
        }
        loop {
            let candidate = FlowId(self.rng.gen());
            if self.handed_out.insert(candidate) {
                return Some(candidate);
            }
        }
    }

    /// Marks externally used flows as taken (when resuming from existing
    /// state).
    pub fn reserve<I: IntoIterator<Item = FlowId>>(&mut self, flows: I) {
        self.handed_out.extend(flows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpt_topo::graph::addr;

    #[test]
    fn record_and_query() {
        let mut d = Discovery::new();
        d.note_probe_sent(FlowId(1), 1);
        d.record(FlowId(1), 1, addr(0, 0), false);
        d.note_probe_sent(FlowId(2), 1);
        d.record(FlowId(2), 1, addr(0, 0), false);
        assert_eq!(d.vertices_at(1), &[addr(0, 0)]);
        assert_eq!(d.flows_reaching(1, addr(0, 0)).len(), 2);
        assert_eq!(d.probes_at(1), 2);
        assert_eq!(d.flow_vertex(1, FlowId(1)), Some(addr(0, 0)));
        assert_eq!(d.flow_vertex(2, FlowId(1)), None);
        assert!(d.flow_probed_at(1, FlowId(1)));
        assert!(!d.flow_probed_at(2, FlowId(1)));
    }

    #[test]
    fn edges_from_flow_paths() {
        let mut d = Discovery::new();
        for (flow, v1, v2) in [
            (FlowId(1), addr(1, 0), addr(2, 0)),
            (FlowId(2), addr(1, 0), addr(2, 1)),
            (FlowId(3), addr(1, 1), addr(2, 1)),
        ] {
            d.record(flow, 1, v1, false);
            d.record(flow, 2, v2, false);
        }
        let edges = d.edges_from(1);
        assert_eq!(edges[&addr(1, 0)], BTreeSet::from([addr(2, 0), addr(2, 1)]));
        assert_eq!(edges[&addr(1, 1)], BTreeSet::from([addr(2, 1)]));
        let rev = d.reverse_edges_from(1);
        assert_eq!(rev[&addr(2, 1)], BTreeSet::from([addr(1, 0), addr(1, 1)]));
        assert_eq!(d.total_edges(), 3);
        assert_eq!(d.total_vertices(), 4);
    }

    #[test]
    fn destination_ttl_minimum() {
        let mut d = Discovery::new();
        d.record(FlowId(1), 5, addr(5, 0), true);
        d.record(FlowId(2), 4, addr(5, 0), true);
        assert_eq!(d.destination_ttl(), Some(4));
    }

    #[test]
    fn reuse_queue_round_robin() {
        let mut d = Discovery::new();
        // Vertex A discovered first with flows 1, 3; vertex B with flow 2.
        d.record(FlowId(1), 2, addr(1, 0), false);
        d.record(FlowId(2), 2, addr(1, 1), false);
        d.record(FlowId(3), 2, addr(1, 0), false);
        let queue = d.reuse_queue(2);
        // One per vertex first (A's lowest flow, then B's), then the rest.
        assert_eq!(queue, vec![FlowId(1), FlowId(2), FlowId(3)]);
    }

    #[test]
    fn allocator_unique_and_deterministic() {
        let mut a = FlowAllocator::new(9);
        let mut b = FlowAllocator::new(9);
        let fa: Vec<FlowId> = (0..100).map(|_| a.fresh()).collect();
        let fb: Vec<FlowId> = (0..100).map(|_| b.fresh()).collect();
        assert_eq!(fa, fb);
        let unique: BTreeSet<_> = fa.iter().collect();
        assert_eq!(unique.len(), fa.len());
    }

    #[test]
    fn allocator_respects_reservations() {
        let mut a = FlowAllocator::new(1);
        let f = FlowId(12345);
        a.reserve([f]);
        for _ in 0..1000 {
            assert_ne!(a.fresh(), f);
        }
    }

    #[test]
    fn invalidate_from_wipes_the_suffix_only() {
        let mut d = Discovery::new();
        for ttl in 1..=4u8 {
            d.note_probe_sent(FlowId(1), ttl);
            d.record(FlowId(1), ttl, addr(ttl.into(), 0), ttl == 4);
        }
        d.note_probe_sent(FlowId(2), 3);
        d.record(FlowId(2), 3, addr(3, 1), false);
        let wiped = d.invalidate_from(3);
        assert_eq!(
            wiped,
            vec![(3, addr(3, 0)), (3, addr(3, 1)), (4, addr(4, 0))]
        );
        // The prefix survives intact.
        assert_eq!(d.flow_vertex(2, FlowId(1)), Some(addr(2, 0)));
        assert_eq!(d.probes_at(2), 1);
        assert!(d.flow_probed_at(2, FlowId(1)));
        // The suffix is virgin again: no vertices, no probe accounting,
        // no probed-flow memory, no destination TTL.
        assert!(d.vertices_at(3).is_empty());
        assert!(d.vertices_at(4).is_empty());
        assert_eq!(d.probes_at(3), 0);
        assert!(!d.flow_probed_at(3, FlowId(1)));
        assert_eq!(d.destination_ttl(), None);
        assert_eq!(d.max_observed_ttl(), 2);
        // The flow allocator's exclusion set survives invalidation.
        assert!(d.used_flows().contains(&FlowId(2)));
    }

    #[test]
    fn remove_record_drops_unwitnessed_vertices() {
        let mut d = Discovery::new();
        d.record(FlowId(1), 2, addr(1, 0), false);
        d.record(FlowId(2), 2, addr(1, 0), false);
        assert_eq!(d.remove_record(FlowId(1), 2), Some(addr(1, 0)));
        // Another flow still witnesses the vertex: it survives.
        assert_eq!(d.vertices_at(2), &[addr(1, 0)]);
        assert_eq!(d.remove_record(FlowId(2), 2), Some(addr(1, 0)));
        assert!(d.vertices_at(2).is_empty());
        assert!(!d.has_vertex(addr(1, 0)));
        assert_eq!(d.remove_record(FlowId(2), 2), None);
    }

    #[test]
    fn probes_counted_even_unanswered() {
        let mut d = Discovery::new();
        d.note_probe_sent(FlowId(9), 3);
        assert_eq!(d.probes_at(3), 1);
        assert!(d.vertices_at(3).is_empty());
        assert_eq!(d.total_probes(), 1);
    }
}
