//! The concurrent sweep engine: many sans-IO sessions over one
//! transport, with streaming admission and an adaptive in-flight budget.
//!
//! Large-scale probing is dominated by how many destinations can be kept
//! in flight at once (Donnet et al., "Efficient Route Tracing from a
//! Single Source"). The [`SweepEngine`] exploits the sans-IO split of
//! [`crate::session`]: it holds a table of live [`ProbeSession`]s — one
//! per destination — and each dispatch cycle
//!
//! 1. **admits** new sessions from the caller's stream while the pending
//!    probe backlog sits below the in-flight budget
//!    ([`Admission::Streaming`]), so cross-destination batches stay full
//!    across arbitrarily long destination lists instead of shrinking into
//!    a tail of tiny dispatches as a fixed table drains;
//! 2. **gathers** every live session's pending round into one large
//!    cross-destination [`PacketBatch`], bounded by the in-flight token
//!    budget, with tokens split fairly across sessions (a quota pass
//!    followed by a greedy pass) so no one lane hogs a reduced budget.
//!    Requests are typed ([`ProbeRequest`]): TTL-limited UDP probes
//!    towards the session's destination and ICMP Echo Requests aimed at
//!    individual interfaces share one batch;
//! 3. crosses the shared [`SplitTransport`] **once** — every probe
//!    carries a virtual-clock deadline drawn from the sweep's
//!    [`RetryPolicy`] (see [`crate::pending`]), and a probe whose reply
//!    misses its deadline resolves as a typed timeout instead of
//!    blocking the sweep;
//! 4. **demultiplexes** replies back to their sessions by kind-tagged
//!    keys — ICMP errors by the destination/sequence recovered from the
//!    quoted probe ([`mlpt_wire::probe::ReplyPacket`]), Echo Replies by
//!    the responding interface and the echoed ICMP sequence — not by
//!    slot position, so interleaved, lost and malformed replies are all
//!    handled;
//! 5. **adapts** the budget: an AIMD controller ([`AdaptiveBudget`])
//!    ramps the budget up additively while replies are clean and backs
//!    off multiplicatively when a cycle starts losing replies (loss or
//!    ICMP rate limiting — Viger et al. document why over-probing
//!    rate-limited routers corrupts results), with per-destination-lane
//!    allowances so one sick lane can neither starve the sweep nor keep
//!    burning probes into a rate limiter;
//! 6. hands completed rounds back to their sessions, which advance their
//!    state machines and produce the next rounds.
//!
//! Per destination, the engine emits the *identical* packet sequence a
//! dedicated [`crate::prober::TransportProber`] would (same sequence
//! numbers, same retry waves), so a sweep's per-destination results are
//! bit-identical to running each session sequentially on its own — no
//! matter how admission interleaves or the budget slices rounds. The
//! property tests in `tests/sweep_equivalence.rs` (traces) and
//! `tests/alias_equivalence.rs` (alias-resolution rounds, where the
//! interleaved IP-ID series are semantically load-bearing for the MBT)
//! enforce exactly that across admission modes, budgets and fault plans.
//!
//! Malformed or mismatched replies never panic a sweep: the demux path
//! is unwrap-free, counting anomalies in [`SweepStats`] and treating the
//! affected probes as lost (which the retry machinery then handles).
//!
//! # Retry-wave accounting
//!
//! Every dispatched probe resolves exactly once, into exactly one of
//! four buckets, giving the sweep-level invariant
//!
//! ```text
//! probes_timed_out + replies_delivered
//!     + malformed_replies + mismatched_replies == probes_sent
//! ```
//!
//! (modulo the pathological 16-bit sequence collision, which charges an
//! extra `mismatched_replies` at dispatch time; see
//! [`SweepStats::mismatched_replies`]). The split transport guarantees
//! one reply slot per probe: an unanswered slot is a **timeout** — the
//! probe's deadline expired with no reply, or the reply was lost on the
//! wire — and feeds the next retry wave exactly as a lost reply always
//! did. Retry waves are bounded by [`SweepConfig::retries`]; a round
//! that exhausts its waves with probes still unanswered charges them to
//! [`SweepStats::retries_exhausted`] and hands the session an honest
//! `None` for each, so no fault schedule can wedge a sweep. The
//! invariant is asserted by the fault-schedule property tests in
//! `tests/sweep_equivalence.rs` and the chaos suite in `tests/chaos.rs`.
//!
//! # Graceful degradation
//!
//! Two watchdogs keep a sweep live under hostile fault schedules, both
//! operating on **protocol state** (session rounds and retry waves)
//! rather than scheduler state, so they fire identically across
//! admission modes and budgets:
//!
//! * a per-session **stall watchdog** ([`SweepConfig::stall_rounds`]):
//!   a session whose last N rounds each resolved with zero replies is
//!   aborted ([`ProbeSession::abort`]) and reported with
//!   [`TraceOutcome::Partial`] — the caller gets the honest prefix of
//!   the topology instead of a hang (or, with retries, an unbounded
//!   probe burn into a black hole);
//! * per-lane **backoff depth**: consecutive lossy retry waves (any
//!   probe unanswered) deepen the lane's deadline exponent (reusing the AIMD loss signal
//!   at wave granularity), so a rate-limited or congested lane waits
//!   longer instead of re-probing into the fault; clean waves decay the
//!   depth back towards zero.

use crate::pending::{ProbeTimer, RetryPolicy};
use crate::prober::{DirectObservation, ProbeObservation, ECHO_IDENTIFIER, ECHO_TTL};
use crate::session::TraceSession;
use crate::session::{ProbeOutcome, ProbeRequest, ProbeSession, SessionState, TraceProbeSession};
use crate::stopset::{SharedStopSet, StopContribution, StopSetConfig, StopSnapshot};
use crate::trace::{PartialReason, Trace};
use mlpt_wire::probe::{
    build_echo_probe_into, build_udp_probe_into, parse_reply, ProbePacket, ReplyKind,
};
use mlpt_wire::transport::{PacketBatch, ReplyBatch, SplitTransport};
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::Ipv4Addr;

/// How sessions enter the engine's live table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Admission {
    /// Every session enters the table before the first dispatch — the
    /// pre-streaming fixed-table behaviour, kept for A/B comparison.
    /// Batches shrink as the table drains.
    Eager,
    /// Sessions are admitted as in-flight tokens free up: a new session
    /// enters whenever the live sessions' pending probes sit below the
    /// in-flight budget, keeping batches full until the source runs dry.
    #[default]
    Streaming,
    /// Streaming admission, heaviest first: the source is drained up
    /// front (an `Eager`-style memory bound buys the lookahead), ordered
    /// by descending [`ProbeSession::predicted_cost`] (ties by source
    /// index), and admitted under the same in-flight gating as
    /// [`Streaming`](Self::Streaming); deferred sessions re-enter
    /// heaviest-first too. Likely-expensive destinations — above all
    /// wide-hop alias resolution, whose Round 0–10 campaigns dwarf their
    /// neighbours — start early and amortize across the whole sweep
    /// instead of serializing at the tail, which is what sets a survey's
    /// makespan (Donnet et al., "Efficient Route Tracing from a Single
    /// Source", make the same argument for probe scheduling at scale).
    ///
    /// Determinism rule 5 still holds: the policy decides *when* a
    /// session starts, never *what* it observes. Sessions sharing a
    /// destination keep their source order (a shared lane makes their
    /// relative order observable), so per-destination outcomes are
    /// bit-identical to FIFO admission — property-tested in
    /// `tests/sweep_equivalence.rs` and `tests/alias_equivalence.rs`.
    CostAware,
    /// Cost-aware admission over a sliding window: the source is staged
    /// `K` sessions at a time and each chunk is reordered by descending
    /// [`ProbeSession::predicted_cost`] before admission, so unbounded
    /// `--stdin` streams get cost-aware ordering in `O(K)` memory
    /// instead of [`CostAware`](Self::CostAware)'s full-source drain.
    /// The admission *order* can differ from the full drain (a chunk
    /// never sees costs beyond its horizon), but rule 5 makes the
    /// per-destination results bit-identical either way —
    /// property-tested in `tests/sweep_equivalence.rs`.
    CostAwareWindowed(usize),
}

impl Admission {
    /// True for the variants that order admission by predicted cost.
    pub fn is_cost_aware(self) -> bool {
        matches!(self, Self::CostAware | Self::CostAwareWindowed(_))
    }

    /// Sessions pulled from the source per staging chunk: the full
    /// source for [`CostAware`](Self::CostAware) (its documented
    /// lookahead), `K` for the windowed variant, one at a time for the
    /// FIFO modes.
    fn chunk_len(self) -> usize {
        match self {
            Self::CostAware => usize::MAX,
            Self::CostAwareWindowed(window) => window.max(1),
            Self::Eager | Self::Streaming => 1,
        }
    }
}

/// Tuning of the AIMD in-flight budget controller.
///
/// The controller treats [`SweepConfig::max_in_flight`] as a ceiling:
/// while a dispatch cycle's replies are clean (unanswered fraction at or
/// below [`loss_threshold`](Self::loss_threshold)) the budget grows by
/// [`increase`](Self::increase) tokens; a lossy cycle multiplies it by
/// [`backoff`](Self::backoff), never below
/// [`min_in_flight`](Self::min_in_flight). Each destination lane also
/// carries its own allowance with the same rules, so a single
/// rate-limited lane backs itself off without choking healthy lanes —
/// and a collapsed global budget is split fairly across lanes by the
/// gather pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveBudget {
    /// Floor the controller never backs off below.
    pub min_in_flight: usize,
    /// Additive increase per clean cycle (tokens).
    pub increase: usize,
    /// Multiplicative decrease factor applied on a lossy cycle.
    pub backoff: f64,
    /// Fraction of a cycle's probes that may go unanswered before the
    /// cycle counts as lossy.
    pub loss_threshold: f64,
}

impl Default for AdaptiveBudget {
    fn default() -> Self {
        Self {
            min_in_flight: 8,
            increase: 32,
            backoff: 0.5,
            loss_threshold: 0.05,
        }
    }
}

/// Tuning knobs of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepConfig {
    /// Token budget: the most probes the engine puts on the wire in one
    /// dispatch cycle, across all sessions. Rounds that do not fit wait
    /// for the next cycle (order within each session is preserved). With
    /// an [`AdaptiveBudget`] this is the controller's ceiling.
    pub max_in_flight: usize,
    /// Per-round retry waves for unanswered probes, matching
    /// [`crate::prober::TransportProber::with_retries`] semantics.
    pub retries: u8,
    /// Whether sessions stream in under the budget or all enter up front.
    pub admission: Admission,
    /// AIMD budget controller; `None` keeps the budget fixed at
    /// [`max_in_flight`](Self::max_in_flight).
    pub adaptive: Option<AdaptiveBudget>,
    /// Hard cap on concurrently admitted sessions (memory bound for
    /// survey-scale streams). `usize::MAX` = unlimited.
    pub max_admitted: usize,
    /// Deadline policy for the pending table: every dispatched probe's
    /// timeout (ticks from its send instant) is drawn from this policy
    /// by the session's own [`ProbeTimer`].
    pub retry: RetryPolicy,
    /// Stall watchdog: a session whose last `stall_rounds` rounds each
    /// resolved with **zero** replies is aborted and reported as
    /// [`TraceOutcome::Partial`](crate::trace::TraceOutcome::Partial).
    /// `0` (the default) disables the watchdog; retry waves inside one
    /// round do not count — only completed all-silent rounds do, so the
    /// trigger is protocol state and fires identically across admission
    /// modes and budgets.
    pub stall_rounds: u32,
    /// Doubletree-style shared stop set (see [`crate::stopset`]):
    /// `Some` makes the sweep own a [`SharedStopSet`], hand every
    /// admitted session a generation snapshot via
    /// [`ProbeSession::adopt_stop_set`], and commit finished sessions'
    /// contributions back in source-index order at generation
    /// boundaries. `None` (the default) keeps classic full-path
    /// probing.
    ///
    /// Determinism rule 5 extension: the stop set is **protocol
    /// state**. Sessions are partitioned into generations of
    /// [`StopSetConfig::commit_width`] consecutive source indices; a
    /// generation's sessions all see the snapshot closed over strictly
    /// earlier generations, and a new generation opens only once every
    /// pulled session has finished. Commits apply in source-index order
    /// with first-writer-wins per `(TTL, interface)`, so the set's
    /// contents — and through them every elision — are decided by
    /// source order, never by scheduling: eager, streaming and
    /// cost-aware sweeps stay bit-identical and replay exactly from
    /// seed.
    pub stop_set: Option<StopSetConfig>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            max_in_flight: 1024,
            retries: 0,
            admission: Admission::default(),
            adaptive: None,
            max_admitted: usize::MAX,
            retry: RetryPolicy::default(),
            stall_rounds: 0,
            stop_set: None,
        }
    }
}

/// Errors surfaced by the engine's session table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Two registered sessions trace towards the same destination: their
    /// reply tags would be ambiguous, so the table refuses the second
    /// one. (Streamed sources handle this by *deferring* the second
    /// session until the first finishes instead.)
    DuplicateDestination(Ipv4Addr),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DuplicateDestination(d) => {
                write!(f, "a session towards {d} is already registered")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Counters describing one sweep's dispatch behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Transport crossings (send_batch calls) performed.
    pub dispatch_cycles: u64,
    /// Probe packets put on the wire (retries included).
    pub probes_sent: u64,
    /// Replies successfully demultiplexed to a session.
    pub replies_delivered: u64,
    /// Replies that failed to parse as IPv4+ICMP.
    pub malformed_replies: u64,
    /// Parsed replies whose tags matched no in-flight probe, or whose
    /// quoted flow contradicted the probe they claimed to answer.
    pub mismatched_replies: u64,
    /// Largest single dispatch batch.
    pub max_batch: usize,
    /// Sessions installed as live slots, counted once per session at the
    /// moment it enters the table — whether it came straight from the
    /// source or out of the deferred store. Always equals the number of
    /// sessions the source yielded once the sweep finishes.
    pub sessions_admitted: u64,
    /// Sessions driven to completion (their results were emitted).
    /// Equals [`sessions_admitted`](Self::sessions_admitted) at the end
    /// of a sweep: every admitted session reports, even one that wedges
    /// (the defensive drain emits it).
    pub sessions_completed: u64,
    /// Deferral events: how many times a session entered the deferred
    /// store because a live slot (or an earlier deferred session) already
    /// owned its destination — the reply tags would be ambiguous while
    /// both are in flight. The indexed store admits a freed session
    /// directly, without re-deferring it past racing admissions, so each
    /// session contributes at most one event and the counter equals the
    /// number of sessions that ever waited. Not decremented on
    /// admission; `sessions_deferred <= sessions_admitted` once the
    /// sweep finishes.
    pub sessions_deferred: u64,
    /// Cycles whose unanswered fraction stayed at or below the loss
    /// threshold (the configured controller's, or the default
    /// controller's threshold when the budget is fixed — so the
    /// counters compare across both modes).
    pub clean_cycles: u64,
    /// Cycles that lost more than the threshold.
    pub lossy_cycles: u64,
    /// Multiplicative global-budget decreases applied by the controller.
    pub budget_backoffs: u64,
    /// Per-lane allowance halvings applied by the controller.
    pub lane_backoffs: u64,
    /// The in-flight budget when the sweep finished.
    pub final_in_flight_budget: usize,
    /// Probes whose reply slot came back empty: the deadline expired
    /// with no reply, or the reply was lost on the wire. Together with
    /// the three reply buckets this partitions `probes_sent` — see the
    /// retry-wave accounting section of the module docs.
    pub probes_timed_out: u64,
    /// Probes still unanswered when their round's last permitted retry
    /// wave resolved: the retry budget ran out and the session was
    /// handed an honest `None` for each.
    pub retries_exhausted: u64,
    /// Sessions whose result carried a
    /// [`TraceOutcome::Partial`](crate::trace::TraceOutcome::Partial):
    /// watchdog aborts ([`SweepConfig::stall_rounds`]) plus sessions
    /// that finalized honestly after exhausting a route-change recovery
    /// budget. Each session counts once, whichever verdict fires first.
    pub sessions_partial: u64,
    /// Deepest per-lane deadline-backoff exponent reached by any lane
    /// (consecutive lossy retry waves; see the module docs).
    pub max_lane_backoff_depth: u32,
    /// Probes the sweep's sessions never put on the wire thanks to
    /// shared-stop-set short-circuits (backward local-stop hits,
    /// forward global-stop hits, scan-phase hits), summed from the
    /// per-session [`StopContribution::probes_elided`] estimates. `0`
    /// unless [`SweepConfig::stop_set`] is active.
    pub probes_elided: u64,
    /// Stop-set hits across the sweep: probes whose responder was found
    /// in the session's adopted snapshot, ending a probing direction
    /// early.
    pub stop_set_hits: u64,
    /// Timed-out probes dropped from their retry wave because the
    /// session's adopted stop set already predicts the responder
    /// ([`ProbeSession::should_retry`]): re-probing a confirmed
    /// `(TTL, interface)` pair is redundant, so the probe resolves as
    /// an elision instead of burning a retry.
    pub retries_elided: u64,
    /// Route-change artifacts detected by session audits (flow/hop
    /// mismatches, TTL loops and vanished branches per the Viger et al.
    /// taxonomy), summed from [`crate::artifact::RouteHealth`].
    pub artifacts_detected: u64,
    /// Bounded suffix re-traces the audits triggered: each one
    /// invalidated the contradicted suffix and re-entered discovery
    /// rounds from the contradicted hop.
    pub route_recoveries: u64,
    /// Audit probes charged to [`crate::artifact::ReprobeBudget`]s
    /// (a subset of `probes_sent`; audits share the wire accounting).
    pub reprobes_sent: u64,
    /// Sessions whose recovery budget ran out mid-route-change: they
    /// finalized honestly as
    /// [`PartialReason::RouteChanged`](crate::trace::PartialReason::RouteChanged).
    pub route_changed_partials: u64,
    /// Adopted stop-set predictions contradicted by later firsthand
    /// replies. Each one was repaired in place (the firsthand record
    /// replaced the adopted one) and never reached a final trace.
    pub stop_set_stale_hits: u64,
    /// Stop-set entries evicted because a contributing session's
    /// firsthand evidence contradicted or invalidated them.
    pub stop_set_evictions: u64,
    /// Generation-barrier stalls in a sharded sweep
    /// ([`crate::shard::ShardedSweepEngine`]): shard-generations that
    /// finished their slice of a generation early and parked at the
    /// barrier while the slowest shard kept dispatching. Counted by
    /// comparing per-shard dispatch-cycle deltas across the generation
    /// — virtual work, not wall clock — so the counter is deterministic
    /// and replayable. `0` for unsharded sweeps.
    pub generation_barrier_stalls: u64,
}

impl SweepStats {
    /// Mean probes per transport crossing — the dispatch-throughput
    /// metric (each crossing is the analogue of one `sendmmsg` syscall
    /// plus one round-trip wait on a real network).
    pub fn probes_per_dispatch(&self) -> f64 {
        if self.dispatch_cycles == 0 {
            0.0
        } else {
            self.probes_sent as f64 / self.dispatch_cycles as f64
        }
    }

    /// Folds another engine's counters into this aggregate (callers
    /// running several sub-sweeps back to back, e.g. address-disjoint
    /// groups, or a sharded engine combining per-shard counters).
    /// Sums every counter **saturating** (a merge of per-shard totals
    /// must clamp at the rail, never wrap back to small numbers),
    /// takes the max of the two high-water marks (`max_batch`,
    /// `max_lane_backoff_depth` — a depth is an exponent, so summing
    /// shard depths would fabricate backoff that never happened), and
    /// keeps the most recent **nonzero** `final_in_flight_budget` (a
    /// finished run always reports at least 1; 0 means the other engine
    /// never ran, e.g. an empty shard, and must not clobber a real
    /// value) — living here so a counter added to the struct cannot be
    /// silently dropped from aggregates.
    pub fn merge(&mut self, other: &SweepStats) {
        let SweepStats {
            dispatch_cycles,
            probes_sent,
            replies_delivered,
            malformed_replies,
            mismatched_replies,
            max_batch,
            sessions_admitted,
            sessions_completed,
            sessions_deferred,
            clean_cycles,
            lossy_cycles,
            budget_backoffs,
            lane_backoffs,
            final_in_flight_budget,
            probes_timed_out,
            retries_exhausted,
            sessions_partial,
            max_lane_backoff_depth,
            probes_elided,
            stop_set_hits,
            retries_elided,
            artifacts_detected,
            route_recoveries,
            reprobes_sent,
            route_changed_partials,
            stop_set_stale_hits,
            stop_set_evictions,
            generation_barrier_stalls,
        } = *other;
        self.dispatch_cycles = self.dispatch_cycles.saturating_add(dispatch_cycles);
        self.probes_sent = self.probes_sent.saturating_add(probes_sent);
        self.replies_delivered = self.replies_delivered.saturating_add(replies_delivered);
        self.malformed_replies = self.malformed_replies.saturating_add(malformed_replies);
        self.mismatched_replies = self.mismatched_replies.saturating_add(mismatched_replies);
        self.max_batch = self.max_batch.max(max_batch);
        self.sessions_admitted = self.sessions_admitted.saturating_add(sessions_admitted);
        self.sessions_completed = self.sessions_completed.saturating_add(sessions_completed);
        self.sessions_deferred = self.sessions_deferred.saturating_add(sessions_deferred);
        self.clean_cycles = self.clean_cycles.saturating_add(clean_cycles);
        self.lossy_cycles = self.lossy_cycles.saturating_add(lossy_cycles);
        self.budget_backoffs = self.budget_backoffs.saturating_add(budget_backoffs);
        self.lane_backoffs = self.lane_backoffs.saturating_add(lane_backoffs);
        if final_in_flight_budget != 0 {
            self.final_in_flight_budget = final_in_flight_budget;
        }
        self.probes_timed_out = self.probes_timed_out.saturating_add(probes_timed_out);
        self.retries_exhausted = self.retries_exhausted.saturating_add(retries_exhausted);
        self.sessions_partial = self.sessions_partial.saturating_add(sessions_partial);
        self.max_lane_backoff_depth = self.max_lane_backoff_depth.max(max_lane_backoff_depth);
        self.probes_elided = self.probes_elided.saturating_add(probes_elided);
        self.stop_set_hits = self.stop_set_hits.saturating_add(stop_set_hits);
        self.retries_elided = self.retries_elided.saturating_add(retries_elided);
        self.artifacts_detected = self.artifacts_detected.saturating_add(artifacts_detected);
        self.route_recoveries = self.route_recoveries.saturating_add(route_recoveries);
        self.reprobes_sent = self.reprobes_sent.saturating_add(reprobes_sent);
        self.route_changed_partials = self
            .route_changed_partials
            .saturating_add(route_changed_partials);
        self.stop_set_stale_hits = self.stop_set_stale_hits.saturating_add(stop_set_stale_hits);
        self.stop_set_evictions = self.stop_set_evictions.saturating_add(stop_set_evictions);
        self.generation_barrier_stalls = self
            .generation_barrier_stalls
            .saturating_add(generation_barrier_stalls);
    }
}

/// The probe kind a demux tag belongs to. Keys are kind-tagged so a UDP
/// probe towards destination D and an echo probe aimed at interface D
/// can never claim each other's replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TagKind {
    /// Tag recovered from an ICMP error's quoted probe.
    Udp,
    /// Tag echoed back in an Echo Reply's ICMP header.
    Echo,
}

/// Demultiplexer for in-flight probes: maps the kind-tagged
/// (address, sequence) pair recovered from a reply back to the dispatch
/// entry that sent it. For UDP probes the address is the quoted probe
/// destination (unique per live session); for echo probes it is the
/// pinged interface. Sequence numbers are per-session, so the triple is
/// unique while a probe is in flight.
#[derive(Debug, Default)]
struct ReplyDemux {
    in_flight: HashMap<(TagKind, u32, u16), usize>,
}

impl ReplyDemux {
    fn clear(&mut self) {
        self.in_flight.clear();
    }

    /// Registers a dispatched probe; returns false on a tag collision
    /// (which the caller counts — the older entry survives).
    fn register(&mut self, kind: TagKind, address: Ipv4Addr, sequence: u16, token: usize) -> bool {
        match self.in_flight.entry((kind, u32::from(address), sequence)) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(token);
                true
            }
        }
    }

    /// Claims the probe a reply answers, by tag. Each probe can be
    /// claimed once; unknown tags return `None`.
    fn claim(&mut self, kind: TagKind, address: Ipv4Addr, sequence: u16) -> Option<usize> {
        self.in_flight.remove(&(kind, u32::from(address), sequence))
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.in_flight.len()
    }
}

/// A live session plus its per-destination wire state.
struct SessionSlot<S> {
    session: S,
    destination: Ipv4Addr,
    /// Index of this session in the source stream — results are reported
    /// back under it, so output order is admission-independent.
    out_index: usize,
    /// Per-session sequence counter (same discipline as
    /// `TransportProber::next_sequence`: first probe is sequence 1,
    /// shared across UDP and echo probes).
    sequence: u16,
    /// Wire-level packets sent for this session, retries included.
    probes_sent: u64,
    /// Wire-level packets sent for the round currently in service
    /// (reported to the session via `note_wire_probes`).
    round_wire: u64,
    /// The round currently being serviced (copied from the session).
    round: Vec<ProbeRequest>,
    /// One result slot per round request.
    results: Vec<Option<ProbeOutcome>>,
    /// Request indices of the current retry wave, in dispatch order.
    wave: Vec<usize>,
    /// Next index into `wave` to dispatch.
    cursor: usize,
    /// Current retry wave number (0 = first transmission).
    attempt: u8,
    /// True while a round is being serviced.
    active: bool,
    /// Per-cycle dispatch cap driven by this lane's own AIMD allowance.
    allowance: usize,
    /// Probes dispatched for this lane in the current cycle.
    dispatched_cycle: u32,
    /// Replies delivered to this lane in the current cycle.
    delivered_cycle: u32,
    /// Deadline source for this session's probes (jitter RNG included).
    timer: ProbeTimer,
    /// Deadline-backoff exponent: consecutive lossy retry waves deepen
    /// it, fully-answered waves decay it. Wave-granular, so it is
    /// protocol state — a cycle's slicing cannot move it.
    backoff_depth: u32,
    /// Completed rounds in a row that resolved with zero replies.
    silent_rounds: u32,
    /// Set when the stall watchdog aborts this session; the slot then
    /// finalizes as a partial result regardless of what `poll` says.
    partial: Option<PartialReason>,
}

impl<S> SessionSlot<S> {
    fn next_sequence(&mut self) -> u16 {
        self.sequence = self.sequence.wrapping_add(1);
        self.sequence
    }

    /// Probes of the current wave still awaiting dispatch.
    fn pending(&self) -> usize {
        if self.active {
            self.wave.len() - self.cursor
        } else {
            0
        }
    }
}

/// One in-flight probe of the current dispatch cycle.
#[derive(Debug, Clone, Copy)]
struct DispatchEntry {
    session: usize,
    spec: usize,
}

/// Outcome of pumping an idle slot's state machine.
enum Pumped {
    /// The session finished; its result was emitted and the slot removed.
    Finished,
    /// A fresh round is armed and pending dispatch.
    Armed,
    /// Nothing to do this cycle (defensive empty-round path).
    Idle,
}

/// The deferred-session store, indexed by destination.
///
/// A session whose destination is owned by a live slot waits here until
/// that slot finishes. The store replaces the old flat `VecDeque` +
/// whole-queue `iter().position(..)` / `VecDeque::remove(pos)` rescan —
/// O(n) per admission attempt and O(n) per mid-queue removal, O(n²)
/// across a sweep with many same-destination sessions — with two O(1)
/// amortized motions: `defer` appends to the destination's own FIFO
/// queue, and `on_destination_freed` (called exactly when a live slot
/// releases its destination) moves that queue's front entry into the
/// small `ready` line the admission loop drains. Per-destination FIFO
/// order is structural (one queue per destination), which is what keeps
/// shared-lane outcomes identical to the old scan's earliest-arrival
/// pick.
struct DeferredSessions<S> {
    /// Waiting sessions per destination, each queue in source order.
    by_dest: HashMap<u32, VecDeque<(usize, S)>>,
    /// Sessions whose destination has been freed, awaiting admission —
    /// kept sorted by ascending source index (FIFO modes, matching the
    /// old scan's arrival-order pick) or by descending predicted cost
    /// ([`Admission::CostAware`]).
    ready: VecDeque<(usize, S)>,
    /// Total sessions held (both maps' queues plus the ready line).
    len: usize,
}

impl<S: ProbeSession> DeferredSessions<S> {
    fn new() -> Self {
        Self {
            by_dest: HashMap::new(),
            ready: VecDeque::new(),
            len: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if any waiting (not yet freed) session targets `dest` — a
    /// later source session for the same destination must queue behind
    /// it to preserve per-destination FIFO order.
    fn holds(&self, dest: u32) -> bool {
        self.by_dest.contains_key(&dest)
    }

    /// Parks a session behind the live owner of its destination.
    fn defer(&mut self, out_index: usize, session: S) {
        let dest = u32::from(session.destination());
        self.by_dest
            .entry(dest)
            .or_default()
            .push_back((out_index, session));
        self.len += 1;
    }

    /// Releases the next waiter on `dest` (if any) into the ready line.
    /// Called when a live slot towards `dest` finishes; at most one
    /// session per destination is ever in flight towards admission, so
    /// the remaining queue stays parked until that one's own slot frees
    /// the destination again.
    fn on_destination_freed(&mut self, dest: u32, cost_aware: bool) {
        let std::collections::hash_map::Entry::Occupied(mut queue) = self.by_dest.entry(dest)
        else {
            return;
        };
        let Some(entry) = queue.get_mut().pop_front() else {
            queue.remove();
            return;
        };
        if queue.get().is_empty() {
            queue.remove();
        }
        let pos = if cost_aware {
            let cost = entry.1.predicted_cost();
            self.ready.partition_point(|(o, s)| {
                let c = s.predicted_cost();
                c > cost || (c == cost && *o < entry.0)
            })
        } else {
            self.ready.partition_point(|(o, _)| *o < entry.0)
        };
        self.ready.insert(pos, entry);
    }

    /// The next freed session to admit, in the store's admission order.
    fn next_ready(&mut self) -> Option<(usize, S)> {
        let entry = self.ready.pop_front()?;
        self.len -= 1;
        Some(entry)
    }
}

/// Orders one staged chunk of the source for the cost-aware admission
/// modes: positions are assigned by descending
/// [`ProbeSession::predicted_cost`] (ties by source index), but the
/// sessions of one destination fill their positions in source order — a
/// shared lane observes its sessions in exactly the sequence the caller
/// supplied, which is what keeps cost-aware outcomes bit-identical to
/// FIFO admission. `base` is the source index of the chunk's first
/// session ([`Admission::CostAware`] stages the whole source as one
/// chunk; [`Admission::CostAwareWindowed`] stages `K` at a time).
fn reorder_by_cost<S: ProbeSession>(sessions: Vec<S>, base: usize) -> VecDeque<(usize, S)> {
    let costs: Vec<u64> = sessions.iter().map(ProbeSession::predicted_cost).collect();
    let dests: Vec<u32> = sessions
        .iter()
        .map(|s| u32::from(s.destination()))
        .collect();
    let mut order: Vec<usize> = (0..sessions.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));

    let mut per_dest: HashMap<u32, VecDeque<usize>> = HashMap::new();
    for (i, &dest) in dests.iter().enumerate() {
        per_dest.entry(dest).or_default().push_back(i);
    }
    let mut slots: Vec<Option<S>> = sessions.into_iter().map(Some).collect();
    order
        .into_iter()
        .map(|position| {
            let source_index = per_dest
                .get_mut(&dests[position])
                .and_then(VecDeque::pop_front)
                // mlpt: allow(MLPT-W004, reason = "invariant: per_dest holds one queue entry per session and each position is visited once")
                .expect("one queue entry per session");
            // mlpt: allow(MLPT-W004, reason = "invariant: source_index values are distinct, so each slot is taken exactly once")
            let session = slots[source_index].take().expect("each session taken once");
            (base + source_index, session)
        })
        .collect()
}

/// Per-run shared-stop-set state ([`SweepConfig::stop_set`]).
///
/// The counters live here rather than in [`SweepStats`] because stats
/// persist and merge across runs while generations are strictly
/// run-local: a fresh run starts at generation 0 with an empty set.
struct StopRunState {
    /// The sweep-wide set, mutated only at generation boundaries.
    set: SharedStopSet,
    /// The snapshot handed to the currently open generation's sessions
    /// at pull time (closed over strictly earlier generations).
    snapshot: StopSnapshot,
    cfg: StopSetConfig,
    /// Generation currently admitting: sessions with source index in
    /// `open_gen * commit_width ..` belong to it.
    open_gen: usize,
    /// Finished sessions' contributions awaiting the generation
    /// boundary, tagged with their source index for the deterministic
    /// source-order commit.
    staged_contribs: Vec<(usize, StopContribution)>,
    /// Sessions pulled from the source so far (staged included).
    pulled: usize,
    /// Sessions handed to the sink so far.
    completed: usize,
}

/// The sweep scheduler (see module docs).
pub struct SweepEngine<T: SplitTransport> {
    transport: T,
    source: Ipv4Addr,
    config: SweepConfig,
    /// Sessions registered via [`add_session`](Self::add_session),
    /// drained as the stream by [`run`](Self::run).
    registered: Vec<Box<dyn TraceSession>>,
    stats: SweepStats,
    demux: ReplyDemux,
    packets: PacketBatch,
    /// Per-probe deadlines (ticks from send), parallel to `packets`.
    timeouts: Vec<u64>,
    replies: ReplyBatch,
    dispatch: Vec<DispatchEntry>,
    /// AIMD controller state (equals `max_in_flight` when fixed).
    budget: f64,
    /// Batch size of every dispatch cycle, for tail-utilization
    /// measurements (one `u32` per transport crossing).
    cycle_sizes: Vec<u32>,
    /// Final shared-stop-set snapshot of the last run (when
    /// [`SweepConfig::stop_set`] was active).
    last_stop_snapshot: Option<StopSnapshot>,
}

/// Per-run scheduler state: the live session table is generic over the
/// session type, so one engine serves trace sweeps (boxed
/// [`TraceSession`]s behind the adapter) and alias sweeps (concrete
/// [`ProbeSession`] types) without boxing the latter.
struct SweepRun<'e, T: SplitTransport, S: ProbeSession> {
    eng: &'e mut SweepEngine<T>,
    /// Live sessions only; finished slots are removed immediately.
    slots: Vec<SessionSlot<S>>,
    /// Destinations of live sessions (admission defers duplicates).
    live_dests: HashSet<u32>,
    /// Sessions waiting for a live slot to release their destination.
    deferred: DeferredSessions<S>,
    /// Undispatched probes across all live sessions' current waves.
    pending: usize,
    /// Replies delivered during the current cycle.
    cycle_delivered: usize,
    /// Shared-stop-set state when [`SweepConfig::stop_set`] is active.
    stops: Option<StopRunState>,
}

impl<T: SplitTransport> SweepEngine<T> {
    /// Creates an engine over a shared transport, probing from `source`.
    pub fn new(transport: T, source: Ipv4Addr) -> Self {
        let config = SweepConfig::default();
        Self {
            transport,
            source,
            budget: config.max_in_flight as f64,
            config,
            registered: Vec::new(),
            stats: SweepStats::default(),
            demux: ReplyDemux::default(),
            packets: PacketBatch::new(),
            timeouts: Vec::new(),
            replies: ReplyBatch::new(),
            dispatch: Vec::new(),
            cycle_sizes: Vec::new(),
            last_stop_snapshot: None,
        }
    }

    /// Replaces the tuning knobs.
    pub fn with_config(mut self, config: SweepConfig) -> Self {
        self.config = config;
        self.config.max_in_flight = self.config.max_in_flight.max(1);
        self.config.max_admitted = self.config.max_admitted.max(1);
        self.config.retry.base_timeout = self.config.retry.base_timeout.max(1);
        if let Some(adaptive) = &mut self.config.adaptive {
            adaptive.min_in_flight = adaptive.min_in_flight.clamp(1, self.config.max_in_flight);
            adaptive.increase = adaptive.increase.max(1);
            adaptive.backoff = adaptive.backoff.clamp(0.0, 1.0);
        }
        if let Some(stop) = &mut self.config.stop_set {
            stop.commit_width = stop.commit_width.max(1);
            stop.start_ttl = stop.start_ttl.max(1);
        }
        self.budget = self.config.max_in_flight as f64;
        self
    }

    /// Registers a session for [`run`](Self::run); its destination must
    /// be unique among registered sessions. Returns the session's index
    /// (traces come back in the same order).
    pub fn add_session(&mut self, session: Box<dyn TraceSession>) -> Result<usize, EngineError> {
        let destination = session.destination();
        if self
            .registered
            .iter()
            .any(|s| s.destination() == destination)
        {
            return Err(EngineError::DuplicateDestination(destination));
        }
        self.registered.push(session);
        Ok(self.registered.len() - 1)
    }

    /// Dispatch statistics so far.
    pub fn stats(&self) -> &SweepStats {
        &self.stats
    }

    /// The shared stop set's final snapshot from the last run with
    /// [`SweepConfig::stop_set`] active (`None` otherwise): every
    /// committed `(TTL, interface)` pair with its predecessor link, from
    /// which each destination's elided near-source prefix is
    /// reconstructable ([`StopSnapshot::reconstruct_prefix`]).
    pub fn stop_snapshot(&self) -> Option<&StopSnapshot> {
        self.last_stop_snapshot.as_ref()
    }

    /// Batch size of every dispatch cycle so far, in cycle order — the
    /// raw series behind tail-utilization measurements (probes per
    /// dispatch over the last N% of probes).
    pub fn cycle_batches(&self) -> &[u32] {
        &self.cycle_sizes
    }

    /// The in-flight budget currently in force (the AIMD controller's
    /// value, or `max_in_flight` when fixed).
    pub fn current_budget(&self) -> usize {
        match self.config.adaptive {
            Some(adaptive) => (self.budget.round() as usize)
                .clamp(adaptive.min_in_flight, self.config.max_in_flight),
            None => self.config.max_in_flight,
        }
    }

    /// Consumes the engine, returning the transport.
    pub fn into_transport(self) -> T {
        self.transport
    }

    /// Drives every registered session to completion, returning their
    /// traces in registration order.
    pub fn run(&mut self) -> Vec<Trace> {
        let sessions = std::mem::take(&mut self.registered);
        self.run_stream(sessions)
    }

    /// Streams trace sessions from `sessions` through the engine,
    /// returning their traces in source order. Under
    /// [`Admission::Streaming`] the source is pulled lazily as in-flight
    /// tokens free up, so arbitrary destination-list lengths run in
    /// bounded memory (plus the returned traces; use
    /// [`run_stream_with`](Self::run_stream_with) to stream those out
    /// too).
    pub fn run_stream<I>(&mut self, sessions: I) -> Vec<Trace>
    where
        I: IntoIterator<Item = Box<dyn TraceSession>>,
    {
        let mut out: Vec<Option<Trace>> = Vec::new();
        self.run_stream_with(sessions, |index, trace| {
            if out.len() <= index {
                out.resize_with(index + 1, || None);
            }
            out[index] = Some(trace);
        });
        out.into_iter().flatten().collect()
    }

    /// Streams trace sessions through the engine, handing each finished
    /// trace to `sink` together with its index in the source stream.
    /// Traces arrive in completion order; the index makes output
    /// assembly independent of admission order.
    pub fn run_stream_with<I, F>(&mut self, sessions: I, mut sink: F)
    where
        I: IntoIterator<Item = Box<dyn TraceSession>>,
        F: FnMut(usize, Trace),
    {
        let adapted = sessions.into_iter().map(TraceProbeSession::new);
        self.run_sessions_with(adapted, |index, mut session, probes_sent| {
            let outcome = session.outcome();
            let mut trace = session.inner_mut().take_trace(probes_sent);
            // The engine-side verdict (watchdog aborts) wins over a
            // clean session outcome, but a session that already declared
            // itself partial (e.g. `RouteChanged`) keeps its own verdict.
            if outcome.is_partial() {
                trace.outcome = outcome;
            }
            sink(index, trace);
        });
    }

    /// The generalised entry point: streams any [`ProbeSession`] type
    /// through the engine. Each finished session is handed back to
    /// `sink` together with its index in the source stream and the
    /// wire-level packet count the engine spent on it (retries
    /// included), so the caller extracts whatever result the session
    /// type accumulates — a trace, an alias partition, a full
    /// multilevel outcome.
    pub fn run_sessions_with<S, I, F>(&mut self, sessions: I, mut sink: F)
    where
        S: ProbeSession,
        I: IntoIterator<Item = S>,
        F: FnMut(usize, S, u64),
    {
        let mut iter = sessions.into_iter();
        self.last_stop_snapshot = None;
        let stops = self.config.stop_set.map(|cfg| StopRunState {
            set: SharedStopSet::default(),
            snapshot: StopSnapshot::empty(),
            cfg,
            open_gen: 0,
            staged_contribs: Vec::new(),
            pulled: 0,
            completed: 0,
        });
        let mut run = SweepRun {
            eng: self,
            slots: Vec::new(),
            live_dests: HashSet::new(),
            deferred: DeferredSessions::new(),
            pending: 0,
            cycle_delivered: 0,
            stops,
        };
        run.run_source(&mut iter, &mut sink);
    }
}

impl<T: SplitTransport, S: ProbeSession> SweepRun<'_, T, S> {
    /// The scheduler loop shared by every entry point.
    fn run_source(
        &mut self,
        source: &mut dyn Iterator<Item = S>,
        sink: &mut dyn FnMut(usize, S, u64),
    ) {
        let mut next_out = 0usize;
        let mut source_done = false;
        // Sessions pulled from the source but not yet admitted: the
        // cost-aware modes stage (and reorder) whole chunks at a time —
        // the full source under `CostAware`, `K` under
        // `CostAwareWindowed(K)` — the FIFO modes one session at a time.
        let mut staged: VecDeque<(usize, S)> = VecDeque::new();

        loop {
            self.refill_rounds(sink);
            self.admit_sessions(source, &mut staged, &mut next_out, &mut source_done, sink);
            if !self.gather_packets() {
                if self.deferred.is_empty() && staged.is_empty() && source_done {
                    break;
                }
                if self.deferred.is_empty() && self.slots.is_empty() && !source_done {
                    // Stop-set generation gating kept the source shut
                    // while the last generation drained; the admission
                    // pass above has now closed it, so the next pass
                    // pulls the new generation. Nothing live: just loop.
                    continue;
                }
                // Unreachable in practice: a deferred session waits on a
                // live destination, but nothing is live. The next
                // admission pass will admit it; just loop.
                debug_assert!(false, "deferred sessions with an empty live table");
                continue;
            }
            debug_assert_eq!(
                self.eng.packets.len(),
                self.eng.timeouts.len(),
                "one deadline per dispatched probe"
            );
            self.eng
                .transport
                .send_probes(&self.eng.packets, &self.eng.timeouts);
            self.eng.transport.recv_replies(&mut self.eng.replies);
            self.eng.stats.dispatch_cycles += 1;
            self.eng.stats.probes_sent += self.eng.packets.len() as u64;
            self.eng.stats.max_batch = self.eng.stats.max_batch.max(self.eng.packets.len());
            self.eng.cycle_sizes.push(self.eng.packets.len() as u32);
            self.demux_replies();
            self.adapt_budget();
            self.resolve_waves();
        }

        // Defensive drain: a session that wedged in the empty-round path
        // still reports a result rather than vanishing.
        while let Some(mut slot) = self.slots.pop() {
            self.live_dests.remove(&u32::from(slot.destination));
            self.eng.stats.sessions_completed += 1;
            self.collect_route_health(&slot);
            self.harvest_contribution(&mut slot);
            sink(slot.out_index, slot.session, slot.probes_sent);
        }
        // Commit any contributions the defensive drain just harvested,
        // then publish the final snapshot for callers (prefix
        // reconstruction, cross-run inspection).
        self.close_generation(true);
        if let Some(stops) = self.stops.take() {
            self.eng.last_stop_snapshot = Some(stops.set.snapshot(&stops.cfg));
        }
        self.eng.stats.final_in_flight_budget = self.eng.current_budget();
    }

    /// Whether this run's deferred store orders freed sessions by cost.
    fn cost_aware(&self) -> bool {
        self.eng.config.admission.is_cost_aware()
    }

    /// Folds a finishing session's route-audit health into the sweep
    /// counters. No-op for sessions that never armed an audit.
    fn collect_route_health(&mut self, slot: &SessionSlot<S>) {
        let Some(health) = slot.session.route_health() else {
            return;
        };
        let stats = &mut self.eng.stats;
        stats.artifacts_detected += health.artifacts();
        stats.route_recoveries += u64::from(health.recoveries);
        stats.reprobes_sent += health.reprobes_sent;
        stats.stop_set_stale_hits += health.stale_stop_hits;
        if health.route_changed_partial {
            stats.route_changed_partials += 1;
            // The watchdog already counted sessions it aborted; only
            // self-declared partials add to the partial-session total.
            if slot.partial.is_none() {
                stats.sessions_partial += 1;
            }
        }
    }

    /// Collects a finished session's firsthand stop-set contribution
    /// (staged until its generation closes) and its elision counters.
    /// No-op without an active stop set.
    fn harvest_contribution(&mut self, slot: &mut SessionSlot<S>) {
        let Some(stops) = &mut self.stops else {
            return;
        };
        stops.completed += 1;
        if let Some(contribution) = slot.session.stop_contribution() {
            self.eng.stats.probes_elided += contribution.probes_elided;
            self.eng.stats.stop_set_hits += contribution.stop_hits;
            stops.staged_contribs.push((slot.out_index, contribution));
        }
    }

    /// Closes the open generation once every pulled session has
    /// finished and the source has reached the generation boundary (or
    /// run dry): commits the staged contributions in **source-index
    /// order** (first-writer-wins per `(TTL, interface)` — determinism
    /// rule 5), rebuilds the snapshot the next generation will adopt,
    /// and opens that generation for pulling.
    fn close_generation(&mut self, source_done: bool) {
        let Some(stops) = &mut self.stops else {
            return;
        };
        // Staged and deferred sessions count as pulled but not
        // completed, so this single check also waits for them.
        if stops.completed < stops.pulled {
            return;
        }
        let width = stops.cfg.commit_width.max(1);
        let boundary = stops.pulled >= (stops.open_gen + 1).saturating_mul(width);
        let partial = source_done && stops.pulled > stops.open_gen.saturating_mul(width);
        if !boundary && !partial {
            return;
        }
        stops
            .staged_contribs
            .sort_unstable_by_key(|&(index, _)| index);
        let evictions_before = stops.set.evictions();
        for (index, contribution) in std::mem::take(&mut stops.staged_contribs) {
            stops.set.commit(index, &contribution);
        }
        self.eng.stats.stop_set_evictions += stops.set.evictions() - evictions_before;
        stops.snapshot = stops.set.snapshot(&stops.cfg);
        stops.open_gen = stops.pulled.div_ceil(width);
    }

    /// Hands out the next session to admit: the staged chunk first,
    /// then a fresh chunk pulled from the source. With an active stop
    /// set, pulls are gated at the open generation's boundary (`None`
    /// until the generation closes) and every pulled session adopts the
    /// generation's snapshot right here — pull time, not admission
    /// time, so deferral cannot change what a session sees.
    fn pull_next(
        &mut self,
        source: &mut dyn Iterator<Item = S>,
        staged: &mut VecDeque<(usize, S)>,
        next_out: &mut usize,
        source_done: &mut bool,
    ) -> Option<(usize, S)> {
        if staged.is_empty() && !*source_done {
            let mut chunk = self.eng.config.admission.chunk_len();
            if let Some(stops) = &self.stops {
                let width = stops.cfg.commit_width.max(1);
                let generation_end = (stops.open_gen + 1).saturating_mul(width);
                let room = generation_end.saturating_sub(*next_out);
                if room == 0 {
                    return None; // wait for the open generation to close
                }
                chunk = chunk.min(room);
            }
            let mut pulled: Vec<S> = Vec::new();
            while pulled.len() < chunk {
                match source.next() {
                    Some(session) => pulled.push(session),
                    None => {
                        *source_done = true;
                        break;
                    }
                }
            }
            let base = *next_out;
            *next_out += pulled.len();
            *staged = if self.eng.config.admission.is_cost_aware() {
                reorder_by_cost(pulled, base)
            } else {
                pulled
                    .into_iter()
                    .enumerate()
                    .map(|(i, session)| (base + i, session))
                    .collect()
            };
            if let Some(stops) = &mut self.stops {
                stops.pulled = *next_out;
                for (_, session) in staged.iter_mut() {
                    session.adopt_stop_set(&stops.snapshot);
                }
            }
        }
        staged.pop_front()
    }

    /// Polls idle sessions for their next rounds, emitting results of
    /// sessions that finished (their slots are removed immediately).
    fn refill_rounds(&mut self, sink: &mut dyn FnMut(usize, S, u64)) {
        let mut i = 0;
        while i < self.slots.len() {
            if self.slots[i].active {
                i += 1;
                continue;
            }
            match self.pump_slot(i, sink) {
                Pumped::Finished => {} // swap_remove: revisit index i
                Pumped::Armed | Pumped::Idle => i += 1,
            }
        }
    }

    /// Advances one idle slot: emits its result if finished (removing
    /// the slot), or arms its next round.
    fn pump_slot(&mut self, i: usize, sink: &mut dyn FnMut(usize, S, u64)) -> Pumped {
        let slot = &mut self.slots[i];
        debug_assert!(!slot.active, "pump_slot on an active slot");
        // An aborted session is finished whatever its state machine
        // says — `abort` is advisory (a default no-op), so the slot's
        // own flag is what guarantees the sweep can never hang on a
        // session that ignores it.
        let state = if slot.partial.is_some() {
            SessionState::Finished
        } else {
            slot.session.poll()
        };
        match state {
            SessionState::Finished => {
                let cost_aware = self.cost_aware();
                let mut slot = self.slots.swap_remove(i);
                let dest = u32::from(slot.destination);
                self.live_dests.remove(&dest);
                // The destination is free again: release its next waiter
                // (if any) towards admission.
                self.deferred.on_destination_freed(dest, cost_aware);
                self.eng.stats.sessions_completed += 1;
                self.collect_route_health(&slot);
                self.harvest_contribution(&mut slot);
                sink(slot.out_index, slot.session, slot.probes_sent);
                Pumped::Finished
            }
            SessionState::Probing => {
                let requests = slot.session.next_rounds();
                if requests.is_empty() {
                    // Defensive: a session must not yield an empty
                    // round; feed it empty replies so it advances.
                    debug_assert!(false, "session yielded an empty round");
                    let mut none: [Option<ProbeOutcome>; 0] = [];
                    slot.session.on_replies(&mut none);
                    return Pumped::Idle;
                }
                slot.round.clear();
                slot.round.extend_from_slice(requests);
                slot.results.clear();
                slot.results.resize(slot.round.len(), None);
                slot.wave.clear();
                slot.wave.extend(0..slot.round.len());
                slot.cursor = 0;
                slot.attempt = 0;
                slot.round_wire = 0;
                slot.active = true;
                self.pending += slot.round.len();
                Pumped::Armed
            }
        }
    }

    /// Pulls sessions from the stream into the live table. Streaming and
    /// cost-aware admission stop once the pending backlog covers the
    /// budget (or the session cap is reached); eager admission drains
    /// the source. A session whose destination is already live — or
    /// already has earlier sessions waiting on it — is deferred until
    /// the destination frees up: its reply tags would be ambiguous, and
    /// a shared lane makes per-destination order observable, so waiters
    /// re-enter strictly in source order. Deferred sessions whose
    /// destinations were freed re-enter before new source pulls, so the
    /// admission path is O(1) amortized per session (no queue rescans).
    fn admit_sessions(
        &mut self,
        source: &mut dyn Iterator<Item = S>,
        staged: &mut VecDeque<(usize, S)>,
        next_out: &mut usize,
        source_done: &mut bool,
        sink: &mut dyn FnMut(usize, S, u64),
    ) {
        loop {
            // Generation boundaries are checked every pass: a
            // generation whose sessions all finished instantly must
            // still open the next one within this very admission call.
            self.close_generation(*source_done);
            if self.eng.config.admission != Admission::Eager
                && self.pending >= self.eng.current_budget()
            {
                return;
            }
            if self.slots.len() >= self.eng.config.max_admitted {
                return;
            }
            // Freed deferred sessions re-enter first: their destinations
            // were released by finishing slots, and the store already
            // ordered them (arrival order, or cost under the cost-aware
            // modes).
            if let Some((out, session)) = self.deferred.next_ready() {
                debug_assert!(
                    !self.live_dests.contains(&u32::from(session.destination())),
                    "a freed session's destination must be free"
                );
                self.admit_one(out, session, sink);
                continue;
            }
            // Then the source, through the staged chunk.
            let Some((out, session)) = self.pull_next(source, staged, next_out, source_done) else {
                return;
            };
            let dest = u32::from(session.destination());
            if self.live_dests.contains(&dest) || self.deferred.holds(dest) {
                self.eng.stats.sessions_deferred += 1;
                self.deferred.defer(out, session);
                continue;
            }
            self.admit_one(out, session, sink);
        }
    }

    /// Installs one session as a live slot and arms its first round (or
    /// emits its result immediately if it finishes without probing).
    fn admit_one(&mut self, out_index: usize, session: S, sink: &mut dyn FnMut(usize, S, u64)) {
        self.eng.stats.sessions_admitted += 1;
        let destination = session.destination();
        self.live_dests.insert(u32::from(destination));
        self.slots.push(SessionSlot {
            session,
            destination,
            out_index,
            sequence: 0,
            probes_sent: 0,
            round_wire: 0,
            round: Vec::new(),
            results: Vec::new(),
            wave: Vec::new(),
            cursor: 0,
            attempt: 0,
            active: false,
            allowance: self.eng.config.max_in_flight,
            dispatched_cycle: 0,
            delivered_cycle: 0,
            timer: ProbeTimer::new(self.eng.config.retry, destination),
            backoff_depth: 0,
            silent_rounds: 0,
            partial: None,
        });
        // Arm the first round now so the session joins this very cycle's
        // batch — that is what keeps batches full at admission time.
        let last = self.slots.len() - 1;
        let _ = self.pump_slot(last, sink);
    }

    /// Builds the cycle's cross-destination packet batch under the token
    /// budget: a fair quota pass (budget split evenly across lanes with
    /// pending probes) followed by a greedy pass for the leftovers, both
    /// bounded by each lane's adaptive allowance. Returns false when
    /// nothing is left to dispatch.
    fn gather_packets(&mut self) -> bool {
        self.eng.packets.clear();
        self.eng.timeouts.clear();
        self.eng.dispatch.clear();
        self.eng.demux.clear();
        self.cycle_delivered = 0;
        let budget = self.eng.current_budget();
        let adaptive = self.eng.config.adaptive.is_some();

        let mut lanes_pending = 0usize;
        for slot in &mut self.slots {
            slot.dispatched_cycle = 0;
            slot.delivered_cycle = 0;
            if slot.pending() > 0 {
                lanes_pending += 1;
            }
        }
        if lanes_pending == 0 {
            return false;
        }

        let quota = (budget / lanes_pending).max(1);
        for pass in 0..2 {
            for i in 0..self.slots.len() {
                if self.eng.packets.len() >= budget {
                    break;
                }
                let slot = &self.slots[i];
                if slot.pending() == 0 {
                    continue;
                }
                let already = slot.dispatched_cycle as usize;
                let lane_cap = if adaptive { slot.allowance } else { usize::MAX };
                // Mid-flight cost reappraisal: a lane whose remaining
                // predicted cost collapsed (a stop-set hit, a trace
                // nearing its destination) is capped at that cost, so
                // it stops hogging quota and allowance the heavy lanes
                // need. `0` = no estimate = uncapped; in-tree sessions
                // never predict below their current round, so the cap
                // only ever redistributes tokens, never slices rounds
                // it does not have to (and slicing is transparent
                // anyway — determinism rule 5).
                let cost_cap = match usize::try_from(slot.session.predicted_cost()) {
                    Ok(0) | Err(_) => usize::MAX,
                    Ok(cost) => cost,
                };
                let pass_cap = if pass == 0 { quota } else { lane_cap };
                let cap = lane_cap.min(pass_cap).min(cost_cap).saturating_sub(already);
                if cap > 0 {
                    self.dispatch_slot(i, cap, budget);
                }
            }
            if self.eng.packets.len() >= budget {
                break;
            }
        }
        !self.eng.packets.is_empty()
    }

    /// Encodes up to `cap` probes of slot `i`'s current wave into the
    /// cycle batch (bounded by the global budget).
    fn dispatch_slot(&mut self, i: usize, cap: usize, budget: usize) {
        let source = self.eng.source;
        let slot = &mut self.slots[i];
        let mut taken = 0usize;
        while taken < cap && slot.cursor < slot.wave.len() && self.eng.packets.len() < budget {
            let spec_idx = slot.wave[slot.cursor];
            slot.cursor += 1;
            let Some(&request) = slot.round.get(spec_idx) else {
                debug_assert!(false, "wave index out of round bounds");
                continue;
            };
            let sequence = slot.next_sequence();
            // The deadline is protocol state: attempt and backoff depth
            // advance on wave boundaries, and the jitter RNG advances
            // once per probe in wave order — so however the budget
            // slices this wave across cycles, the deadline sequence is
            // identical (determinism rule 5).
            self.eng
                .timeouts
                .push(slot.timer.next_timeout(slot.attempt, slot.backoff_depth));
            let registered = match request {
                ProbeRequest::Udp(spec) => {
                    let probe = ProbePacket {
                        source,
                        destination: slot.destination,
                        flow: spec.flow,
                        ttl: spec.ttl,
                        sequence,
                    };
                    self.eng
                        .packets
                        .push_with(|buf| build_udp_probe_into(&probe, buf));
                    self.eng.demux.register(
                        TagKind::Udp,
                        slot.destination,
                        sequence,
                        self.eng.dispatch.len(),
                    )
                }
                ProbeRequest::Echo { target } => {
                    self.eng.packets.push_with(|buf| {
                        build_echo_probe_into(
                            source,
                            target,
                            ECHO_IDENTIFIER,
                            sequence,
                            ECHO_TTL,
                            buf,
                        )
                    });
                    self.eng.demux.register(
                        TagKind::Echo,
                        target,
                        sequence,
                        self.eng.dispatch.len(),
                    )
                }
            };
            if !registered {
                // A 16-bit sequence collision inside one cycle: only
                // possible for absurdly large rounds. Count it and
                // let the probe resolve as lost.
                self.eng.stats.mismatched_replies += 1;
            }
            self.eng.dispatch.push(DispatchEntry {
                session: i,
                spec: spec_idx,
            });
            slot.probes_sent += 1;
            slot.round_wire += 1;
            slot.dispatched_cycle += 1;
            taken += 1;
            self.pending -= 1;
        }
    }

    /// Routes every reply of the cycle back to its probe by its
    /// kind-tagged demux key.
    fn demux_replies(&mut self) {
        for slot_idx in 0..self.eng.replies.len() {
            let Some(bytes) = self.eng.replies.get(slot_idx) else {
                // No reply by the probe's deadline (lost on the wire, or
                // late past the timeout): a typed timeout, feeding the
                // retry machinery exactly like a lost reply.
                self.eng.stats.probes_timed_out += 1;
                continue;
            };
            let Ok(parsed) = parse_reply(bytes) else {
                self.eng.stats.malformed_replies += 1;
                continue;
            };
            // Kind-specific tag recovery: errors quote the probe they
            // answer; Echo Replies echo the ICMP identifier/sequence and
            // come from the pinged interface itself.
            let token = match parsed.kind {
                ReplyKind::EchoReply => match parsed.echo {
                    Some((identifier, sequence)) if identifier == ECHO_IDENTIFIER => self
                        .eng
                        .demux
                        .claim(TagKind::Echo, parsed.responder, sequence),
                    // A stray echo reply (foreign identifier or no echo
                    // header): nothing to demultiplex against.
                    _ => None,
                },
                _ => match (parsed.probe_destination, parsed.probe_sequence) {
                    (Some(dest), Some(sequence)) => {
                        self.eng.demux.claim(TagKind::Udp, dest, sequence)
                    }
                    // No usable quote: nothing to demultiplex against.
                    _ => None,
                },
            };
            let Some(token) = token else {
                self.eng.stats.mismatched_replies += 1;
                continue;
            };
            let Some(entry) = self.eng.dispatch.get(token) else {
                debug_assert!(false, "demux token out of bounds");
                self.eng.stats.mismatched_replies += 1;
                continue;
            };
            let (session_idx, spec_idx) = (entry.session, entry.spec);

            let Some(slot) = self.slots.get_mut(session_idx) else {
                debug_assert!(false, "dispatch entry names an unknown session");
                self.eng.stats.mismatched_replies += 1;
                continue;
            };
            let Some(&request) = slot.round.get(spec_idx) else {
                debug_assert!(false, "dispatch entry outlived its round");
                self.eng.stats.mismatched_replies += 1;
                continue;
            };
            let timestamp = self.eng.replies.timestamp(slot_idx);
            let outcome = match request {
                // The shared acceptance rule (also TransportProber's):
                // the reply must quote the flow we probed with.
                ProbeRequest::Udp(spec) if parsed.kind != ReplyKind::EchoReply => {
                    ProbeObservation::from_reply(spec, parsed, slot.destination, timestamp)
                        .map(ProbeOutcome::Udp)
                }
                // The claim key guarantees the responder is the pinged
                // target and the sequence matches — the same acceptance
                // rule TransportProber::direct_probe applies.
                ProbeRequest::Echo { target } if parsed.kind == ReplyKind::EchoReply => {
                    parsed.echo.map(|(_, sequence)| {
                        debug_assert_eq!(parsed.responder, target, "claim key mismatch");
                        ProbeOutcome::Echo(DirectObservation {
                            target: parsed.responder,
                            ip_id: parsed.reply_ip_id,
                            probe_ip_id: sequence,
                            reply_ttl: parsed.reply_ttl,
                            timestamp,
                        })
                    })
                }
                // Kind-tagged keys make a crossed claim impossible; be
                // defensive anyway.
                _ => None,
            };
            let Some(outcome) = outcome else {
                self.eng.stats.mismatched_replies += 1;
                continue;
            };
            if let Some(result) = slot.results.get_mut(spec_idx) {
                *result = Some(outcome);
                slot.delivered_cycle += 1;
                self.cycle_delivered += 1;
                self.eng.stats.replies_delivered += 1;
            }
        }
    }

    /// Applies the AIMD rules to the global budget and the per-lane
    /// allowances from the just-demultiplexed cycle.
    fn adapt_budget(&mut self) {
        let dispatched = self.eng.packets.len();
        if dispatched == 0 {
            return;
        }
        let loss = 1.0 - self.cycle_delivered as f64 / dispatched as f64;
        // Classify the cycle against the loss threshold — the default
        // controller's threshold when the budget is fixed, so the
        // clean/lossy counters mean the same thing in both modes.
        let threshold = self.eng.config.adaptive.map_or_else(
            || AdaptiveBudget::default().loss_threshold,
            |c| c.loss_threshold,
        );
        if loss > threshold {
            self.eng.stats.lossy_cycles += 1;
        } else {
            self.eng.stats.clean_cycles += 1;
        }
        let Some(cfg) = self.eng.config.adaptive else {
            return;
        };
        if loss > cfg.loss_threshold {
            let floor = cfg.min_in_flight as f64;
            let next = (self.eng.budget * cfg.backoff).max(floor);
            if next < self.eng.budget {
                self.eng.stats.budget_backoffs += 1;
            }
            self.eng.budget = next;
        } else {
            self.eng.budget =
                (self.eng.budget + cfg.increase as f64).min(self.eng.config.max_in_flight as f64);
        }
        let mut lane_backoffs = 0u64;
        for slot in &mut self.slots {
            let lane_sent = slot.dispatched_cycle as usize;
            if lane_sent == 0 {
                continue;
            }
            let lane_loss = 1.0 - slot.delivered_cycle as f64 / lane_sent as f64;
            if lane_loss > cfg.loss_threshold {
                slot.allowance = (slot.allowance / 2).max(1);
                lane_backoffs += 1;
            } else {
                slot.allowance = slot
                    .allowance
                    .saturating_add(cfg.increase)
                    .min(self.eng.config.max_in_flight);
            }
        }
        self.eng.stats.lane_backoffs += lane_backoffs;
    }

    /// Completes retry waves and hands finished rounds to their
    /// sessions.
    ///
    /// The accounting audit trail (see the module docs): a wave is
    /// resolved only once fully dispatched (`cursor == wave.len()`), at
    /// which point the split transport has given every one of its probes
    /// a reply slot — answered slots were delivered by the demux pass,
    /// unanswered ones were charged to
    /// [`SweepStats::probes_timed_out`]. Unanswered requests feed the
    /// next retry wave while [`SweepConfig::retries`] allows; the last
    /// wave's leftovers are charged to
    /// [`SweepStats::retries_exhausted`] and the round finalizes with an
    /// honest `None` per missing reply, so every dispatched probe
    /// resolves exactly once and no schedule can wedge a round.
    fn resolve_waves(&mut self) {
        let mut repending = 0usize;
        for slot in &mut self.slots {
            if !slot.active || slot.cursor < slot.wave.len() {
                continue; // wave still (partially) undispatched
            }
            let still: Vec<usize> = slot
                .wave
                .iter()
                .copied()
                .filter(|&s| slot.results.get(s).is_some_and(Option::is_none))
                .collect();
            // Wave-granular deadline backoff: a lossy wave deepens this
            // lane's timeout exponent, a clean one decays it. Waves are
            // protocol state (their composition is independent of how
            // cycles sliced them), so the depth — and through it every
            // deadline — is identical across admission modes.
            if still.is_empty() {
                slot.backoff_depth = slot.backoff_depth.saturating_sub(1);
            } else {
                slot.backoff_depth = slot.backoff_depth.saturating_add(1);
                self.eng.stats.max_lane_backoff_depth = self
                    .eng
                    .stats
                    .max_lane_backoff_depth
                    .max(slot.backoff_depth);
            }
            // Stop-set retry elision: a timed-out probe whose
            // `(TTL, interface)` the session's adopted snapshot already
            // predicts is dropped from the wave instead of re-probed —
            // the session proxy-adopts the predicted responder from the
            // honest `None` slot. The verdict depends only on the
            // frozen snapshot and the probe itself (protocol state), so
            // waves stay identical across admission modes and budgets.
            let retained: Vec<usize> =
                if still.is_empty() || slot.attempt >= self.eng.config.retries {
                    self.eng.stats.retries_exhausted += still.len() as u64;
                    Vec::new()
                } else {
                    let kept: Vec<usize> = still
                        .iter()
                        .copied()
                        .filter(|&s| {
                            slot.round
                                .get(s)
                                .is_none_or(|request| slot.session.should_retry(request))
                        })
                        .collect();
                    self.eng.stats.retries_elided += (still.len() - kept.len()) as u64;
                    kept
                };
            if retained.is_empty() {
                let answered = slot.results.iter().any(Option::is_some);
                slot.session.note_wire_probes(slot.round_wire);
                slot.round_wire = 0;
                slot.session.on_replies(&mut slot.results);
                slot.active = false;
                // The stall watchdog counts completed all-silent rounds
                // — session-round granularity, so it too is protocol
                // state and trips identically however the sweep is
                // scheduled.
                if answered {
                    slot.silent_rounds = 0;
                } else {
                    slot.silent_rounds = slot.silent_rounds.saturating_add(1);
                    let limit = self.eng.config.stall_rounds;
                    if limit > 0 && slot.silent_rounds >= limit && slot.partial.is_none() {
                        let reason = PartialReason::Stalled {
                            silent_rounds: slot.silent_rounds,
                        };
                        slot.partial = Some(reason);
                        slot.session.abort(reason);
                        self.eng.stats.sessions_partial += 1;
                    }
                }
            } else {
                slot.attempt += 1;
                repending += retained.len();
                slot.wave = retained;
                slot.cursor = 0;
            }
        }
        self.pending += repending;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TraceConfig;
    use crate::prober::{ProbeSpec, Prober, TransportProber};
    use crate::session::{MdaLiteSession, MdaSession, SingleFlowSession};
    use crate::trace::Trace;
    use mlpt_sim::SimNetwork;
    use mlpt_topo::canonical;
    use mlpt_wire::FlowId;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    fn dest(i: u16) -> Ipv4Addr {
        Ipv4Addr::new(198, 51, (i >> 8) as u8, i as u8)
    }

    #[test]
    fn demux_routes_interleaved_replies() {
        let mut demux = ReplyDemux::default();
        // Two sessions' probes registered interleaved.
        assert!(demux.register(TagKind::Udp, dest(1), 1, 10));
        assert!(demux.register(TagKind::Udp, dest(2), 1, 20));
        assert!(demux.register(TagKind::Udp, dest(1), 2, 11));
        assert!(demux.register(TagKind::Udp, dest(2), 2, 21));
        // Replies claimed out of order still find their probes.
        assert_eq!(demux.claim(TagKind::Udp, dest(2), 2), Some(21));
        assert_eq!(demux.claim(TagKind::Udp, dest(1), 1), Some(10));
        assert_eq!(demux.claim(TagKind::Udp, dest(2), 1), Some(20));
        assert_eq!(demux.claim(TagKind::Udp, dest(1), 2), Some(11));
    }

    #[test]
    fn demux_lost_and_unknown_replies() {
        let mut demux = ReplyDemux::default();
        assert!(demux.register(TagKind::Udp, dest(1), 7, 0));
        // An unknown tag (wrong destination or sequence) claims nothing.
        assert_eq!(demux.claim(TagKind::Udp, dest(1), 8), None);
        assert_eq!(demux.claim(TagKind::Udp, dest(9), 7), None);
        // A lost reply simply never claims; the entry drains on clear.
        assert_eq!(demux.len(), 1);
        demux.clear();
        assert_eq!(demux.len(), 0);
        // Double delivery: the second claim of the same tag fails.
        assert!(demux.register(TagKind::Udp, dest(1), 7, 0));
        assert_eq!(demux.claim(TagKind::Udp, dest(1), 7), Some(0));
        assert_eq!(demux.claim(TagKind::Udp, dest(1), 7), None);
    }

    #[test]
    fn demux_rejects_tag_collisions() {
        let mut demux = ReplyDemux::default();
        assert!(demux.register(TagKind::Udp, dest(1), 1, 0));
        assert!(
            !demux.register(TagKind::Udp, dest(1), 1, 5),
            "collision must be flagged"
        );
        // The first registration survives.
        assert_eq!(demux.claim(TagKind::Udp, dest(1), 1), Some(0));
    }

    /// UDP and echo tags live in disjoint key spaces: a UDP probe towards
    /// destination D never claims an Echo Reply from interface D.
    #[test]
    fn demux_kinds_are_disjoint() {
        let mut demux = ReplyDemux::default();
        assert!(demux.register(TagKind::Udp, dest(1), 1, 0));
        assert!(demux.register(TagKind::Echo, dest(1), 1, 9));
        assert_eq!(demux.claim(TagKind::Echo, dest(1), 1), Some(9));
        assert_eq!(demux.claim(TagKind::Udp, dest(1), 1), Some(0));
    }

    /// The merge audit behind sharded-sweep aggregation: summed
    /// counters saturate at the rail instead of wrapping, high-water
    /// marks (`max_batch`, `max_lane_backoff_depth`) merge as max —
    /// never as sums — and `final_in_flight_budget` keeps the most
    /// recent value.
    #[test]
    fn stats_merge_saturates_and_maxes() {
        let mut total = SweepStats {
            probes_sent: u64::MAX - 3,
            probes_timed_out: u64::MAX,
            max_batch: 12,
            max_lane_backoff_depth: 5,
            final_in_flight_budget: 64,
            generation_barrier_stalls: u64::MAX - 1,
            ..SweepStats::default()
        };
        let shard = SweepStats {
            probes_sent: 10,
            probes_timed_out: 1,
            max_batch: 7,
            max_lane_backoff_depth: 3,
            final_in_flight_budget: 8,
            generation_barrier_stalls: 9,
            dispatch_cycles: 4,
            ..SweepStats::default()
        };
        total.merge(&shard);
        // Near-rail sums clamp instead of wrapping back to tiny values.
        assert_eq!(total.probes_sent, u64::MAX);
        assert_eq!(total.probes_timed_out, u64::MAX);
        assert_eq!(total.generation_barrier_stalls, u64::MAX);
        // High-water marks merge as max, not sum: a backoff *depth* is
        // an exponent, so 5 + 3 would fabricate backoff that never ran.
        assert_eq!(total.max_batch, 12);
        assert_eq!(total.max_lane_backoff_depth, 5);
        // Ordinary counters still sum; the budget keeps the newest value.
        assert_eq!(total.dispatch_cycles, 4);
        assert_eq!(total.final_in_flight_budget, 8);

        // Max semantics hold in the other direction too.
        let mut low = SweepStats {
            max_lane_backoff_depth: 2,
            max_batch: 3,
            ..SweepStats::default()
        };
        low.merge(&shard);
        assert_eq!(low.max_lane_backoff_depth, 3);
        assert_eq!(low.max_batch, 7);
        assert_eq!(low.probes_sent, 10);

        // An engine that never ran (all-zero stats, e.g. an empty
        // shard) must not clobber the aggregate's final budget.
        total.merge(&SweepStats::default());
        assert_eq!(total.final_in_flight_budget, 8);
    }

    #[test]
    fn stats_merge_covers_every_field() {
        // Every field distinct and nonzero on both sides, so a counter
        // the merge drops or mis-routes shows up as a wrong value. The
        // result is destructured with NO `..`: adding a field to
        // `SweepStats` breaks this test at compile time until its merge
        // semantics are asserted here. This is the compile-time twin of
        // the MLPT-W005 analyzer lint.
        let mut merged = SweepStats {
            dispatch_cycles: 1,
            probes_sent: 2,
            replies_delivered: 3,
            malformed_replies: 4,
            mismatched_replies: 5,
            max_batch: 6,
            sessions_admitted: 7,
            sessions_completed: 8,
            sessions_deferred: 9,
            clean_cycles: 10,
            lossy_cycles: 11,
            budget_backoffs: 12,
            lane_backoffs: 13,
            final_in_flight_budget: 14,
            probes_timed_out: 15,
            retries_exhausted: 16,
            sessions_partial: 17,
            max_lane_backoff_depth: 18,
            probes_elided: 19,
            stop_set_hits: 20,
            retries_elided: 21,
            artifacts_detected: 22,
            route_recoveries: 23,
            reprobes_sent: 24,
            route_changed_partials: 25,
            stop_set_stale_hits: 26,
            stop_set_evictions: 27,
            generation_barrier_stalls: 28,
        };
        let other = SweepStats {
            dispatch_cycles: 101,
            probes_sent: 102,
            replies_delivered: 103,
            malformed_replies: 104,
            mismatched_replies: 105,
            max_batch: 106,
            sessions_admitted: 107,
            sessions_completed: 108,
            sessions_deferred: 109,
            clean_cycles: 110,
            lossy_cycles: 111,
            budget_backoffs: 112,
            lane_backoffs: 113,
            final_in_flight_budget: 114,
            probes_timed_out: 115,
            retries_exhausted: 116,
            sessions_partial: 117,
            max_lane_backoff_depth: 118,
            probes_elided: 119,
            stop_set_hits: 120,
            retries_elided: 121,
            artifacts_detected: 122,
            route_recoveries: 123,
            reprobes_sent: 124,
            route_changed_partials: 125,
            stop_set_stale_hits: 126,
            stop_set_evictions: 127,
            generation_barrier_stalls: 128,
        };
        merged.merge(&other);
        let SweepStats {
            dispatch_cycles,
            probes_sent,
            replies_delivered,
            malformed_replies,
            mismatched_replies,
            max_batch,
            sessions_admitted,
            sessions_completed,
            sessions_deferred,
            clean_cycles,
            lossy_cycles,
            budget_backoffs,
            lane_backoffs,
            final_in_flight_budget,
            probes_timed_out,
            retries_exhausted,
            sessions_partial,
            max_lane_backoff_depth,
            probes_elided,
            stop_set_hits,
            retries_elided,
            artifacts_detected,
            route_recoveries,
            reprobes_sent,
            route_changed_partials,
            stop_set_stale_hits,
            stop_set_evictions,
            generation_barrier_stalls,
        } = merged;
        // Counters sum.
        assert_eq!(dispatch_cycles, 102);
        assert_eq!(probes_sent, 104);
        assert_eq!(replies_delivered, 106);
        assert_eq!(malformed_replies, 108);
        assert_eq!(mismatched_replies, 110);
        assert_eq!(sessions_admitted, 114);
        assert_eq!(sessions_completed, 116);
        assert_eq!(sessions_deferred, 118);
        assert_eq!(clean_cycles, 120);
        assert_eq!(lossy_cycles, 122);
        assert_eq!(budget_backoffs, 124);
        assert_eq!(lane_backoffs, 126);
        assert_eq!(probes_timed_out, 130);
        assert_eq!(retries_exhausted, 132);
        assert_eq!(sessions_partial, 134);
        assert_eq!(probes_elided, 138);
        assert_eq!(stop_set_hits, 140);
        assert_eq!(retries_elided, 142);
        assert_eq!(artifacts_detected, 144);
        assert_eq!(route_recoveries, 146);
        assert_eq!(reprobes_sent, 148);
        assert_eq!(route_changed_partials, 150);
        assert_eq!(stop_set_stale_hits, 152);
        assert_eq!(stop_set_evictions, 154);
        assert_eq!(generation_barrier_stalls, 156);
        // High-water marks take the max.
        assert_eq!(max_batch, 106);
        assert_eq!(max_lane_backoff_depth, 118);
        // The budget keeps the newest nonzero value.
        assert_eq!(final_in_flight_budget, 114);
    }

    #[test]
    fn duplicate_destination_rejected() {
        let topo = canonical::simplest_diamond();
        let net = SimNetwork::new(topo.clone(), 1);
        let mut engine = SweepEngine::new(net, SRC);
        let d = topo.destination();
        engine
            .add_session(Box::new(MdaSession::new(d, TraceConfig::new(1))))
            .expect("first session");
        let err = engine
            .add_session(Box::new(MdaSession::new(d, TraceConfig::new(2))))
            .expect_err("duplicate must be rejected");
        assert_eq!(err, EngineError::DuplicateDestination(d));
    }

    /// A streamed source with a duplicate destination defers the second
    /// session until the first finishes, instead of failing: both traces
    /// come back, in source order.
    #[test]
    fn streamed_duplicate_destination_is_deferred() {
        let topo = canonical::fig1_unmeshed();
        let d = topo.destination();
        let net = SimNetwork::new(topo, 5);
        let mut engine = SweepEngine::new(net, SRC);
        let sessions: Vec<Box<dyn TraceSession>> = vec![
            Box::new(SingleFlowSession::new(d, TraceConfig::new(1), FlowId(1))),
            Box::new(SingleFlowSession::new(d, TraceConfig::new(2), FlowId(2))),
        ];
        let traces = engine.run_stream(sessions);
        assert_eq!(traces.len(), 2);
        assert!(traces.iter().all(|t| t.reached_destination));
        assert_eq!(engine.stats().sessions_deferred, 1);
        assert_eq!(engine.stats().sessions_completed, 2);
    }

    /// A single-session sweep over a plain SimNetwork is bit-identical to
    /// the blocking driver over an identically seeded network.
    #[test]
    fn single_session_sweep_matches_blocking_driver() {
        let topo = canonical::fig1_meshed();
        let d = topo.destination();

        let mut engine = SweepEngine::new(SimNetwork::new(topo.clone(), 5), SRC);
        engine
            .add_session(Box::new(MdaLiteSession::new(d, TraceConfig::new(9))))
            .expect("unique destination");
        let sweep = engine.run().remove(0);

        let mut prober = TransportProber::new(SimNetwork::new(topo, 5), SRC, d);
        let blocking = crate::mda_lite::trace_mda_lite(&mut prober, &TraceConfig::new(9));

        assert_eq!(sweep, blocking);
        assert_eq!(sweep.probes_sent, prober.probes_sent());
    }

    /// The token budget only slices rounds across cycles; it never
    /// changes what a session observes.
    #[test]
    fn tiny_in_flight_budget_is_transparent() {
        let topo = canonical::fig1_unmeshed();
        let d = topo.destination();
        let run = |max_in_flight: usize| -> (Trace, SweepStats) {
            let mut engine =
                SweepEngine::new(SimNetwork::new(topo.clone(), 3), SRC).with_config(SweepConfig {
                    max_in_flight,
                    ..SweepConfig::default()
                });
            engine
                .add_session(Box::new(MdaSession::new(d, TraceConfig::new(4))))
                .expect("unique destination");
            let trace = engine.run().remove(0);
            (trace, *engine.stats())
        };
        let (big, big_stats) = run(4096);
        let (tiny, tiny_stats) = run(2);
        assert_eq!(big, tiny);
        assert_eq!(big_stats.probes_sent, tiny_stats.probes_sent);
        assert!(tiny_stats.dispatch_cycles > big_stats.dispatch_cycles);
        assert!(tiny_stats.max_batch <= 2);
    }

    /// Retry waves across the engine match TransportProber::with_retries
    /// under total loss.
    #[test]
    fn retries_match_prober_semantics() {
        use mlpt_sim::FaultPlan;
        let topo = canonical::simplest_diamond();
        let d = topo.destination();
        let lossy = || {
            SimNetwork::builder(topo.clone())
                .faults(FaultPlan::with_loss(1.0, 0.0))
                .seed(1)
                .build()
        };

        let mut engine = SweepEngine::new(lossy(), SRC).with_config(SweepConfig {
            max_in_flight: 1024,
            retries: 2,
            ..SweepConfig::default()
        });
        engine
            .add_session(Box::new(SingleFlowSession::new(
                d,
                TraceConfig::new(1),
                FlowId(0),
            )))
            .expect("unique destination");
        let trace = engine.run().remove(0);
        assert!(!trace.reached_destination);

        let mut prober = TransportProber::new(lossy(), SRC, d).with_retries(2);
        let blocking =
            crate::single_flow::trace_single_flow(&mut prober, &TraceConfig::new(1), FlowId(0));
        assert_eq!(trace.probes_sent, prober.probes_sent());
        assert_eq!(trace.discovery, blocking.discovery);
    }

    /// Streaming and eager admission produce identical per-destination
    /// traces; streaming admits lazily (the live table stays bounded).
    #[test]
    fn streaming_matches_eager_admission() {
        let lanes: Vec<mlpt_topo::MultipathTopology> = (0..12u32)
            .map(|i| canonical::fig1_meshed().translated(0x0100_0000 * (i + 1)))
            .collect();
        let run = |admission: Admission| -> (Vec<Trace>, SweepStats) {
            let nets: Vec<SimNetwork> = lanes
                .iter()
                .enumerate()
                .map(|(i, t)| SimNetwork::new(t.clone(), 7 + i as u64))
                .collect();
            let net = mlpt_sim::MultiNetwork::new(nets).expect("unique destinations");
            let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
                max_in_flight: 16,
                admission,
                ..SweepConfig::default()
            });
            let sessions: Vec<Box<dyn TraceSession>> = lanes
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    Box::new(MdaSession::new(t.destination(), TraceConfig::new(i as u64)))
                        as Box<dyn TraceSession>
                })
                .collect();
            let traces = engine.run_stream(sessions);
            (traces, *engine.stats())
        };
        let (eager, eager_stats) = run(Admission::Eager);
        let (streaming, streaming_stats) = run(Admission::Streaming);
        assert_eq!(eager, streaming);
        assert_eq!(eager_stats.probes_sent, streaming_stats.probes_sent);
        assert_eq!(eager_stats.sessions_admitted, 12);
        assert_eq!(streaming_stats.sessions_admitted, 12);
        // The tiny budget forces streaming to hold sessions back.
        assert!(streaming_stats.max_batch <= 16);
    }

    /// The AIMD controller ramps down under loss and never changes what a
    /// session observes (per-lane streams are independent of slicing).
    #[test]
    fn adaptive_budget_is_transparent_and_backs_off() {
        use mlpt_sim::FaultPlan;
        let topo = canonical::fig1_unmeshed();
        let d = topo.destination();
        let lossy = || {
            SimNetwork::builder(topo.clone())
                .faults(FaultPlan::with_loss(0.0, 0.3))
                .seed(11)
                .build()
        };
        let run = |adaptive: Option<AdaptiveBudget>| -> (Trace, SweepStats) {
            let mut engine = SweepEngine::new(lossy(), SRC).with_config(SweepConfig {
                max_in_flight: 64,
                retries: 1,
                adaptive,
                ..SweepConfig::default()
            });
            engine
                .add_session(Box::new(MdaSession::new(d, TraceConfig::new(3))))
                .expect("unique destination");
            let trace = engine.run().remove(0);
            (trace, *engine.stats())
        };
        let (fixed, _) = run(None);
        let (adaptive, stats) = run(Some(AdaptiveBudget {
            min_in_flight: 2,
            ..AdaptiveBudget::default()
        }));
        assert_eq!(fixed, adaptive, "budget adaptation must not change results");
        assert!(stats.budget_backoffs > 0, "30% loss must trigger backoff");
        assert!(stats.lossy_cycles > 0);
        assert!(stats.final_in_flight_budget < 64);
    }

    /// Cost-aware admission starts the heaviest predicted sessions
    /// first: with a budget that admits one session at a time, the
    /// admission order is exactly descending predicted cost (ties by
    /// source index).
    #[test]
    fn cost_aware_admits_heaviest_first() {
        use std::cell::RefCell;
        use std::rc::Rc;

        /// A single-round session that records when it was admitted
        /// (its first poll) into a shared log.
        struct CostedSession {
            destination: Ipv4Addr,
            cost: u64,
            round: Vec<ProbeRequest>,
            log: Rc<RefCell<Vec<u64>>>,
            logged: bool,
            done: bool,
        }
        impl ProbeSession for CostedSession {
            fn poll(&mut self) -> SessionState {
                if !self.logged {
                    self.logged = true;
                    self.log.borrow_mut().push(self.cost);
                }
                if self.done {
                    SessionState::Finished
                } else {
                    SessionState::Probing
                }
            }
            fn next_rounds(&self) -> &[ProbeRequest] {
                &self.round
            }
            fn on_replies(&mut self, _results: &mut [Option<ProbeOutcome>]) {
                self.done = true;
            }
            fn destination(&self) -> Ipv4Addr {
                self.destination
            }
            fn predicted_cost(&self) -> u64 {
                self.cost
            }
        }

        let topo = canonical::simplest_diamond();
        let lanes: Vec<mlpt_topo::MultipathTopology> = (0..5u32)
            .map(|i| topo.translated(0x0100_0000 * (i + 1)))
            .collect();
        let nets: Vec<SimNetwork> = lanes
            .iter()
            .map(|t| SimNetwork::new(t.clone(), 3))
            .collect();
        let net = mlpt_sim::MultiNetwork::new(nets).expect("unique destinations");
        let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
            max_in_flight: 1, // admit strictly one session per cycle
            admission: Admission::CostAware,
            ..SweepConfig::default()
        });
        let log = Rc::new(RefCell::new(Vec::new()));
        let costs = [7u64, 100, 3, 55, 12];
        let sessions: Vec<CostedSession> = lanes
            .iter()
            .zip(costs)
            .map(|(t, cost)| CostedSession {
                destination: t.destination(),
                cost,
                round: vec![ProbeRequest::Udp(ProbeSpec::new(FlowId(1), 1))],
                log: Rc::clone(&log),
                logged: false,
                done: false,
            })
            .collect();
        let mut finished = 0usize;
        engine.run_sessions_with(sessions, |_, _, _| finished += 1);
        assert_eq!(finished, 5);
        assert_eq!(*log.borrow(), vec![100, 55, 12, 7, 3]);
    }

    /// The deferred-queue regression test (and the satellite bugfix's
    /// acceptance): many sessions towards the *same* destination — the
    /// worst case for the old whole-queue rescans — still come back in
    /// source order, one admission per completion, with outputs and
    /// counters identical across FIFO and cost-aware admission. The
    /// per-destination FIFO order is observable here: every session
    /// shares the single lane's RNG/clock stream, so any reordering
    /// would change the traces, not just the schedule.
    #[test]
    fn duplicate_destinations_keep_source_order() {
        const SESSIONS: usize = 24;
        let topo = canonical::fig1_unmeshed();
        let d = topo.destination();
        let run = |admission: Admission| -> (Vec<Trace>, SweepStats) {
            let net = SimNetwork::new(topo.clone(), 5);
            let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
                max_in_flight: 64,
                admission,
                ..SweepConfig::default()
            });
            // Distinct probe budgets give every session a distinct
            // predicted cost, so cost-aware ordering *would* reorder
            // them — the per-destination FIFO fix must win.
            let sessions: Vec<Box<dyn TraceSession>> = (0..SESSIONS)
                .map(|i| {
                    let config = TraceConfig::new(9).with_probe_budget(200 + i as u64);
                    Box::new(MdaSession::new(d, config)) as Box<dyn TraceSession>
                })
                .collect();
            let traces = engine.run_stream(sessions);
            (traces, *engine.stats())
        };
        let (fifo, fifo_stats) = run(Admission::Streaming);
        let (cost, cost_stats) = run(Admission::CostAware);
        assert_eq!(fifo.len(), SESSIONS);
        assert_eq!(fifo, cost, "same-destination sessions must stay FIFO");
        assert_eq!(fifo_stats.probes_sent, cost_stats.probes_sent);
        // Every session after the first waited for the lane at least
        // once; each is counted exactly once.
        assert_eq!(fifo_stats.sessions_deferred, SESSIONS as u64 - 1);
        assert_eq!(cost_stats.sessions_deferred, SESSIONS as u64 - 1);
        assert_eq!(fifo_stats.sessions_admitted, SESSIONS as u64);
        assert_eq!(fifo_stats.sessions_completed, SESSIONS as u64);
    }

    /// Cost-aware admission is pure scheduling: a multi-lane sweep's
    /// traces and wire totals are bit-identical to streaming admission.
    #[test]
    fn cost_aware_matches_streaming() {
        let lanes: Vec<mlpt_topo::MultipathTopology> = (0..10u32)
            .map(|i| canonical::fig1_meshed().translated(0x0100_0000 * (i + 1)))
            .collect();
        let run = |admission: Admission| -> (Vec<Trace>, SweepStats) {
            let nets: Vec<SimNetwork> = lanes
                .iter()
                .enumerate()
                .map(|(i, t)| SimNetwork::new(t.clone(), 11 + i as u64))
                .collect();
            let net = mlpt_sim::MultiNetwork::new(nets).expect("unique destinations");
            let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
                max_in_flight: 24,
                admission,
                ..SweepConfig::default()
            });
            let sessions: Vec<Box<dyn TraceSession>> = lanes
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    // Varied budgets → varied predicted costs → a real
                    // reorder under cost-aware admission.
                    let config = TraceConfig::new(i as u64).with_probe_budget(500 + 37 * i as u64);
                    Box::new(MdaSession::new(t.destination(), config)) as Box<dyn TraceSession>
                })
                .collect();
            let traces = engine.run_stream(sessions);
            (traces, *engine.stats())
        };
        let (streaming, streaming_stats) = run(Admission::Streaming);
        let (cost_aware, cost_stats) = run(Admission::CostAware);
        assert_eq!(streaming, cost_aware);
        assert_eq!(streaming_stats.probes_sent, cost_stats.probes_sent);
        assert_eq!(cost_stats.sessions_admitted, 10);
        assert_eq!(cost_stats.sessions_completed, 10);
    }

    /// A hand-rolled ProbeSession mixing UDP and echo requests in one
    /// round: the engine dispatches both kinds through one batch, routes
    /// the Echo Reply by its echoed tag, and reports wire probes.
    #[test]
    fn mixed_kind_session_round_trips() {
        use mlpt_topo::graph::addr;

        struct MixedSession {
            destination: Ipv4Addr,
            round: Vec<ProbeRequest>,
            got: Vec<Option<ProbeOutcome>>,
            wire: u64,
            done: bool,
        }
        impl ProbeSession for MixedSession {
            fn poll(&mut self) -> SessionState {
                if self.done {
                    SessionState::Finished
                } else {
                    SessionState::Probing
                }
            }
            fn next_rounds(&self) -> &[ProbeRequest] {
                &self.round
            }
            fn on_replies(&mut self, results: &mut [Option<ProbeOutcome>]) {
                self.got.extend(results.iter_mut().map(Option::take));
                self.done = true;
            }
            fn destination(&self) -> Ipv4Addr {
                self.destination
            }
            fn note_wire_probes(&mut self, count: u64) {
                self.wire += count;
            }
        }

        let topo = canonical::simplest_diamond();
        let d = topo.destination();
        let target = addr(1, 0);
        let session = MixedSession {
            destination: d,
            round: vec![
                ProbeRequest::Udp(ProbeSpec::new(FlowId(3), 1)),
                ProbeRequest::Echo { target },
                ProbeRequest::Udp(ProbeSpec::new(FlowId(3), 3)),
            ],
            got: Vec::new(),
            wire: 0,
            done: false,
        };
        let mut engine = SweepEngine::new(SimNetwork::new(topo, 1), SRC);
        let mut finished: Vec<(usize, MixedSession, u64)> = Vec::new();
        engine.run_sessions_with([session], |i, s, probes| finished.push((i, s, probes)));
        let (index, session, probes) = finished.pop().expect("one session");
        assert_eq!(index, 0);
        assert_eq!(probes, 3);
        assert_eq!(session.wire, 3);
        assert_eq!(session.got.len(), 3);
        let Some(ProbeOutcome::Udp(first)) = &session.got[0] else {
            panic!("expected a UDP observation, got {:?}", session.got[0]);
        };
        assert_eq!(first.responder, addr(0, 0));
        let Some(ProbeOutcome::Echo(echo)) = &session.got[1] else {
            panic!("expected an echo observation, got {:?}", session.got[1]);
        };
        assert_eq!(echo.target, target);
        let Some(ProbeOutcome::Udp(last)) = &session.got[2] else {
            panic!("expected a UDP observation, got {:?}", session.got[2]);
        };
        assert!(last.at_destination);
        assert_eq!(engine.stats().mismatched_replies, 0);
        assert_eq!(engine.stats().replies_delivered, 3);
    }

    /// The retry-wave accounting invariant from the module docs: every
    /// dispatched probe lands in exactly one bucket, clean or lossy.
    #[test]
    fn timeout_accounting_partitions_probes_sent() {
        use mlpt_sim::FaultPlan;
        let topo = canonical::fig1_meshed();
        let d = topo.destination();
        for reply_loss in [0.0, 0.4, 1.0] {
            let net = SimNetwork::builder(topo.clone())
                .faults(FaultPlan::with_loss(0.0, reply_loss))
                .seed(13)
                .build();
            let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
                retries: 2,
                ..SweepConfig::default()
            });
            engine
                .add_session(Box::new(MdaLiteSession::new(d, TraceConfig::new(2))))
                .expect("unique destination");
            let _ = engine.run();
            let stats = engine.stats();
            assert_eq!(
                stats.probes_timed_out
                    + stats.replies_delivered
                    + stats.malformed_replies
                    + stats.mismatched_replies,
                stats.probes_sent,
                "accounting must partition probes_sent at loss {reply_loss}"
            );
            if reply_loss == 0.0 {
                assert_eq!(stats.probes_timed_out, 0);
                assert_eq!(stats.retries_exhausted, 0);
            } else {
                assert!(stats.probes_timed_out > 0);
            }
            if reply_loss == 1.0 {
                assert!(stats.retries_exhausted > 0);
                assert!(
                    stats.max_lane_backoff_depth > 0,
                    "fully lost waves must deepen the lane's deadline exponent"
                );
            }
        }
    }

    /// A destination that goes dark mid-trace stalls its session; the
    /// watchdog aborts it and the trace reports an honest partial
    /// outcome instead of the sweep hanging or burning its retry budget
    /// forever.
    #[test]
    fn stall_watchdog_reports_partial_outcome() {
        use crate::trace::{PartialReason, TraceOutcome};
        use mlpt_sim::{FaultSchedule, FaultSpec};
        let topo = canonical::fig1_unmeshed();
        let d = topo.destination();
        let net = SimNetwork::builder(topo)
            .fault_schedule(FaultSchedule::constant(FaultSpec::none().with_blackhole(3)))
            .seed(5)
            .build();
        let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
            retries: 1,
            stall_rounds: 3,
            ..SweepConfig::default()
        });
        engine
            .add_session(Box::new(MdaLiteSession::new(d, TraceConfig::new(7))))
            .expect("unique destination");
        let trace = engine.run().remove(0);
        assert!(!trace.reached_destination);
        assert!(trace.outcome.is_partial());
        let TraceOutcome::Partial {
            reason: PartialReason::Stalled { silent_rounds },
        } = trace.outcome
        else {
            panic!(
                "expected a stalled partial outcome, got {:?}",
                trace.outcome
            );
        };
        assert_eq!(silent_rounds, 3);
        // The prefix below the black hole was still discovered honestly.
        assert!(!trace.vertices_at(1).is_empty());
        assert!(!trace.vertices_at(2).is_empty());
        let stats = engine.stats();
        assert_eq!(stats.sessions_partial, 1);
        assert_eq!(stats.sessions_completed, 1);
        assert!(stats.probes_timed_out > 0);
    }

    /// With the watchdog off (the default), outcomes stay `Complete`
    /// and behaviour is unchanged — the robustness layer is opt-in.
    #[test]
    fn watchdog_disabled_by_default() {
        let topo = canonical::fig1_unmeshed();
        let d = topo.destination();
        let mut engine = SweepEngine::new(SimNetwork::new(topo, 3), SRC);
        engine
            .add_session(Box::new(MdaLiteSession::new(d, TraceConfig::new(3))))
            .expect("unique destination");
        let trace = engine.run().remove(0);
        assert_eq!(trace.outcome, crate::trace::TraceOutcome::Complete);
        assert_eq!(engine.stats().sessions_partial, 0);
    }

    /// Retry deadlines and the stall watchdog are protocol state: a
    /// sweep under a hostile schedule produces bit-identical traces
    /// whatever the admission mode or budget slicing.
    #[test]
    fn degraded_sweeps_stay_deterministic_across_schedulers() {
        use mlpt_sim::FaultSchedule;
        let lanes: Vec<mlpt_topo::MultipathTopology> = (0..6u32)
            .map(|i| canonical::fig1_meshed().translated(0x0100_0000 * (i + 1)))
            .collect();
        let run = |admission: Admission, max_in_flight: usize| -> (Vec<Trace>, SweepStats) {
            let nets: Vec<SimNetwork> = lanes
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    SimNetwork::builder(t.clone())
                        .fault_schedule(FaultSchedule::preset("flap").expect("known preset"))
                        .seed(17 + i as u64)
                        .build()
                })
                .collect();
            let net = mlpt_sim::MultiNetwork::new(nets).expect("unique destinations");
            let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
                max_in_flight,
                retries: 2,
                stall_rounds: 4,
                admission,
                ..SweepConfig::default()
            });
            let sessions: Vec<Box<dyn TraceSession>> = lanes
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    Box::new(MdaSession::new(t.destination(), TraceConfig::new(i as u64)))
                        as Box<dyn TraceSession>
                })
                .collect();
            let traces = engine.run_stream(sessions);
            (traces, *engine.stats())
        };
        let (eager, eager_stats) = run(Admission::Eager, 512);
        let (streaming, _) = run(Admission::Streaming, 16);
        let (cost_aware, cost_stats) = run(Admission::CostAware, 48);
        assert_eq!(eager, streaming);
        assert_eq!(eager, cost_aware);
        assert_eq!(eager_stats.probes_sent, cost_stats.probes_sent);
        assert_eq!(eager_stats.sessions_partial, cost_stats.sessions_partial);
    }

    /// The tentpole end-to-end: sweeping a Doubletree family with a
    /// shared stop set elides the shared near-source prefix for every
    /// generation after the first, while the discovered per-destination
    /// paths — probed hops plus the prefix reconstructed from the set —
    /// stay exactly the classic single-flow paths, and every elided
    /// probe is accounted against what the classic sweep spent.
    #[test]
    fn shared_stop_set_elides_prefix_probes() {
        let lanes: Vec<mlpt_topo::MultipathTopology> = (0..16)
            .map(|i| canonical::shared_prefix_lane(12, 3, i))
            .collect();
        type Out = (Vec<Trace>, SweepStats, Option<StopSnapshot>);
        let run = |stop_set: Option<StopSetConfig>| -> Out {
            let nets: Vec<SimNetwork> = lanes
                .iter()
                .enumerate()
                .map(|(i, t)| SimNetwork::new(t.clone(), 5 + i as u64))
                .collect();
            let net = mlpt_sim::MultiNetwork::new(nets).expect("unique destinations");
            let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
                stop_set,
                ..SweepConfig::default()
            });
            let sessions: Vec<Box<dyn TraceSession>> = lanes
                .iter()
                .map(|t| {
                    Box::new(SingleFlowSession::new(
                        t.destination(),
                        TraceConfig::new(3),
                        FlowId(7),
                    )) as Box<dyn TraceSession>
                })
                .collect();
            let traces = engine.run_stream(sessions);
            (traces, *engine.stats(), engine.stop_snapshot().cloned())
        };
        let (classic, classic_stats, no_snap) = run(None);
        assert!(no_snap.is_none(), "no stop set, no snapshot");
        let (stopped, stats, snap) = run(Some(StopSetConfig {
            commit_width: 4,
            ..StopSetConfig::default()
        }));
        let snap = snap.expect("stop-set run publishes its final snapshot");
        assert!(stats.stop_set_hits > 0, "later generations must stop early");
        assert!(stats.probes_elided > 0);
        assert!(stats.probes_sent < classic_stats.probes_sent);
        // Exact bookkeeping: every probe the classic sweep spent is
        // either sent or elided under the stop set, never dropped.
        assert_eq!(
            stats.probes_sent + stats.probes_elided,
            classic_stats.probes_sent
        );
        let path_of = |trace: &Trace| -> Vec<(u8, Ipv4Addr)> {
            (1..=trace.discovery.max_observed_ttl())
                .flat_map(|ttl| {
                    trace
                        .discovery
                        .vertices_at(ttl)
                        .iter()
                        .map(move |v| (ttl, *v))
                })
                .collect()
        };
        for (classic_trace, stopped_trace) in classic.iter().zip(&stopped) {
            assert!(stopped_trace.reached_destination);
            let probed = path_of(stopped_trace);
            let &(first_ttl, first_iface) = probed.first().expect("non-empty trace");
            let mut full: Vec<(u8, Ipv4Addr)> = snap
                .reconstruct_prefix(first_ttl, first_iface)
                .into_iter()
                .chain(probed)
                .collect();
            full.sort_unstable();
            full.dedup();
            assert_eq!(
                full,
                path_of(classic_trace),
                "probed hops + reconstructed prefix must equal the classic path"
            );
        }
    }

    /// `CostAwareWindowed(K)` reorders only a sliding window, yet —
    /// determinism rule 5 — every trace and wire total matches the
    /// full-drain `CostAware` run (and the windowed run admits the same
    /// session count).
    #[test]
    fn windowed_cost_aware_matches_full_drain() {
        let lanes: Vec<mlpt_topo::MultipathTopology> = (0..10u32)
            .map(|i| canonical::fig1_meshed().translated(0x0100_0000 * (i + 1)))
            .collect();
        let run = |admission: Admission| -> (Vec<Trace>, SweepStats) {
            let nets: Vec<SimNetwork> = lanes
                .iter()
                .enumerate()
                .map(|(i, t)| SimNetwork::new(t.clone(), 11 + i as u64))
                .collect();
            let net = mlpt_sim::MultiNetwork::new(nets).expect("unique destinations");
            let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
                max_in_flight: 24,
                admission,
                ..SweepConfig::default()
            });
            let sessions: Vec<Box<dyn TraceSession>> = lanes
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let config = TraceConfig::new(i as u64).with_probe_budget(500 + 37 * i as u64);
                    Box::new(MdaSession::new(t.destination(), config)) as Box<dyn TraceSession>
                })
                .collect();
            let traces = engine.run_stream(sessions);
            (traces, *engine.stats())
        };
        let (full, full_stats) = run(Admission::CostAware);
        for window in [1usize, 3, 100] {
            let (windowed, windowed_stats) = run(Admission::CostAwareWindowed(window));
            assert_eq!(full, windowed, "window {window} must not change results");
            assert_eq!(full_stats.probes_sent, windowed_stats.probes_sent);
            assert_eq!(windowed_stats.sessions_admitted, 10);
            assert_eq!(windowed_stats.sessions_completed, 10);
        }
    }

    /// The satellite bugfix's regression: a timed-out probe whose
    /// `(interface, TTL)` the stop set meanwhile confirmed (via a
    /// same-destination same-flow contributor) is elided instead of
    /// retried — the follower leans on Paris flow determinism and
    /// finishes without burning retry waves into a lossy path.
    #[test]
    fn timed_out_probe_with_confirmed_interface_is_elided() {
        use mlpt_sim::FaultPlan;
        let topo = canonical::shared_prefix_lane(12, 3, 0);
        let d = topo.destination();
        let run = |stop_set: Option<StopSetConfig>| -> (Vec<Trace>, SweepStats) {
            let net = SimNetwork::builder(topo.clone())
                .faults(FaultPlan::with_loss(0.0, 0.4))
                .seed(37)
                .build();
            let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
                retries: 4,
                stop_set,
                ..SweepConfig::default()
            });
            // Same destination, same flow: the engine defers the second
            // session until the first finishes, which also makes it the
            // next stop-set generation under `commit_width: 1`.
            let sessions: Vec<Box<dyn TraceSession>> = vec![
                Box::new(SingleFlowSession::new(d, TraceConfig::new(1), FlowId(7))),
                Box::new(SingleFlowSession::new(d, TraceConfig::new(2), FlowId(7))),
            ];
            let traces = engine.run_stream(sessions);
            (traces, *engine.stats())
        };
        let (classic, classic_stats) = run(None);
        assert!(classic.iter().all(|t| t.reached_destination));
        assert_eq!(classic_stats.retries_elided, 0, "no stop set, no elision");
        let (traces, stats) = run(Some(StopSetConfig {
            commit_width: 1,
            ..StopSetConfig::default()
        }));
        assert!(traces.iter().all(|t| t.reached_destination));
        assert!(
            stats.retries_elided > 0,
            "confirmed-interface timeouts must be elided, not retried"
        );
        // Elision never disturbs the probe accounting partition.
        assert_eq!(
            stats.probes_timed_out
                + stats.replies_delivered
                + stats.malformed_replies
                + stats.mismatched_replies,
            stats.probes_sent
        );
    }

    /// Mid-flight cost reappraisal: the fair-quota gather pass consults
    /// `predicted_cost()` every cycle, so a session whose cost collapses
    /// after admission stops hogging lane allowance — and one that stays
    /// cheap is sliced down to its real appetite.
    #[test]
    fn gather_reappraises_predicted_cost_each_cycle() {
        /// Ten one-probe-per-TTL requests in a single round, with a
        /// constant advertised cost.
        struct AppetiteSession {
            destination: Ipv4Addr,
            cost: u64,
            round: Vec<ProbeRequest>,
            done: bool,
        }
        impl ProbeSession for AppetiteSession {
            fn poll(&mut self) -> SessionState {
                if self.done {
                    SessionState::Finished
                } else {
                    SessionState::Probing
                }
            }
            fn next_rounds(&self) -> &[ProbeRequest] {
                &self.round
            }
            fn on_replies(&mut self, _results: &mut [Option<ProbeOutcome>]) {
                self.done = true;
            }
            fn destination(&self) -> Ipv4Addr {
                self.destination
            }
            fn predicted_cost(&self) -> u64 {
                self.cost
            }
        }
        let topo = canonical::shared_prefix_lane(12, 3, 0);
        let run = |cost: u64| -> SweepStats {
            let net = SimNetwork::new(topo.clone(), 3);
            let mut engine = SweepEngine::new(net, SRC);
            let session = AppetiteSession {
                destination: topo.destination(),
                cost,
                round: (1..=10)
                    .map(|t| ProbeRequest::Udp(ProbeSpec::new(FlowId(1), t)))
                    .collect(),
                done: false,
            };
            engine.run_sessions_with(vec![session], |_, _, _| {});
            *engine.stats()
        };
        // Cost 0 = "no estimate": the cap stays open, the whole round
        // crosses in one dispatch.
        let open = run(0);
        assert_eq!(open.probes_sent, 10);
        assert_eq!(open.max_batch, 10);
        // A collapsed cost of 1 is re-read every cycle: the same round
        // is sliced to one probe per dispatch.
        let capped = run(1);
        assert_eq!(capped.probes_sent, 10);
        assert_eq!(capped.max_batch, 1);
        assert!(capped.dispatch_cycles >= 10);
    }
}
