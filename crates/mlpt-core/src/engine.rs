//! The concurrent sweep engine: many trace sessions over one transport.
//!
//! Large-scale tracing is dominated by how many destinations can be kept
//! in flight at once (Donnet et al., "Efficient Route Tracing from a
//! Single Source"). The [`SweepEngine`] exploits the sans-IO split of
//! [`crate::session`]: it holds a table of [`TraceSession`]s — one per
//! destination — and each dispatch cycle
//!
//! 1. **gathers** every session's pending round into one large
//!    cross-destination [`PacketBatch`], bounded by an in-flight token
//!    budget ([`SweepConfig::max_in_flight`]);
//! 2. crosses the shared [`BatchTransport`] **once**;
//! 3. **demultiplexes** replies back to their sessions by the
//!    destination/flow/sequence tags recovered from the quoted probe
//!    inside each ICMP reply ([`mlpt_wire::probe::ReplyPacket`]) — not by
//!    slot position — so interleaved, lost and malformed replies are all
//!    handled;
//! 4. hands completed rounds back to their sessions, which advance their
//!    state machines and produce the next rounds.
//!
//! Per destination, the engine emits the *identical* packet sequence a
//! dedicated [`crate::prober::TransportProber`] would (same sequence
//! numbers, same retry waves), so a sweep's per-destination traces are
//! bit-identical to running each trace sequentially on its own — the
//! property tests in `tests/sweep_equivalence.rs` enforce exactly that.
//!
//! Malformed or mismatched replies never panic a sweep: the demux path
//! is unwrap-free, counting anomalies in [`SweepStats`] and treating the
//! affected probes as lost (which the retry machinery then handles).

use crate::prober::{ProbeObservation, ProbeSpec};
use crate::session::{SessionState, TraceSession};
use crate::trace::Trace;
use mlpt_wire::probe::{build_udp_probe_into, parse_reply, ProbePacket};
use mlpt_wire::transport::{BatchTransport, PacketBatch, ReplyBatch};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Tuning knobs of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Token budget: the most probes the engine puts on the wire in one
    /// dispatch cycle, across all sessions. Rounds that do not fit wait
    /// for the next cycle (order within each session is preserved).
    pub max_in_flight: usize,
    /// Per-round retry waves for unanswered probes, matching
    /// [`crate::prober::TransportProber::with_retries`] semantics.
    pub retries: u8,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            max_in_flight: 1024,
            retries: 0,
        }
    }
}

/// Errors surfaced by the engine's session table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Two sessions trace towards the same destination: their reply tags
    /// would be ambiguous, so the table refuses the second one.
    DuplicateDestination(Ipv4Addr),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DuplicateDestination(d) => {
                write!(f, "a session towards {d} is already registered")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Counters describing one sweep's dispatch behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Transport crossings (send_batch calls) performed.
    pub dispatch_cycles: u64,
    /// Probe packets put on the wire (retries included).
    pub probes_sent: u64,
    /// Replies successfully demultiplexed to a session.
    pub replies_delivered: u64,
    /// Replies that failed to parse as IPv4+ICMP.
    pub malformed_replies: u64,
    /// Parsed replies whose tags matched no in-flight probe, or whose
    /// quoted flow contradicted the probe they claimed to answer.
    pub mismatched_replies: u64,
    /// Largest single dispatch batch.
    pub max_batch: usize,
}

impl SweepStats {
    /// Mean probes per transport crossing — the dispatch-throughput
    /// metric (each crossing is the analogue of one `sendmmsg` syscall
    /// plus one round-trip wait on a real network).
    pub fn probes_per_dispatch(&self) -> f64 {
        if self.dispatch_cycles == 0 {
            0.0
        } else {
            self.probes_sent as f64 / self.dispatch_cycles as f64
        }
    }
}

/// Demultiplexer for in-flight probes: maps the (destination, sequence)
/// tag recovered from a reply's quoted probe back to the dispatch entry
/// that sent it. Sequence numbers are per-session, destinations are
/// unique per session, so the pair is unique while a probe is in flight.
#[derive(Debug, Default)]
struct ReplyDemux {
    in_flight: HashMap<(u32, u16), usize>,
}

impl ReplyDemux {
    fn clear(&mut self) {
        self.in_flight.clear();
    }

    /// Registers a dispatched probe; returns false on a tag collision
    /// (which the caller counts — the older entry survives).
    fn register(&mut self, destination: Ipv4Addr, sequence: u16, token: usize) -> bool {
        match self.in_flight.entry((u32::from(destination), sequence)) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(token);
                true
            }
        }
    }

    /// Claims the probe a reply answers, by tag. Each probe can be
    /// claimed once; unknown tags return `None`.
    fn claim(&mut self, destination: Ipv4Addr, sequence: u16) -> Option<usize> {
        self.in_flight.remove(&(u32::from(destination), sequence))
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.in_flight.len()
    }
}

/// A registered session plus its per-destination wire state.
struct SessionSlot {
    session: Box<dyn TraceSession>,
    destination: Ipv4Addr,
    /// Per-session sequence counter (same discipline as
    /// `TransportProber::next_sequence`: first probe is sequence 1).
    sequence: u16,
    /// Wire-level packets sent for this session, retries included.
    probes_sent: u64,
    /// The round currently being serviced (copied from the session).
    round: Vec<ProbeSpec>,
    /// One result slot per round spec.
    results: Vec<Option<ProbeObservation>>,
    /// Spec indices of the current retry wave, in dispatch order.
    wave: Vec<usize>,
    /// Next index into `wave` to dispatch.
    cursor: usize,
    /// Current retry wave number (0 = first transmission).
    attempt: u8,
    /// True while a round is being serviced.
    active: bool,
    finished: bool,
}

impl SessionSlot {
    fn next_sequence(&mut self) -> u16 {
        self.sequence = self.sequence.wrapping_add(1);
        self.sequence
    }
}

/// One in-flight probe of the current dispatch cycle.
#[derive(Debug, Clone, Copy)]
struct DispatchEntry {
    session: usize,
    spec: usize,
}

/// The sweep scheduler (see module docs).
pub struct SweepEngine<T: BatchTransport> {
    transport: T,
    source: Ipv4Addr,
    config: SweepConfig,
    slots: Vec<SessionSlot>,
    stats: SweepStats,
    demux: ReplyDemux,
    packets: PacketBatch,
    replies: ReplyBatch,
    dispatch: Vec<DispatchEntry>,
}

impl<T: BatchTransport> SweepEngine<T> {
    /// Creates an engine over a shared transport, probing from `source`.
    pub fn new(transport: T, source: Ipv4Addr) -> Self {
        Self {
            transport,
            source,
            config: SweepConfig::default(),
            slots: Vec::new(),
            stats: SweepStats::default(),
            demux: ReplyDemux::default(),
            packets: PacketBatch::new(),
            replies: ReplyBatch::new(),
            dispatch: Vec::new(),
        }
    }

    /// Replaces the tuning knobs.
    pub fn with_config(mut self, config: SweepConfig) -> Self {
        self.config = config;
        self.config.max_in_flight = self.config.max_in_flight.max(1);
        self
    }

    /// Registers a session; its destination must be unique in the table.
    /// Returns the session's index (traces come back in the same order).
    pub fn add_session(&mut self, session: Box<dyn TraceSession>) -> Result<usize, EngineError> {
        let destination = session.destination();
        if self.slots.iter().any(|s| s.destination == destination) {
            return Err(EngineError::DuplicateDestination(destination));
        }
        self.slots.push(SessionSlot {
            session,
            destination,
            sequence: 0,
            probes_sent: 0,
            round: Vec::new(),
            results: Vec::new(),
            wave: Vec::new(),
            cursor: 0,
            attempt: 0,
            active: false,
            finished: false,
        });
        Ok(self.slots.len() - 1)
    }

    /// Dispatch statistics so far.
    pub fn stats(&self) -> &SweepStats {
        &self.stats
    }

    /// Consumes the engine, returning the transport.
    pub fn into_transport(self) -> T {
        self.transport
    }

    /// Drives every registered session to completion, returning their
    /// traces in registration order.
    pub fn run(&mut self) -> Vec<Trace> {
        let mut traces: Vec<Option<Trace>> = self.slots.iter().map(|_| None).collect();

        loop {
            self.refill_rounds(&mut traces);
            if !self.gather_packets() {
                break;
            }
            self.transport.send_batch(&self.packets, &mut self.replies);
            self.stats.dispatch_cycles += 1;
            self.stats.probes_sent += self.packets.len() as u64;
            self.stats.max_batch = self.stats.max_batch.max(self.packets.len());
            self.demux_replies();
            self.resolve_waves();
        }

        // Every slot is finished once no packets can be gathered; the
        // fallback take_trace covers the (unreachable) partial case
        // without panicking.
        traces
            .into_iter()
            .zip(&mut self.slots)
            .map(|(trace, slot)| trace.unwrap_or_else(|| slot.session.take_trace(slot.probes_sent)))
            .collect()
    }

    /// Polls idle sessions for their next rounds, collecting traces of
    /// sessions that finished.
    fn refill_rounds(&mut self, traces: &mut [Option<Trace>]) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.finished || slot.active {
                continue;
            }
            match slot.session.poll() {
                SessionState::Finished => {
                    slot.finished = true;
                    if let Some(out) = traces.get_mut(i) {
                        *out = Some(slot.session.take_trace(slot.probes_sent));
                    }
                }
                SessionState::Probing => {
                    let specs = slot.session.next_rounds();
                    if specs.is_empty() {
                        // Defensive: a session must not yield an empty
                        // round; feed it empty replies so it advances.
                        debug_assert!(false, "session yielded an empty round");
                        slot.session.on_replies(&[]);
                        continue;
                    }
                    slot.round.clear();
                    slot.round.extend_from_slice(specs);
                    slot.results.clear();
                    slot.results.resize(slot.round.len(), None);
                    slot.wave.clear();
                    slot.wave.extend(0..slot.round.len());
                    slot.cursor = 0;
                    slot.attempt = 0;
                    slot.active = true;
                }
            }
        }
    }

    /// Builds the cycle's cross-destination packet batch under the token
    /// budget. Returns false when nothing is left to dispatch (all
    /// sessions finished).
    fn gather_packets(&mut self) -> bool {
        self.packets.clear();
        self.dispatch.clear();
        self.demux.clear();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if !slot.active {
                continue;
            }
            while slot.cursor < slot.wave.len() && self.packets.len() < self.config.max_in_flight {
                let spec_idx = slot.wave[slot.cursor];
                slot.cursor += 1;
                let Some(&spec) = slot.round.get(spec_idx) else {
                    debug_assert!(false, "wave index out of round bounds");
                    continue;
                };
                let sequence = slot.next_sequence();
                let probe = ProbePacket {
                    source: self.source,
                    destination: slot.destination,
                    flow: spec.flow,
                    ttl: spec.ttl,
                    sequence,
                };
                self.packets
                    .push_with(|buf| build_udp_probe_into(&probe, buf));
                if !self
                    .demux
                    .register(slot.destination, sequence, self.dispatch.len())
                {
                    // A 16-bit sequence collision inside one cycle: only
                    // possible for absurdly large rounds. Count it and
                    // let the probe resolve as lost.
                    self.stats.mismatched_replies += 1;
                }
                self.dispatch.push(DispatchEntry {
                    session: i,
                    spec: spec_idx,
                });
                slot.probes_sent += 1;
            }
        }
        !self.packets.is_empty()
    }

    /// Routes every reply of the cycle back to its probe by quoted tags.
    fn demux_replies(&mut self) {
        for slot_idx in 0..self.replies.len() {
            let Some(bytes) = self.replies.get(slot_idx) else {
                continue; // lost on the wire: resolved as unanswered
            };
            let Ok(parsed) = parse_reply(bytes) else {
                self.stats.malformed_replies += 1;
                continue;
            };
            let (Some(dest), Some(sequence)) = (parsed.probe_destination, parsed.probe_sequence)
            else {
                // No usable quote (e.g. a stray echo reply): nothing to
                // demultiplex against.
                self.stats.mismatched_replies += 1;
                continue;
            };
            let Some(token) = self.demux.claim(dest, sequence) else {
                self.stats.mismatched_replies += 1;
                continue;
            };
            let Some(entry) = self.dispatch.get(token) else {
                debug_assert!(false, "demux token out of bounds");
                self.stats.mismatched_replies += 1;
                continue;
            };
            let (session_idx, spec_idx) = (entry.session, entry.spec);

            let Some(slot) = self.slots.get_mut(session_idx) else {
                debug_assert!(false, "dispatch entry names an unknown session");
                self.stats.mismatched_replies += 1;
                continue;
            };
            let Some(&spec) = slot.round.get(spec_idx) else {
                debug_assert!(false, "dispatch entry outlived its round");
                self.stats.mismatched_replies += 1;
                continue;
            };
            // The shared acceptance rule (also TransportProber's): the
            // reply must quote the flow we probed with.
            let Some(obs) = ProbeObservation::from_reply(
                spec,
                parsed,
                slot.destination,
                self.replies.timestamp(slot_idx),
            ) else {
                self.stats.mismatched_replies += 1;
                continue;
            };
            if let Some(result) = slot.results.get_mut(spec_idx) {
                *result = Some(obs);
                self.stats.replies_delivered += 1;
            }
        }
    }

    /// Completes retry waves and hands finished rounds to their sessions.
    fn resolve_waves(&mut self) {
        for slot in &mut self.slots {
            if !slot.active || slot.cursor < slot.wave.len() {
                continue; // wave still (partially) undispatched
            }
            // The transport is synchronous: everything dispatched so far
            // has resolved. Unanswered specs feed the next retry wave.
            let still: Vec<usize> = slot
                .wave
                .iter()
                .copied()
                .filter(|&s| slot.results.get(s).is_some_and(Option::is_none))
                .collect();
            if still.is_empty() || slot.attempt >= self.config.retries {
                slot.session.on_replies(&slot.results);
                slot.active = false;
            } else {
                slot.attempt += 1;
                slot.wave = still;
                slot.cursor = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TraceConfig;
    use crate::prober::{Prober, TransportProber};
    use crate::session::{MdaLiteSession, MdaSession, SingleFlowSession};
    use crate::trace::Trace;
    use mlpt_sim::SimNetwork;
    use mlpt_topo::canonical;
    use mlpt_wire::FlowId;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    fn dest(i: u16) -> Ipv4Addr {
        Ipv4Addr::new(198, 51, (i >> 8) as u8, i as u8)
    }

    #[test]
    fn demux_routes_interleaved_replies() {
        let mut demux = ReplyDemux::default();
        // Two sessions' probes registered interleaved.
        assert!(demux.register(dest(1), 1, 10));
        assert!(demux.register(dest(2), 1, 20));
        assert!(demux.register(dest(1), 2, 11));
        assert!(demux.register(dest(2), 2, 21));
        // Replies claimed out of order still find their probes.
        assert_eq!(demux.claim(dest(2), 2), Some(21));
        assert_eq!(demux.claim(dest(1), 1), Some(10));
        assert_eq!(demux.claim(dest(2), 1), Some(20));
        assert_eq!(demux.claim(dest(1), 2), Some(11));
    }

    #[test]
    fn demux_lost_and_unknown_replies() {
        let mut demux = ReplyDemux::default();
        assert!(demux.register(dest(1), 7, 0));
        // An unknown tag (wrong destination or sequence) claims nothing.
        assert_eq!(demux.claim(dest(1), 8), None);
        assert_eq!(demux.claim(dest(9), 7), None);
        // A lost reply simply never claims; the entry drains on clear.
        assert_eq!(demux.len(), 1);
        demux.clear();
        assert_eq!(demux.len(), 0);
        // Double delivery: the second claim of the same tag fails.
        assert!(demux.register(dest(1), 7, 0));
        assert_eq!(demux.claim(dest(1), 7), Some(0));
        assert_eq!(demux.claim(dest(1), 7), None);
    }

    #[test]
    fn demux_rejects_tag_collisions() {
        let mut demux = ReplyDemux::default();
        assert!(demux.register(dest(1), 1, 0));
        assert!(!demux.register(dest(1), 1, 5), "collision must be flagged");
        // The first registration survives.
        assert_eq!(demux.claim(dest(1), 1), Some(0));
    }

    #[test]
    fn duplicate_destination_rejected() {
        let topo = canonical::simplest_diamond();
        let net = SimNetwork::new(topo.clone(), 1);
        let mut engine = SweepEngine::new(net, SRC);
        let d = topo.destination();
        engine
            .add_session(Box::new(MdaSession::new(d, TraceConfig::new(1))))
            .expect("first session");
        let err = engine
            .add_session(Box::new(MdaSession::new(d, TraceConfig::new(2))))
            .expect_err("duplicate must be rejected");
        assert_eq!(err, EngineError::DuplicateDestination(d));
    }

    /// A single-session sweep over a plain SimNetwork is bit-identical to
    /// the blocking driver over an identically seeded network.
    #[test]
    fn single_session_sweep_matches_blocking_driver() {
        let topo = canonical::fig1_meshed();
        let d = topo.destination();

        let mut engine = SweepEngine::new(SimNetwork::new(topo.clone(), 5), SRC);
        engine
            .add_session(Box::new(MdaLiteSession::new(d, TraceConfig::new(9))))
            .expect("unique destination");
        let sweep = engine.run().remove(0);

        let mut prober = TransportProber::new(SimNetwork::new(topo, 5), SRC, d);
        let blocking = crate::mda_lite::trace_mda_lite(&mut prober, &TraceConfig::new(9));

        assert_eq!(sweep, blocking);
        assert_eq!(sweep.probes_sent, prober.probes_sent());
    }

    /// The token budget only slices rounds across cycles; it never
    /// changes what a session observes.
    #[test]
    fn tiny_in_flight_budget_is_transparent() {
        let topo = canonical::fig1_unmeshed();
        let d = topo.destination();
        let run = |max_in_flight: usize| -> (Trace, SweepStats) {
            let mut engine =
                SweepEngine::new(SimNetwork::new(topo.clone(), 3), SRC).with_config(SweepConfig {
                    max_in_flight,
                    retries: 0,
                });
            engine
                .add_session(Box::new(MdaSession::new(d, TraceConfig::new(4))))
                .expect("unique destination");
            let trace = engine.run().remove(0);
            (trace, *engine.stats())
        };
        let (big, big_stats) = run(4096);
        let (tiny, tiny_stats) = run(2);
        assert_eq!(big, tiny);
        assert_eq!(big_stats.probes_sent, tiny_stats.probes_sent);
        assert!(tiny_stats.dispatch_cycles > big_stats.dispatch_cycles);
        assert!(tiny_stats.max_batch <= 2);
    }

    /// Retry waves across the engine match TransportProber::with_retries
    /// under total loss.
    #[test]
    fn retries_match_prober_semantics() {
        use mlpt_sim::FaultPlan;
        let topo = canonical::simplest_diamond();
        let d = topo.destination();
        let lossy = || {
            SimNetwork::builder(topo.clone())
                .faults(FaultPlan::with_loss(1.0, 0.0))
                .seed(1)
                .build()
        };

        let mut engine = SweepEngine::new(lossy(), SRC).with_config(SweepConfig {
            max_in_flight: 1024,
            retries: 2,
        });
        engine
            .add_session(Box::new(SingleFlowSession::new(
                d,
                TraceConfig::new(1),
                FlowId(0),
            )))
            .expect("unique destination");
        let trace = engine.run().remove(0);
        assert!(!trace.reached_destination);

        let mut prober = TransportProber::new(lossy(), SRC, d).with_retries(2);
        let blocking =
            crate::single_flow::trace_single_flow(&mut prober, &TraceConfig::new(1), FlowId(0));
        assert_eq!(trace.probes_sent, prober.probes_sent());
        assert_eq!(trace.discovery, blocking.discovery);
    }
}
