//! Core algorithms of Multilevel MDA-Lite Paris Traceroute.
//!
//! This crate implements the paper's route-tracing algorithms over any
//! byte-level [`mlpt_wire::PacketTransport`]:
//!
//! * [`stopping`] — the failure-controlled stopping points n_k
//!   (Veitch et al.), with the exact inclusion–exclusion rule and the
//!   paper's Table 1 preset.
//! * [`session`] — the algorithms themselves, as resumable **sans-IO
//!   state machines** ([`TraceSession`]): MDA, MDA-Lite and single-flow
//!   emit probe rounds and consume observations without touching a
//!   transport, so one implementation serves both blocking drivers and
//!   the concurrent sweep engine. The [`ProbeSession`] generalisation
//!   speaks typed probe requests (TTL-limited UDP *and* ICMP echo), so
//!   protocols beyond tracing — above all alias resolution — run as
//!   sessions too.
//! * [`engine`] — the [`SweepEngine`]: many sessions (one per
//!   destination) interleaved over one shared [`mlpt_wire`] transport,
//!   with cross-destination batch merging, kind-tagged reply
//!   demultiplexing and an in-flight token budget.
//! * [`shard`] — the [`ShardedSweepEngine`]: the destination space
//!   partitioned deterministically across N engine shards driven on
//!   scoped worker threads, with the shared stop set committed across
//!   shards at source-order generation barriers (bit-identical to the
//!   single engine for any shard count).
//! * [`mda`] — the classic Multipath Detection Algorithm with node
//!   control (thin blocking driver over its session).
//! * [`mda_lite`] — MDA-Lite: hop-by-hop discovery, deterministic edge
//!   completion, the φ-probe meshing test, the width-asymmetry test, and
//!   switchover to the full MDA (thin blocking driver).
//! * [`single_flow`] — Paris traceroute with a single flow identifier
//!   (the RIPE Atlas baseline; thin blocking driver).
//! * [`prober`] — the probe/observe interface and its packet-building
//!   implementation, plus the observation log that feeds alias
//!   resolution.
//! * [`discovery`] / [`trace`] — the evidence base shared by the
//!   algorithms and the trace result type with topology conversion.
//! * [`detect`] — per-packet load-balancer detection (an extension the
//!   paper's model assumes away; Sec. 2.1 assumption 2).
//! * [`stopset`] — Doubletree-style sweep-wide shared stop sets:
//!   `(TTL, interface)` pairs confirmed by earlier sessions let later
//!   sessions start mid-path, probe backward to a shared-stop hit, and
//!   elide the redundant near-source prefix.
//! * [`artifact`] — route-change artifact detection (Viger et al.
//!   taxonomy) and the bounded audit/recovery protocol sessions run
//!   after their stopping rule fires, under a [`ReprobeBudget`].
//!
//! # Quickstart
//!
//! ```
//! use mlpt_core::prelude::*;
//! use mlpt_sim::SimNetwork;
//! use mlpt_topo::canonical;
//!
//! let topology = canonical::fig1_unmeshed();
//! let destination = topology.destination();
//! let network = SimNetwork::new(topology, 42);
//! let mut prober = TransportProber::new(network, "192.0.2.1".parse().unwrap(), destination);
//! let trace = trace_mda_lite(&mut prober, &TraceConfig::new(42));
//! assert!(trace.reached_destination);
//! assert_eq!(trace.vertices_at(2).len(), 4); // the four load-balanced interfaces
//! ```

pub mod artifact;
pub mod config;
pub mod detect;
pub mod discovery;
pub mod engine;
pub mod mda;
pub mod mda_lite;
pub mod pending;
pub mod prober;
pub mod report;
pub mod session;
pub mod shard;
pub mod single_flow;
pub mod stopping;
pub mod stopset;
pub mod trace;

pub use artifact::{ArtifactKind, AuditVerdict, ReprobeBudget, RouteAudit, RouteHealth};
pub use config::TraceConfig;
pub use discovery::{Discovery, FlowAllocator};
pub use engine::{AdaptiveBudget, Admission, EngineError, SweepConfig, SweepEngine, SweepStats};
pub use mda::trace_mda;
pub use mda_lite::trace_mda_lite;
pub use pending::{ProbeTimer, RetryPolicy};
pub use prober::{DirectObservation, ProbeLog, ProbeObservation, Prober, TransportProber};
pub use report::TraceReport;
pub use session::{
    drive_probes, MdaLiteSession, MdaSession, ProbeOutcome, ProbeRequest, ProbeSession,
    SessionState, SingleFlowSession, TraceProbeSession, TraceSession,
};
pub use shard::{shard_of, ShardedSweepEngine};
pub use single_flow::trace_single_flow;
pub use stopping::StoppingPoints;
pub use stopset::{
    contribution_from_discovery, SharedStopSet, StopContribution, StopMeta, StopSeen,
    StopSetConfig, StopSnapshot,
};
pub use trace::{Algorithm, PartialReason, SwitchReason, Trace, TraceOutcome};

/// Convenient glob import for downstream users.
pub mod prelude {
    pub use crate::artifact::{ReprobeBudget, RouteHealth};
    pub use crate::config::TraceConfig;
    pub use crate::engine::{AdaptiveBudget, Admission, SweepConfig, SweepEngine, SweepStats};
    pub use crate::mda::trace_mda;
    pub use crate::mda_lite::trace_mda_lite;
    pub use crate::pending::RetryPolicy;
    pub use crate::prober::{Prober, TransportProber};
    pub use crate::session::{
        MdaLiteSession, MdaSession, ProbeOutcome, ProbeRequest, ProbeSession, SessionState,
        SingleFlowSession, TraceSession,
    };
    pub use crate::shard::{shard_of, ShardedSweepEngine};
    pub use crate::single_flow::trace_single_flow;
    pub use crate::stopping::StoppingPoints;
    pub use crate::stopset::{StopContribution, StopSetConfig, StopSnapshot};
    pub use crate::trace::{Algorithm, PartialReason, SwitchReason, Trace, TraceOutcome};
    pub use mlpt_wire::FlowId;
}
