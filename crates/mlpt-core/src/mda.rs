//! The Multipath Detection Algorithm (MDA) with node control.
//!
//! The MDA "proceeds vertex by vertex, employing node control to seek the
//! successors to each vertex individually" (Sec. 2.3). For each vertex `u`
//! at hop `t−1` it sends probes *via* `u` to hop `t` — which requires flow
//! identifiers known to reach `u` — until the stopping rule n_k fires for
//! the number of successors found through `u`. When `u` runs out of known
//! flows, *node control* generates fresh flow IDs and probes them at hop
//! `t−1` until enough land on `u` — the Multiple Coupon Collector cost the
//! paper calls δ.
//!
//! The paper's worked example (Sec. 2.1, Veitch Table 1 values) emerges
//! from this implementation probe for probe: the unmeshed 1-4-2-1 diamond
//! costs 11·n₁ + δ probes, the meshed one 8·n₂ + 3·n₁ + δ′.
//!
//! The algorithm itself lives in [`crate::session::MdaSession`], a sans-IO
//! state machine; this entry point is the thin single-session driver that
//! owns a [`Prober`] for one blocking trace, exactly as before the
//! session refactor.

use crate::config::TraceConfig;
use crate::prober::Prober;
use crate::session::{drive, MdaSession};
use crate::trace::Trace;

/// Traces the multipath topology towards the prober's destination with the
/// full MDA.
pub fn trace_mda<P: Prober>(prober: &mut P, config: &TraceConfig) -> Trace {
    let mut session = MdaSession::new(prober.destination(), config.clone());
    drive(&mut session, prober)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::TransportProber;
    use crate::stopping::StoppingPoints;
    use mlpt_sim::SimNetwork;
    use mlpt_topo::{canonical, MultipathTopology};
    use std::net::Ipv4Addr;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    fn run_on(topo: &MultipathTopology, seed: u64) -> Trace {
        let net = SimNetwork::new(topo.clone(), seed);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let config = TraceConfig::new(seed ^ 0xAA);
        trace_mda(&mut prober, &config)
    }

    /// Discovery soundness + completeness against ground truth.
    fn assert_complete(topo: &MultipathTopology, trace: &Trace) {
        assert!(trace.reached_destination);
        let discovered = trace.to_topology().expect("reached destination");
        assert_eq!(discovered.num_hops(), topo.num_hops(), "hop count mismatch");
        for i in 0..topo.num_hops() {
            let want: BTreeSet<Ipv4Addr> = topo.hop(i).iter().copied().collect();
            let got: BTreeSet<Ipv4Addr> = discovered.hop(i).iter().copied().collect();
            assert_eq!(got, want, "hop {i} vertex mismatch");
        }
        let want_edges: BTreeSet<_> = topo.edges().collect();
        let got_edges: BTreeSet<_> = discovered.edges().collect();
        assert_eq!(got_edges, want_edges, "edge set mismatch");
    }

    #[test]
    fn discovers_simplest_diamond() {
        let topo = canonical::simplest_diamond();
        // Seeds giving full discovery dominate (failure prob 3%): try one.
        let trace = run_on(&topo, 3);
        assert_complete(&topo, &trace);
    }

    #[test]
    fn discovers_fig1_unmeshed() {
        let topo = canonical::fig1_unmeshed();
        let trace = run_on(&topo, 5);
        assert_complete(&topo, &trace);
    }

    #[test]
    fn discovers_fig1_meshed() {
        let topo = canonical::fig1_meshed();
        let trace = run_on(&topo, 5);
        assert_complete(&topo, &trace);
    }

    #[test]
    fn discovers_symmetric() {
        let topo = canonical::symmetric();
        let trace = run_on(&topo, 11);
        assert_complete(&topo, &trace);
    }

    #[test]
    fn no_false_discoveries_ever() {
        // Soundness: every vertex and edge reported must exist in truth,
        // for any seed, even when discovery is incomplete.
        let topo = canonical::asymmetric();
        for seed in 0..5u64 {
            let trace = run_on(&topo, seed);
            for ttl in 1..=topo.num_hops() as u8 {
                for &v in trace.vertices_at(ttl) {
                    assert!(
                        topo.contains(usize::from(ttl - 1), v),
                        "seed {seed}: phantom vertex {v} at ttl {ttl}"
                    );
                }
                let edges = trace.discovery.edges_from(ttl);
                for (from, tos) in edges {
                    for to in tos {
                        assert!(
                            topo.successors(usize::from(ttl - 1), from).contains(&to),
                            "seed {seed}: phantom edge {from}->{to}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn paper_probe_accounting_unmeshed() {
        // With Veitch Table 1 stopping points, the unmeshed 1-4-2-1 diamond
        // costs 11·n1 + δ = 99 + δ probes (Sec. 2.1). δ is the coupon-
        // collector overhead — small but positive in expectation.
        let topo = canonical::fig1_unmeshed();
        let mut total = 0u64;
        let runs = 20;
        for seed in 0..runs {
            let net = SimNetwork::new(topo.clone(), seed);
            let mut prober = TransportProber::new(net, SRC, topo.destination());
            let config = TraceConfig::new(seed).with_stopping(StoppingPoints::veitch_table1());
            let trace = trace_mda(&mut prober, &config);
            total += trace.probes_sent;
        }
        let mean = total as f64 / runs as f64;
        assert!(
            (99.0..135.0).contains(&mean),
            "mean probes {mean}, expected 99 + δ"
        );
    }

    #[test]
    fn paper_probe_accounting_meshed() {
        // Meshed diamond: 8·n2 + 3·n1 + δ' = 163 + δ'.
        let topo = canonical::fig1_meshed();
        let mut total = 0u64;
        let runs = 20;
        for seed in 0..runs {
            let net = SimNetwork::new(topo.clone(), seed);
            let mut prober = TransportProber::new(net, SRC, topo.destination());
            let config = TraceConfig::new(seed).with_stopping(StoppingPoints::veitch_table1());
            let trace = trace_mda(&mut prober, &config);
            total += trace.probes_sent;
        }
        let mean = total as f64 / runs as f64;
        assert!(
            (163.0..210.0).contains(&mean),
            "mean probes {mean}, expected 163 + δ'"
        );
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let topo = canonical::meshed();
        let net = SimNetwork::new(topo.clone(), 1);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let config = TraceConfig::new(1).with_probe_budget(50);
        let trace = trace_mda(&mut prober, &config);
        assert!(trace.budget_exhausted);
        assert!(trace.probes_sent <= 51);
    }

    #[test]
    fn empirical_failure_rate_matches_analytic() {
        // The MDA run through the real packet path must fail at the
        // analytic rate on the simplest diamond (0.03125 for 95% table).
        let topo = canonical::simplest_diamond();
        let runs = 600u64;
        let mut failures = 0u64;
        for seed in 0..runs {
            let trace = run_on(&topo, seed);
            let complete = trace.total_vertices() == topo.total_vertices()
                && trace.total_edges() == topo.total_edges();
            if !complete {
                failures += 1;
            }
        }
        let rate = failures as f64 / runs as f64;
        assert!(
            (rate - 0.03125).abs() < 0.02,
            "failure rate {rate} vs analytic 0.03125"
        );
    }

    use std::collections::BTreeSet;
}
