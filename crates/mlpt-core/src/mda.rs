//! The Multipath Detection Algorithm (MDA) with node control.
//!
//! The MDA "proceeds vertex by vertex, employing node control to seek the
//! successors to each vertex individually" (Sec. 2.3). For each vertex `u`
//! at hop `t−1` it sends probes *via* `u` to hop `t` — which requires flow
//! identifiers known to reach `u` — until the stopping rule n_k fires for
//! the number of successors found through `u`. When `u` runs out of known
//! flows, *node control* generates fresh flow IDs and probes them at hop
//! `t−1` until enough land on `u` — the Multiple Coupon Collector cost the
//! paper calls δ.
//!
//! The paper's worked example (Sec. 2.1, Veitch Table 1 values) emerges
//! from this implementation probe for probe: the unmeshed 1-4-2-1 diamond
//! costs 11·n₁ + δ probes, the meshed one 8·n₂ + 3·n₁ + δ′.

use crate::config::TraceConfig;
use crate::discovery::{Discovery, FlowAllocator};
use crate::prober::{ProbeSpec, Prober};
use crate::trace::{Algorithm, Trace};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Budget bookkeeping shared by the algorithm stages.
pub(crate) struct RunCtx {
    pub(crate) probes_used: u64,
    pub(crate) budget: u64,
    /// Reusable per-round probe list, so the batched hot loops allocate
    /// nothing in steady state.
    pub(crate) specs: Vec<ProbeSpec>,
}

impl RunCtx {
    pub(crate) fn new(budget: u64) -> Self {
        Self {
            probes_used: 0,
            budget,
            specs: Vec::new(),
        }
    }

    /// Accounts for one probe; false when the budget is exhausted.
    pub(crate) fn spend(&mut self) -> bool {
        if self.probes_used >= self.budget {
            return false;
        }
        self.probes_used += 1;
        true
    }

    /// Accounts for up to `want` probes, returning how many the budget
    /// still covers.
    pub(crate) fn take(&mut self, want: u64) -> u64 {
        let granted = want.min(self.budget.saturating_sub(self.probes_used));
        self.probes_used += granted;
        granted
    }

    pub(crate) fn exhausted(&self) -> bool {
        self.probes_used >= self.budget
    }
}

/// Sends one probe and records the outcome in the discovery state.
pub(crate) fn send_probe<P: Prober>(
    prober: &mut P,
    state: &mut Discovery,
    ctx: &mut RunCtx,
    flow: mlpt_wire::FlowId,
    ttl: u8,
) -> bool {
    if !ctx.spend() {
        return false;
    }
    state.note_probe_sent(flow, ttl);
    if let Some(obs) = prober.probe(flow, ttl) {
        state.record(flow, ttl, obs.responder, obs.at_destination);
    }
    true
}

/// Sends a whole round of probes through the prober's vectorized path and
/// records every outcome. The round is truncated to the remaining probe
/// budget; returns false when the budget cut it short (the batched
/// analogue of [`send_probe`] returning false).
pub(crate) fn send_probe_batch<P: Prober>(
    prober: &mut P,
    state: &mut Discovery,
    ctx: &mut RunCtx,
    specs: &[ProbeSpec],
) -> bool {
    let granted = ctx.take(specs.len() as u64) as usize;
    let round = &specs[..granted];
    if !round.is_empty() {
        state.note_probes_sent(round);
        let results = prober.probe_batch(round);
        state.record_batch(round, &results);
    }
    granted == specs.len()
}

/// True once every vertex known at `ttl` is the destination (and at least
/// one is): the trace has converged.
pub(crate) fn converged(state: &Discovery, destination: Ipv4Addr, ttl: u8) -> bool {
    let vs = state.vertices_at(ttl);
    !vs.is_empty() && vs.iter().all(|&v| v == destination)
}

/// Hop discovery without node control: probe with the given flow-reuse
/// preference, then fresh flows, until the stopping rule fires on the
/// number of distinct vertices at the hop. Used by the MDA when the
/// previous hop holds a single vertex (all flows pass through it, so node
/// control is vacuous) and by MDA-Lite at every hop.
pub(crate) fn discover_hop_uniform<P: Prober>(
    prober: &mut P,
    state: &mut Discovery,
    flows: &mut FlowAllocator,
    config: &TraceConfig,
    ctx: &mut RunCtx,
    ttl: u8,
    reuse: &[mlpt_wire::FlowId],
) {
    let mut reuse_iter = reuse.iter().copied();
    loop {
        let k = state.vertices_at(ttl).len().max(1);
        let sent = state.probes_at(ttl);
        if config.stopping.should_stop(k, sent) {
            // k == 0 with n(1) probes spent: a silent hop; the rule for a
            // single hypothetical vertex applies.
            break;
        }
        // Everything still owed under the current stopping point goes out
        // as one batch. Because n_k is non-decreasing in k, a vertex
        // discovered mid-round only ever *raises* the target, so batching
        // to the current target sends exactly the probes the sequential
        // loop would have sent.
        let owed = config.stopping.n(k).saturating_sub(sent).max(1);
        let mut specs = std::mem::take(&mut ctx.specs);
        specs.clear();
        for _ in 0..owed {
            let flow = reuse_iter
                .by_ref()
                .find(|&f| !state.flow_probed_at(ttl, f))
                .unwrap_or_else(|| flows.fresh());
            specs.push(ProbeSpec::new(flow, ttl));
        }
        let sent_all = send_probe_batch(prober, state, ctx, &specs);
        ctx.specs = specs;
        if !sent_all {
            break;
        }
    }
}

/// Node control: hunts for a fresh flow identifier that reaches `parent`
/// at `ttl`, probing new flows at `ttl` until one lands (bounded by
/// `node_control_attempts` and the global budget). Probes spent here are
/// charged to hop `ttl`, and any new vertices they reveal are recorded —
/// this is where the paper's δ overhead comes from.
fn hunt_flow_via<P: Prober>(
    prober: &mut P,
    state: &mut Discovery,
    flows: &mut FlowAllocator,
    config: &TraceConfig,
    ctx: &mut RunCtx,
    parent: Ipv4Addr,
    ttl: u8,
) -> Option<mlpt_wire::FlowId> {
    for _ in 0..config.node_control_attempts {
        let flow = flows.fresh();
        if !send_probe(prober, state, ctx, flow, ttl) {
            return None;
        }
        if state.flow_vertex(ttl, flow) == Some(parent) {
            return Some(flow);
        }
    }
    None
}

/// Finds all successors of `parent` (a vertex at `ttl - 1`) by probing hop
/// `ttl` via `parent` under the stopping rule.
fn process_vertex<P: Prober>(
    prober: &mut P,
    state: &mut Discovery,
    flows: &mut FlowAllocator,
    config: &TraceConfig,
    ctx: &mut RunCtx,
    parent: Ipv4Addr,
    ttl: u8,
) {
    loop {
        let (sent_via, successors) = state.probes_via(parent, ttl);
        let k = successors.len().max(1);
        if config.stopping.should_stop(k, sent_via) {
            break;
        }
        // Everything owed via this parent under the current stopping
        // point, limited to the flows already known to reach it, goes out
        // as one batch (ascending flow order — the same order the
        // sequential loop drained the candidate set in).
        let owed = config.stopping.n(k).saturating_sub(sent_via).max(1) as usize;
        let mut specs = std::mem::take(&mut ctx.specs);
        specs.clear();
        specs.extend(
            state
                .flows_reaching(ttl - 1, parent)
                .into_iter()
                .filter(|&f| !state.flow_probed_at(ttl, f))
                .take(owed)
                .map(|f| ProbeSpec::new(f, ttl)),
        );
        if !specs.is_empty() {
            let sent_all = send_probe_batch(prober, state, ctx, &specs);
            ctx.specs = specs;
            if !sent_all {
                break;
            }
            continue;
        }
        ctx.specs = specs;
        // No known flow reaches the parent: node control hunts one (the
        // adaptive δ-overhead loop stays sequential — each hunt probe's
        // outcome decides whether another is needed).
        let flow = match hunt_flow_via(prober, state, flows, config, ctx, parent, ttl - 1) {
            Some(f) => f,
            None => break, // budget/attempts exhausted: give up on parent
        };
        if !send_probe(prober, state, ctx, flow, ttl) {
            break;
        }
    }
}

/// Runs the MDA over (possibly pre-populated) discovery state.
///
/// Returns true if the probe budget ran out. This entry point is shared
/// with MDA-Lite's switchover: the full MDA resumes over everything the
/// Lite pass already learned.
pub(crate) fn run_mda<P: Prober>(
    prober: &mut P,
    state: &mut Discovery,
    flows: &mut FlowAllocator,
    config: &TraceConfig,
    ctx: &mut RunCtx,
) {
    let destination = prober.destination();
    flows.reserve(state.used_flows().iter().copied());

    for ttl in 1..=config.max_ttl {
        if converged(state, destination, ttl.saturating_sub(1).max(1)) && ttl > 1 {
            break;
        }
        let parents: Vec<Ipv4Addr> = if ttl == 1 {
            Vec::new()
        } else {
            state.vertices_at(ttl - 1).to_vec()
        };
        let single_parent = ttl == 1 || parents.len() <= 1;
        if single_parent {
            // All flows pass through the same point: plain stopping rule.
            let reuse: Vec<mlpt_wire::FlowId> = if ttl == 1 {
                Vec::new()
            } else {
                state.reuse_queue(ttl - 1)
            };
            discover_hop_uniform(prober, state, flows, config, ctx, ttl, &reuse);
        } else {
            // Vertex-by-vertex with node control; new vertices discovered
            // at ttl-1 by the hunts join the worklist.
            let mut processed: BTreeSet<Ipv4Addr> = BTreeSet::new();
            loop {
                let pending: Vec<Ipv4Addr> = state
                    .vertices_at(ttl - 1)
                    .iter()
                    .copied()
                    .filter(|v| !processed.contains(v) && *v != destination)
                    .collect();
                if pending.is_empty() || ctx.exhausted() {
                    break;
                }
                for parent in pending {
                    process_vertex(prober, state, flows, config, ctx, parent, ttl);
                    processed.insert(parent);
                }
            }
        }
        if converged(state, destination, ttl) {
            break;
        }
        if ctx.exhausted() {
            break;
        }
    }
}

/// Traces the multipath topology towards the prober's destination with the
/// full MDA.
pub fn trace_mda<P: Prober>(prober: &mut P, config: &TraceConfig) -> Trace {
    let mut state = Discovery::new();
    let mut flows = FlowAllocator::new(config.seed);
    let mut ctx = RunCtx::new(config.probe_budget);
    let before = prober.probes_sent();
    run_mda(prober, &mut state, &mut flows, config, &mut ctx);
    let destination = prober.destination();
    Trace {
        algorithm: Algorithm::Mda,
        destination,
        reached_destination: state.destination_ttl().is_some(),
        probes_sent: prober.probes_sent() - before,
        switched: None,
        budget_exhausted: ctx.exhausted(),
        discovery: state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::TransportProber;
    use crate::stopping::StoppingPoints;
    use mlpt_sim::SimNetwork;
    use mlpt_topo::{canonical, MultipathTopology};
    use std::net::Ipv4Addr;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    fn run_on(topo: &MultipathTopology, seed: u64) -> Trace {
        let net = SimNetwork::new(topo.clone(), seed);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let config = TraceConfig::new(seed ^ 0xAA);
        trace_mda(&mut prober, &config)
    }

    /// Discovery soundness + completeness against ground truth.
    fn assert_complete(topo: &MultipathTopology, trace: &Trace) {
        assert!(trace.reached_destination);
        let discovered = trace.to_topology().expect("reached destination");
        assert_eq!(discovered.num_hops(), topo.num_hops(), "hop count mismatch");
        for i in 0..topo.num_hops() {
            let want: BTreeSet<Ipv4Addr> = topo.hop(i).iter().copied().collect();
            let got: BTreeSet<Ipv4Addr> = discovered.hop(i).iter().copied().collect();
            assert_eq!(got, want, "hop {i} vertex mismatch");
        }
        let want_edges: BTreeSet<_> = topo.edges().collect();
        let got_edges: BTreeSet<_> = discovered.edges().collect();
        assert_eq!(got_edges, want_edges, "edge set mismatch");
    }

    #[test]
    fn discovers_simplest_diamond() {
        let topo = canonical::simplest_diamond();
        // Seeds giving full discovery dominate (failure prob 3%): try one.
        let trace = run_on(&topo, 3);
        assert_complete(&topo, &trace);
    }

    #[test]
    fn discovers_fig1_unmeshed() {
        let topo = canonical::fig1_unmeshed();
        let trace = run_on(&topo, 5);
        assert_complete(&topo, &trace);
    }

    #[test]
    fn discovers_fig1_meshed() {
        let topo = canonical::fig1_meshed();
        let trace = run_on(&topo, 5);
        assert_complete(&topo, &trace);
    }

    #[test]
    fn discovers_symmetric() {
        let topo = canonical::symmetric();
        let trace = run_on(&topo, 11);
        assert_complete(&topo, &trace);
    }

    #[test]
    fn no_false_discoveries_ever() {
        // Soundness: every vertex and edge reported must exist in truth,
        // for any seed, even when discovery is incomplete.
        let topo = canonical::asymmetric();
        for seed in 0..5u64 {
            let trace = run_on(&topo, seed);
            for ttl in 1..=topo.num_hops() as u8 {
                for &v in trace.vertices_at(ttl) {
                    assert!(
                        topo.contains(usize::from(ttl - 1), v),
                        "seed {seed}: phantom vertex {v} at ttl {ttl}"
                    );
                }
                let edges = trace.discovery.edges_from(ttl);
                for (from, tos) in edges {
                    for to in tos {
                        assert!(
                            topo.successors(usize::from(ttl - 1), from).contains(&to),
                            "seed {seed}: phantom edge {from}->{to}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn paper_probe_accounting_unmeshed() {
        // With Veitch Table 1 stopping points, the unmeshed 1-4-2-1 diamond
        // costs 11·n1 + δ = 99 + δ probes (Sec. 2.1). δ is the coupon-
        // collector overhead — small but positive in expectation.
        let topo = canonical::fig1_unmeshed();
        let mut total = 0u64;
        let runs = 20;
        for seed in 0..runs {
            let net = SimNetwork::new(topo.clone(), seed);
            let mut prober = TransportProber::new(net, SRC, topo.destination());
            let config = TraceConfig::new(seed).with_stopping(StoppingPoints::veitch_table1());
            let trace = trace_mda(&mut prober, &config);
            total += trace.probes_sent;
        }
        let mean = total as f64 / runs as f64;
        assert!(
            (99.0..135.0).contains(&mean),
            "mean probes {mean}, expected 99 + δ"
        );
    }

    #[test]
    fn paper_probe_accounting_meshed() {
        // Meshed diamond: 8·n2 + 3·n1 + δ' = 163 + δ'.
        let topo = canonical::fig1_meshed();
        let mut total = 0u64;
        let runs = 20;
        for seed in 0..runs {
            let net = SimNetwork::new(topo.clone(), seed);
            let mut prober = TransportProber::new(net, SRC, topo.destination());
            let config = TraceConfig::new(seed).with_stopping(StoppingPoints::veitch_table1());
            let trace = trace_mda(&mut prober, &config);
            total += trace.probes_sent;
        }
        let mean = total as f64 / runs as f64;
        assert!(
            (163.0..210.0).contains(&mean),
            "mean probes {mean}, expected 163 + δ'"
        );
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let topo = canonical::meshed();
        let net = SimNetwork::new(topo.clone(), 1);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let config = TraceConfig::new(1).with_probe_budget(50);
        let trace = trace_mda(&mut prober, &config);
        assert!(trace.budget_exhausted);
        assert!(trace.probes_sent <= 51);
    }

    #[test]
    fn empirical_failure_rate_matches_analytic() {
        // The MDA run through the real packet path must fail at the
        // analytic rate on the simplest diamond (0.03125 for 95% table).
        let topo = canonical::simplest_diamond();
        let runs = 600u64;
        let mut failures = 0u64;
        for seed in 0..runs {
            let trace = run_on(&topo, seed);
            let complete = trace.total_vertices() == topo.total_vertices()
                && trace.total_edges() == topo.total_edges();
            if !complete {
                failures += 1;
            }
        }
        let rate = failures as f64 / runs as f64;
        assert!(
            (rate - 0.03125).abs() < 0.02,
            "failure rate {rate} vs analytic 0.03125"
        );
    }

    use std::collections::BTreeSet;
}
