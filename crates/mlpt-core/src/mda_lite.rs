//! MDA-Lite: hop-by-hop multipath discovery with opportunistic escalation.
//!
//! "The MDA-Lite … reserves node control for particular cases and proceeds
//! hop by hop in the general case" (Sec. 2.3). Per hop it:
//!
//! 1. **Discovers vertices** with the plain stopping rule, reusing flow
//!    identifiers from the previous hop first (one per vertex, then the
//!    rest, then fresh ones) — no node control.
//! 2. **Completes edges deterministically** (Sec. 2.3.1): any vertex at
//!    the previous hop without an identified successor gets one forward
//!    probe with a flow known to reach it; any vertex at the current hop
//!    without an identified predecessor gets one backward probe with a
//!    flow that discovered it.
//! 3. **Tests for meshing** (Sec. 2.3.2) when both hops are multi-vertex:
//!    φ flow identifiers per vertex are gathered on the wider hop (a
//!    light, bounded form of node control) and traced to the narrower hop;
//!    any degree ≥ 2 reveals meshing.
//! 4. **Tests for width asymmetry** (Sec. 2.3.3): unequal successor counts
//!    at the earlier hop or predecessor counts at the later hop.
//!
//! Either detection *switches over to the full MDA*, which resumes over
//! everything already learned — matching the paper's observation that a
//! switched run enjoys no probe economy.
//!
//! The algorithm lives in [`crate::session::MdaLiteSession`], a sans-IO
//! state machine; this entry point is the thin single-session driver that
//! owns a [`Prober`] for one blocking trace.

use crate::config::TraceConfig;
use crate::prober::Prober;
use crate::session::{drive, MdaLiteSession};
use crate::trace::Trace;

/// Traces the multipath topology with MDA-Lite (switching to the full MDA
/// when meshing or non-uniformity is detected).
pub fn trace_mda_lite<P: Prober>(prober: &mut P, config: &TraceConfig) -> Trace {
    let mut session = MdaLiteSession::new(prober.destination(), config.clone());
    drive(&mut session, prober)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::TransportProber;
    use crate::stopping::StoppingPoints;
    use crate::trace::SwitchReason;
    use mlpt_sim::SimNetwork;
    use mlpt_topo::{canonical, MultipathTopology};
    use std::collections::BTreeSet;
    use std::net::Ipv4Addr;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    fn run_on(topo: &MultipathTopology, seed: u64) -> Trace {
        let net = SimNetwork::new(topo.clone(), seed);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let config = TraceConfig::new(seed ^ 0x55);
        trace_mda_lite(&mut prober, &config)
    }

    fn assert_complete(topo: &MultipathTopology, trace: &Trace) {
        let discovered = trace.to_topology().expect("reached destination");
        assert_eq!(discovered.num_hops(), topo.num_hops());
        for i in 0..topo.num_hops() {
            let want: BTreeSet<Ipv4Addr> = topo.hop(i).iter().copied().collect();
            let got: BTreeSet<Ipv4Addr> = discovered.hop(i).iter().copied().collect();
            assert_eq!(got, want, "hop {i} vertex mismatch");
        }
        let want_edges: BTreeSet<_> = topo.edges().collect();
        let got_edges: BTreeSet<_> = discovered.edges().collect();
        assert_eq!(got_edges, want_edges, "edge mismatch");
    }

    #[test]
    fn discovers_simplest_diamond_without_switching() {
        let topo = canonical::simplest_diamond();
        let trace = run_on(&topo, 4);
        assert!(trace.switched.is_none());
        assert_complete(&topo, &trace);
    }

    #[test]
    fn discovers_fig1_unmeshed_without_switching() {
        let topo = canonical::fig1_unmeshed();
        let trace = run_on(&topo, 6);
        assert!(trace.switched.is_none(), "unmeshed uniform: no switch");
        assert_complete(&topo, &trace);
    }

    #[test]
    fn max_length_2_no_meshing_test_possible() {
        // Single multi-vertex hop: no adjacent multi-vertex pair, so no
        // meshing test and no switch — the case where MDA-Lite shines.
        let topo = canonical::max_length_2();
        let trace = run_on(&topo, 8);
        assert!(trace.switched.is_none());
        assert_complete(&topo, &trace);
    }

    #[test]
    fn symmetric_no_switch() {
        let topo = canonical::symmetric();
        let trace = run_on(&topo, 10);
        assert!(trace.switched.is_none(), "got {:?}", trace.switched);
        assert_complete(&topo, &trace);
    }

    #[test]
    fn meshed_fig1_switches_on_meshing() {
        let topo = canonical::fig1_meshed();
        let trace = run_on(&topo, 3);
        assert!(
            matches!(trace.switched, Some(SwitchReason::MeshingDetected { .. })),
            "got {:?}",
            trace.switched
        );
        assert_complete(&topo, &trace);
    }

    #[test]
    fn asymmetric_switches_on_asymmetry() {
        let topo = canonical::asymmetric();
        let trace = run_on(&topo, 2);
        assert!(
            trace.switched.is_some(),
            "asymmetric diamond must trigger a switch"
        );
    }

    #[test]
    fn lite_cheaper_than_mda_on_uniform_unmeshed() {
        // The headline claim: on uniform unmeshed diamonds MDA-Lite uses
        // significantly fewer probes while discovering the same topology.
        let topo = canonical::max_length_2();
        let mut lite_total = 0u64;
        let mut mda_total = 0u64;
        for seed in 0..10u64 {
            let net = SimNetwork::new(topo.clone(), seed);
            let mut p = TransportProber::new(net, SRC, topo.destination());
            let config = TraceConfig::new(seed);
            lite_total += trace_mda_lite(&mut p, &config).probes_sent;

            let net = SimNetwork::new(topo.clone(), seed);
            let mut p = TransportProber::new(net, SRC, topo.destination());
            mda_total += crate::mda::trace_mda(&mut p, &config).probes_sent;
        }
        assert!(
            (lite_total as f64) < 0.8 * mda_total as f64,
            "lite {lite_total} vs mda {mda_total}"
        );
    }

    #[test]
    fn paper_probe_accounting_lite() {
        // Sec. 2.3.1: with Veitch Table 1, vertex discovery on the Fig. 1
        // diamonds costs n4 + n2 + 2·n1 = 68 probes (plus edge completion
        // and the meshing test, which the paper accounts separately).
        let topo = canonical::fig1_unmeshed();
        let mut totals = Vec::new();
        for seed in 0..20u64 {
            let net = SimNetwork::new(topo.clone(), seed);
            let mut p = TransportProber::new(net, SRC, topo.destination());
            let config = TraceConfig::new(seed).with_stopping(StoppingPoints::veitch_table1());
            let trace = trace_mda_lite(&mut p, &config);
            if trace.switched.is_none() {
                totals.push(trace.probes_sent);
            }
        }
        assert!(!totals.is_empty());
        let mean = totals.iter().sum::<u64>() as f64 / totals.len() as f64;
        // 68 discovery probes + bounded meshing-test and edge overhead.
        assert!(
            (68.0..100.0).contains(&mean),
            "mean lite probes {mean}, expected 68 + small overhead"
        );
    }

    #[test]
    fn no_false_discoveries_ever() {
        let topo = canonical::meshed();
        for seed in 0..3u64 {
            let trace = run_on(&topo, seed);
            for ttl in 1..=topo.num_hops() as u8 {
                for &v in trace.vertices_at(ttl) {
                    assert!(topo.contains(usize::from(ttl - 1), v), "phantom vertex {v}");
                }
            }
        }
    }

    #[test]
    fn meshed_switch_recovers_near_full_topology() {
        // The 48-wide meshed diamond has ~100 vertices with two successors
        // each, so even the full MDA misses a few edges with the 95 %
        // stopping points (per-vertex failure 0.03 compounds). The paper's
        // claim is the *switch* plus near-complete discovery, not
        // perfection.
        let topo = canonical::meshed();
        let trace = run_on(&topo, 1);
        assert!(trace.switched.is_some());
        let discovered = trace.to_topology().expect("reached destination");
        // All vertices found (every vertex has two chances via its two
        // predecessors).
        for i in 0..topo.num_hops() {
            let want: BTreeSet<Ipv4Addr> = topo.hop(i).iter().copied().collect();
            let got: BTreeSet<Ipv4Addr> = discovered.hop(i).iter().copied().collect();
            assert_eq!(got, want, "hop {i} vertex mismatch");
        }
        // Edges: at least 97 % discovered, none invented.
        let want_edges: BTreeSet<_> = topo.edges().collect();
        let mut witnessed: BTreeSet<(usize, Ipv4Addr, Ipv4Addr)> = BTreeSet::new();
        for ttl in 1..topo.num_hops() as u8 {
            for (from, tos) in trace.discovery.edges_from(ttl) {
                for to in tos {
                    witnessed.insert((usize::from(ttl - 1), from, to));
                }
            }
        }
        assert!(witnessed.is_subset(&want_edges), "phantom edges discovered");
        assert!(
            witnessed.len() as f64 >= 0.97 * want_edges.len() as f64,
            "only {}/{} edges discovered",
            witnessed.len(),
            want_edges.len()
        );
    }
}
