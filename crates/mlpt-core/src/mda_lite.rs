//! MDA-Lite: hop-by-hop multipath discovery with opportunistic escalation.
//!
//! "The MDA-Lite … reserves node control for particular cases and proceeds
//! hop by hop in the general case" (Sec. 2.3). Per hop it:
//!
//! 1. **Discovers vertices** with the plain stopping rule, reusing flow
//!    identifiers from the previous hop first (one per vertex, then the
//!    rest, then fresh ones) — no node control.
//! 2. **Completes edges deterministically** (Sec. 2.3.1): any vertex at
//!    the previous hop without an identified successor gets one forward
//!    probe with a flow known to reach it; any vertex at the current hop
//!    without an identified predecessor gets one backward probe with a
//!    flow that discovered it.
//! 3. **Tests for meshing** (Sec. 2.3.2) when both hops are multi-vertex:
//!    φ flow identifiers per vertex are gathered on the wider hop (a
//!    light, bounded form of node control) and traced to the narrower hop;
//!    any degree ≥ 2 reveals meshing.
//! 4. **Tests for width asymmetry** (Sec. 2.3.3): unequal successor counts
//!    at the earlier hop or predecessor counts at the later hop.
//!
//! Either detection *switches over to the full MDA*, which resumes over
//! everything already learned — matching the paper's observation that a
//! switched run enjoys no probe economy.

use crate::config::TraceConfig;
use crate::discovery::{Discovery, FlowAllocator};
use crate::mda::{converged, discover_hop_uniform, run_mda, send_probe_batch, RunCtx};
use crate::prober::{ProbeSpec, Prober};
use crate::trace::{Algorithm, SwitchReason, Trace};
use mlpt_wire::FlowId;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Traces the multipath topology with MDA-Lite (switching to the full MDA
/// when meshing or non-uniformity is detected).
pub fn trace_mda_lite<P: Prober>(prober: &mut P, config: &TraceConfig) -> Trace {
    let mut state = Discovery::new();
    let mut flows = FlowAllocator::new(config.seed);
    let mut ctx = RunCtx::new(config.probe_budget);
    let destination = prober.destination();
    let before = prober.probes_sent();

    let mut switched: Option<SwitchReason> = None;

    'hops: for ttl in 1..=config.max_ttl {
        // 1. Vertex discovery at this hop, no node control.
        let reuse: Vec<FlowId> = if ttl == 1 {
            Vec::new()
        } else {
            state.reuse_queue(ttl - 1)
        };
        discover_hop_uniform(
            prober, &mut state, &mut flows, config, &mut ctx, ttl, &reuse,
        );
        if ctx.exhausted() {
            break;
        }

        if ttl >= 2 {
            // 2. Deterministic edge completion between ttl-1 and ttl.
            complete_edges(prober, &mut state, &mut ctx, ttl);
            if ctx.exhausted() {
                break;
            }

            let prev_multi = state.vertices_at(ttl - 1).len() >= 2;
            let curr_multi = state.vertices_at(ttl).len() >= 2;

            // 3. Meshing test on adjacent multi-vertex hops.
            if prev_multi && curr_multi {
                let meshed = meshing_test(prober, &mut state, &mut flows, config, &mut ctx, ttl);
                if meshed {
                    switched = Some(SwitchReason::MeshingDetected { ttl: ttl - 1 });
                    break 'hops;
                }
            }

            // 4. Width-asymmetry (non-uniformity) test.
            if pair_is_asymmetric(&state, ttl) {
                switched = Some(SwitchReason::AsymmetryDetected { ttl: ttl - 1 });
                break 'hops;
            }
        }

        if converged(&state, destination, ttl) {
            break;
        }
    }

    if switched.is_some() && !ctx.exhausted() {
        // Escalate: the full MDA resumes over the accumulated evidence.
        run_mda(prober, &mut state, &mut flows, config, &mut ctx);
    }

    Trace {
        algorithm: Algorithm::MdaLite,
        destination,
        reached_destination: state.destination_ttl().is_some(),
        probes_sent: prober.probes_sent() - before,
        switched,
        budget_exhausted: ctx.exhausted(),
        discovery: state,
    }
}

/// Deterministic edge completion (Sec. 2.3.1). Forward probes give
/// successors to successor-less vertices at `ttl - 1`; backward probes
/// give predecessors to predecessor-less vertices at `ttl`. Covers all
/// three width cases of the paper (fewer / more / equal).
fn complete_edges<P: Prober>(prober: &mut P, state: &mut Discovery, ctx: &mut RunCtx, ttl: u8) {
    // Bounded fixpoint: a completion probe can itself reveal a new vertex
    // (evidence the hop discovery missed one); re-completing is cheap and
    // deterministic. Each round's completion probes are independent of
    // one another, so the whole round crosses the transport as one batch.
    for _round in 0..4 {
        let edges = state.edges_from(ttl - 1);
        let rev = state.reverse_edges_from(ttl - 1);

        let mut work: Vec<ProbeSpec> = Vec::new();

        // Forward: vertex at ttl-1 without successor.
        for &u in state.vertices_at(ttl - 1) {
            if edges.get(&u).is_none_or(BTreeSet::is_empty) {
                if let Some(&f) = state
                    .flows_reaching(ttl - 1, u)
                    .iter()
                    .find(|&&f| !state.flow_probed_at(ttl, f))
                {
                    work.push(ProbeSpec::new(f, ttl));
                }
            }
        }
        // Backward: vertex at ttl without predecessor.
        for &v in state.vertices_at(ttl) {
            if rev.get(&v).is_none_or(BTreeSet::is_empty) {
                if let Some(&f) = state
                    .flows_reaching(ttl, v)
                    .iter()
                    .find(|&&f| !state.flow_probed_at(ttl - 1, f))
                {
                    work.push(ProbeSpec::new(f, ttl - 1));
                }
            }
        }

        if work.is_empty() {
            return;
        }
        if !send_probe_batch(prober, state, ctx, &work) {
            return;
        }
    }
}

/// The meshing test (Sec. 2.3.2). Traces from the hop with more vertices
/// towards the hop with fewer (forward from `ttl - 1` when it is at least
/// as wide; backward from `ttl` otherwise), with φ flow identifiers per
/// vertex on the traced-from hop. Detection: any out-degree ≥ 2 when
/// tracing forward, any in-degree ≥ 2 when tracing backward.
fn meshing_test<P: Prober>(
    prober: &mut P,
    state: &mut Discovery,
    flows: &mut FlowAllocator,
    config: &TraceConfig,
    ctx: &mut RunCtx,
    ttl: u8,
) -> bool {
    let wider_prev = state.vertices_at(ttl - 1).len() >= state.vertices_at(ttl).len();
    let (from_ttl, to_ttl) = if wider_prev {
        (ttl - 1, ttl)
    } else {
        (ttl, ttl - 1)
    };

    // Gather φ flows per vertex on the traced-from hop (light node
    // control: draw fresh flows and probe them at from_ttl until each
    // vertex holds φ, bounded). Each probe can satisfy at most one unit
    // of the total deficit, so a whole deficit's worth of fresh flows
    // goes out per batch without ever overshooting the sequential loop.
    let vertices: Vec<Ipv4Addr> = state.vertices_at(from_ttl).to_vec();
    let phi = config.phi as usize;
    let mut attempts = 0u64;
    loop {
        let deficit: u64 = vertices
            .iter()
            .map(|&v| phi.saturating_sub(state.flows_reaching(from_ttl, v).len()) as u64)
            .sum();
        if deficit == 0 {
            break;
        }
        let allowance = config.node_control_attempts.saturating_sub(attempts);
        let round = deficit.min(allowance);
        if round == 0 {
            break;
        }
        attempts += round;
        let mut specs = std::mem::take(&mut ctx.specs);
        specs.clear();
        specs.extend((0..round).map(|_| ProbeSpec::new(flows.fresh(), from_ttl)));
        let sent_all = send_probe_batch(prober, state, ctx, &specs);
        ctx.specs = specs;
        if !sent_all {
            break;
        }
    }

    // Send φ flows of each vertex to the other hop — one batch: the flow
    // sets of distinct vertices are disjoint, so no spec repeats.
    let mut specs = std::mem::take(&mut ctx.specs);
    specs.clear();
    for &v in &vertices {
        specs.extend(
            state
                .flows_reaching(from_ttl, v)
                .into_iter()
                .take(phi)
                .filter(|&f| !state.flow_probed_at(to_ttl, f))
                .map(|f| ProbeSpec::new(f, to_ttl)),
        );
    }
    let sent_all = send_probe_batch(prober, state, ctx, &specs);
    ctx.specs = specs;
    if !sent_all {
        return false;
    }

    // Detection over all accumulated evidence.
    let earlier = from_ttl.min(to_ttl);
    if wider_prev {
        // Forward tracing: out-degree ≥ 2 at the earlier hop.
        state
            .edges_from(earlier)
            .values()
            .any(|succs| succs.len() >= 2)
    } else {
        // Backward tracing: in-degree ≥ 2 at the later hop.
        state
            .reverse_edges_from(earlier)
            .values()
            .any(|preds| preds.len() >= 2)
    }
}

/// Width-asymmetry test (Sec. 2.3.3): "if the number of successors is not
/// identical for every vertex at hop i or if the number of predecessors is
/// not identical for every vertex at hop i + 1, the diamond has width
/// asymmetry and is considered to be non-uniform".
fn pair_is_asymmetric(state: &Discovery, ttl: u8) -> bool {
    let edges = state.edges_from(ttl - 1);
    let rev = state.reverse_edges_from(ttl - 1);

    let succ_counts: Vec<usize> = state
        .vertices_at(ttl - 1)
        .iter()
        .map(|v| edges.get(v).map_or(0, BTreeSet::len))
        .collect();
    let pred_counts: Vec<usize> = state
        .vertices_at(ttl)
        .iter()
        .map(|v| rev.get(v).map_or(0, BTreeSet::len))
        .collect();

    let uneven = |counts: &[usize]| {
        counts
            .iter()
            .filter(|&&c| c > 0) // vertices with no evidence don't testify
            .collect::<BTreeSet<_>>()
            .len()
            > 1
    };
    uneven(&succ_counts) || uneven(&pred_counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::TransportProber;
    use crate::stopping::StoppingPoints;
    use mlpt_sim::SimNetwork;
    use mlpt_topo::{canonical, MultipathTopology};

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    fn run_on(topo: &MultipathTopology, seed: u64) -> Trace {
        let net = SimNetwork::new(topo.clone(), seed);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let config = TraceConfig::new(seed ^ 0x55);
        trace_mda_lite(&mut prober, &config)
    }

    fn assert_complete(topo: &MultipathTopology, trace: &Trace) {
        let discovered = trace.to_topology().expect("reached destination");
        assert_eq!(discovered.num_hops(), topo.num_hops());
        for i in 0..topo.num_hops() {
            let want: BTreeSet<Ipv4Addr> = topo.hop(i).iter().copied().collect();
            let got: BTreeSet<Ipv4Addr> = discovered.hop(i).iter().copied().collect();
            assert_eq!(got, want, "hop {i} vertex mismatch");
        }
        let want_edges: BTreeSet<_> = topo.edges().collect();
        let got_edges: BTreeSet<_> = discovered.edges().collect();
        assert_eq!(got_edges, want_edges, "edge mismatch");
    }

    #[test]
    fn discovers_simplest_diamond_without_switching() {
        let topo = canonical::simplest_diamond();
        let trace = run_on(&topo, 4);
        assert!(trace.switched.is_none());
        assert_complete(&topo, &trace);
    }

    #[test]
    fn discovers_fig1_unmeshed_without_switching() {
        let topo = canonical::fig1_unmeshed();
        let trace = run_on(&topo, 6);
        assert!(trace.switched.is_none(), "unmeshed uniform: no switch");
        assert_complete(&topo, &trace);
    }

    #[test]
    fn max_length_2_no_meshing_test_possible() {
        // Single multi-vertex hop: no adjacent multi-vertex pair, so no
        // meshing test and no switch — the case where MDA-Lite shines.
        let topo = canonical::max_length_2();
        let trace = run_on(&topo, 8);
        assert!(trace.switched.is_none());
        assert_complete(&topo, &trace);
    }

    #[test]
    fn symmetric_no_switch() {
        let topo = canonical::symmetric();
        let trace = run_on(&topo, 10);
        assert!(trace.switched.is_none(), "got {:?}", trace.switched);
        assert_complete(&topo, &trace);
    }

    #[test]
    fn meshed_fig1_switches_on_meshing() {
        let topo = canonical::fig1_meshed();
        let trace = run_on(&topo, 3);
        assert!(
            matches!(trace.switched, Some(SwitchReason::MeshingDetected { .. })),
            "got {:?}",
            trace.switched
        );
        assert_complete(&topo, &trace);
    }

    #[test]
    fn asymmetric_switches_on_asymmetry() {
        let topo = canonical::asymmetric();
        let trace = run_on(&topo, 2);
        assert!(
            trace.switched.is_some(),
            "asymmetric diamond must trigger a switch"
        );
    }

    #[test]
    fn lite_cheaper_than_mda_on_uniform_unmeshed() {
        // The headline claim: on uniform unmeshed diamonds MDA-Lite uses
        // significantly fewer probes while discovering the same topology.
        let topo = canonical::max_length_2();
        let mut lite_total = 0u64;
        let mut mda_total = 0u64;
        for seed in 0..10u64 {
            let net = SimNetwork::new(topo.clone(), seed);
            let mut p = TransportProber::new(net, SRC, topo.destination());
            let config = TraceConfig::new(seed);
            lite_total += trace_mda_lite(&mut p, &config).probes_sent;

            let net = SimNetwork::new(topo.clone(), seed);
            let mut p = TransportProber::new(net, SRC, topo.destination());
            mda_total += crate::mda::trace_mda(&mut p, &config).probes_sent;
        }
        assert!(
            (lite_total as f64) < 0.8 * mda_total as f64,
            "lite {lite_total} vs mda {mda_total}"
        );
    }

    #[test]
    fn paper_probe_accounting_lite() {
        // Sec. 2.3.1: with Veitch Table 1, vertex discovery on the Fig. 1
        // diamonds costs n4 + n2 + 2·n1 = 68 probes (plus edge completion
        // and the meshing test, which the paper accounts separately).
        let topo = canonical::fig1_unmeshed();
        let mut totals = Vec::new();
        for seed in 0..20u64 {
            let net = SimNetwork::new(topo.clone(), seed);
            let mut p = TransportProber::new(net, SRC, topo.destination());
            let config = TraceConfig::new(seed).with_stopping(StoppingPoints::veitch_table1());
            let trace = trace_mda_lite(&mut p, &config);
            if trace.switched.is_none() {
                totals.push(trace.probes_sent);
            }
        }
        assert!(!totals.is_empty());
        let mean = totals.iter().sum::<u64>() as f64 / totals.len() as f64;
        // 68 discovery probes + bounded meshing-test and edge overhead.
        assert!(
            (68.0..100.0).contains(&mean),
            "mean lite probes {mean}, expected 68 + small overhead"
        );
    }

    #[test]
    fn no_false_discoveries_ever() {
        let topo = canonical::meshed();
        for seed in 0..3u64 {
            let trace = run_on(&topo, seed);
            for ttl in 1..=topo.num_hops() as u8 {
                for &v in trace.vertices_at(ttl) {
                    assert!(topo.contains(usize::from(ttl - 1), v), "phantom vertex {v}");
                }
            }
        }
    }

    #[test]
    fn meshed_switch_recovers_near_full_topology() {
        // The 48-wide meshed diamond has ~100 vertices with two successors
        // each, so even the full MDA misses a few edges with the 95 %
        // stopping points (per-vertex failure 0.03 compounds). The paper's
        // claim is the *switch* plus near-complete discovery, not
        // perfection.
        let topo = canonical::meshed();
        let trace = run_on(&topo, 1);
        assert!(trace.switched.is_some());
        let discovered = trace.to_topology().expect("reached destination");
        // All vertices found (every vertex has two chances via its two
        // predecessors).
        for i in 0..topo.num_hops() {
            let want: BTreeSet<Ipv4Addr> = topo.hop(i).iter().copied().collect();
            let got: BTreeSet<Ipv4Addr> = discovered.hop(i).iter().copied().collect();
            assert_eq!(got, want, "hop {i} vertex mismatch");
        }
        // Edges: at least 97 % discovered, none invented.
        let want_edges: BTreeSet<_> = topo.edges().collect();
        let mut witnessed: BTreeSet<(usize, Ipv4Addr, Ipv4Addr)> = BTreeSet::new();
        for ttl in 1..topo.num_hops() as u8 {
            for (from, tos) in trace.discovery.edges_from(ttl) {
                for to in tos {
                    witnessed.insert((usize::from(ttl - 1), from, to));
                }
            }
        }
        assert!(witnessed.is_subset(&want_edges), "phantom edges discovered");
        assert!(
            witnessed.len() as f64 >= 0.97 * want_edges.len() as f64,
            "only {}/{} edges discovered",
            witnessed.len(),
            want_edges.len()
        );
    }
}
