//! Deadline policy for the pending table: how long each dispatched
//! probe may stay unanswered, and how that deadline grows under
//! sustained loss.
//!
//! The sweep engine dispatches probes through the split transport
//! contract ([`mlpt_wire::SplitTransport`]): every probe carries a
//! timeout measured in virtual-clock ticks from its own send instant,
//! and a probe whose reply misses that deadline resolves as a typed
//! timeout that feeds the retry machinery. [`RetryPolicy`] is the knob
//! set governing those deadlines; [`ProbeTimer`] is the per-session
//! state that draws them.
//!
//! # Determinism (rule 5)
//!
//! Deadlines and retry counts are **protocol state, never scheduler
//! state**. Everything a timeout depends on is derived from quantities
//! identical across admission modes, in-flight budgets and dispatch
//! orders:
//!
//! * the probe's *attempt* number (which retry wave it belongs to) and
//!   the lane's *backoff depth* (how many consecutive lossy waves this
//!   session has seen) — both advance only on session-round boundaries;
//! * the jitter draw, taken from a per-session RNG seeded by
//!   `jitter_seed ^ destination` and advanced once per probe in wave
//!   order — never from any shared or scheduler-owned RNG.
//!
//! How a scheduler slices a wave across dispatch cycles therefore
//! cannot change a single deadline, which is what keeps concurrent
//! sweeps bit-identical to sequential traces under fault schedules.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::net::Ipv4Addr;

/// Bounded-retry deadline policy: base timeout, exponential backoff and
/// optional jitter.
///
/// The deadline for a probe on attempt `a` while its lane sits at
/// backoff depth `d` is
///
/// ```text
/// base_timeout * backoff^min(a + d, max_exponent) + jitter_draw
/// ```
///
/// where `jitter_draw` is uniform in `0..=jitter` from the session's
/// jitter RNG. The exponent cap bounds the worst-case wait so no
/// schedule can push a deadline towards infinity; the depth term reuses
/// the AIMD loss signal (per-wave, so protocol state) to give lossy
/// lanes breathing room without a config change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Deadline, in virtual-clock ticks, for a first-attempt probe at
    /// backoff depth 0. The simulator's clock ticks once per packet, so
    /// the default is generous: a reply beats it unless the schedule
    /// delays replies by thousands of ticks.
    pub base_timeout: u64,
    /// Multiplier applied per attempt/backoff step (exponential
    /// backoff). Values below 1.0 are clamped to 1.0.
    pub backoff: f64,
    /// Cap on the backoff exponent: bounds the largest deadline at
    /// `base_timeout * backoff^max_exponent` (+ jitter).
    pub max_exponent: u32,
    /// Maximum jitter ticks added per probe (0 = no jitter).
    pub jitter: u64,
    /// Seed for the per-session jitter RNG (combined with the session's
    /// destination, so sessions jitter independently but
    /// reproducibly).
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// The deadline for attempt `attempt` at lane backoff depth `depth`,
    /// before jitter.
    pub fn timeout_ticks(&self, attempt: u8, depth: u32) -> u64 {
        let exponent = (u32::from(attempt) + depth).min(self.max_exponent);
        let factor = self.backoff.max(1.0).powi(exponent as i32);
        // Saturate rather than overflow: the cap keeps factor finite,
        // but base_timeout is caller-controlled.
        let scaled = (self.base_timeout as f64 * factor).min(u64::MAX as f64);
        scaled as u64
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base_timeout: 4096,
            backoff: 2.0,
            max_exponent: 6,
            jitter: 0,
            jitter_seed: 0,
        }
    }
}

/// Per-session deadline state: the jitter RNG plus the policy it draws
/// under. One timer lives in each engine session slot; its draw
/// sequence advances once per dispatched probe in wave order, so it is
/// identical however the scheduler slices the wave into cycles.
#[derive(Debug, Clone)]
pub struct ProbeTimer {
    policy: RetryPolicy,
    jitter_rng: ChaCha8Rng,
}

impl ProbeTimer {
    /// A timer for the session probing `destination`.
    pub fn new(policy: RetryPolicy, destination: Ipv4Addr) -> Self {
        let seed = policy.jitter_seed ^ u64::from(u32::from(destination));
        Self {
            policy,
            jitter_rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The deadline (ticks from send) for the next probe of attempt
    /// `attempt` at lane backoff depth `depth`. Advances the jitter RNG
    /// by exactly one draw when jitter is enabled.
    pub fn next_timeout(&mut self, attempt: u8, depth: u32) -> u64 {
        let base = self.policy.timeout_ticks(attempt, depth);
        if self.policy.jitter == 0 {
            return base;
        }
        base.saturating_add(self.jitter_rng.gen_range(0..=self.policy.jitter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            base_timeout: 10,
            backoff: 2.0,
            max_exponent: 3,
            ..RetryPolicy::default()
        };
        assert_eq!(policy.timeout_ticks(0, 0), 10);
        assert_eq!(policy.timeout_ticks(1, 0), 20);
        assert_eq!(policy.timeout_ticks(0, 1), 20);
        assert_eq!(policy.timeout_ticks(1, 1), 40);
        assert_eq!(policy.timeout_ticks(3, 0), 80);
        // Capped at backoff^3 however deep attempt + depth go.
        assert_eq!(policy.timeout_ticks(9, 9), 80);
    }

    #[test]
    fn sub_unit_backoff_never_shrinks_deadlines() {
        let policy = RetryPolicy {
            base_timeout: 100,
            backoff: 0.5,
            ..RetryPolicy::default()
        };
        assert_eq!(policy.timeout_ticks(0, 0), 100);
        assert_eq!(policy.timeout_ticks(4, 0), 100);
    }

    #[test]
    fn jitter_is_deterministic_per_destination() {
        let policy = RetryPolicy {
            base_timeout: 50,
            jitter: 16,
            jitter_seed: 7,
            ..RetryPolicy::default()
        };
        let dest = Ipv4Addr::new(10, 0, 0, 1);
        let draw =
            |mut t: ProbeTimer| -> Vec<u64> { (0..8).map(|_| t.next_timeout(0, 0)).collect() };
        let a = draw(ProbeTimer::new(policy, dest));
        let b = draw(ProbeTimer::new(policy, dest));
        assert_eq!(a, b, "same destination, same draws");
        assert!(a.iter().all(|&t| (50..=66).contains(&t)));
        let c = draw(ProbeTimer::new(policy, Ipv4Addr::new(10, 0, 0, 2)));
        assert_ne!(a, c, "destinations jitter independently");
    }

    #[test]
    fn zero_jitter_skips_the_rng() {
        let mut timer = ProbeTimer::new(RetryPolicy::default(), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(timer.next_timeout(0, 0), 4096);
        assert_eq!(timer.next_timeout(1, 0), 8192);
        assert_eq!(timer.next_timeout(0, 6), 4096 * 64);
        assert_eq!(timer.next_timeout(0, 7), 4096 * 64);
    }
}
