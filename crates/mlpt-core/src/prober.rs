//! The prober: logical probes over a byte transport.
//!
//! Tracing algorithms think in terms of "send flow f at TTL t, which
//! interface answered?" — the [`Prober`] trait. [`TransportProber`]
//! implements it over any [`BatchTransport`] by building real probe
//! datagrams and parsing real replies, so every algorithmic probe
//! round-trips through the wire substrate exactly as a real tool's
//! packets would.
//!
//! Two dispatch shapes exist. [`Prober::probe`] sends one probe
//! synchronously. [`Prober::probe_batch`] moves a whole round of probes
//! (e.g. every flow identifier a hop still owes under the stopping rule)
//! across the transport in one call; `TransportProber` encodes the round
//! into a reusable [`PacketBatch`], dispatches it with one
//! [`BatchTransport::send_batch`], and decodes the packed replies — no
//! per-probe allocations, no per-probe virtual dispatch. The default
//! trait implementation falls back to sequential `probe` calls, so any
//! `Prober` is batch-callable. Batched and sequential dispatch produce
//! bit-identical observation streams on a synchronous transport (same
//! packet order, same sequence numbers, same clock progression).
//!
//! Every observation (interface, IP ID, reply TTL, MPLS labels,
//! timestamp) is also recorded in a [`ProbeLog`], which is the "for free"
//! data of Sec. 4.1: the alias resolution stages start from what tracing
//! already collected.

use mlpt_wire::icmp::MplsLabelStackEntry;
use mlpt_wire::probe::{
    build_echo_probe, build_udp_probe_into, parse_reply, ProbePacket, ReplyKind, ReplyPacket,
};
use mlpt_wire::transport::{BatchTransport, PacketBatch, PacketTransport, ReplyBatch};
use mlpt_wire::FlowId;
use std::net::Ipv4Addr;

/// ICMP echo identifier every prober stamps on direct probes ("ML"), so
/// Echo Replies can be told apart from unrelated ping traffic. Shared by
/// [`TransportProber`] and the sweep engine so both paths emit
/// bit-identical echo packets.
pub const ECHO_IDENTIFIER: u16 = 0x4D4C;

/// TTL direct (echo) probes are sent with — large enough to reach any
/// interface a trace can observe.
pub const ECHO_TTL: u8 = 64;

/// One indirect probe request: which flow at which TTL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProbeSpec {
    /// The flow identifier to send.
    pub flow: FlowId,
    /// The TTL to probe.
    pub ttl: u8,
}

impl ProbeSpec {
    /// Creates a spec.
    pub fn new(flow: FlowId, ttl: u8) -> Self {
        Self { flow, ttl }
    }
}

/// How a [`TransportProber`] moves probes across the transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Vectorized: whole rounds through [`BatchTransport::send_batch`]
    /// with reusable packet/reply buffers (the fast path).
    #[default]
    Batched,
    /// Legacy one-probe-at-a-time dispatch. Kept for benchmarking the
    /// batched path against its predecessor and for equivalence tests.
    PerProbe,
}

/// What one traceroute-style (indirect) probe observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeObservation {
    /// The flow that was probed.
    pub flow: FlowId,
    /// The TTL that was probed.
    pub ttl: u8,
    /// The interface that answered.
    pub responder: Ipv4Addr,
    /// True if the responder is the trace destination (Port Unreachable).
    pub at_destination: bool,
    /// IP ID of the reply datagram (IP-ID counter sample).
    pub ip_id: u16,
    /// TTL of the reply datagram as received.
    pub reply_ttl: u8,
    /// MPLS label stack attached to the reply, outermost first.
    pub mpls: Vec<MplsLabelStackEntry>,
    /// Transport timestamp of the reply.
    pub timestamp: u64,
}

impl ProbeObservation {
    /// Decodes a parsed reply against the probe that elicited it — the
    /// single acceptance rule shared by [`TransportProber`] and the
    /// sweep engine ([`crate::engine`]): the reply must quote the probed
    /// flow (a real tool matches replies to probes by the quoted
    /// headers), and the destination counts as reached on Port
    /// Unreachable or when the destination itself answers.
    pub fn from_reply(
        spec: ProbeSpec,
        reply: ReplyPacket,
        destination: Ipv4Addr,
        timestamp: u64,
    ) -> Option<Self> {
        if reply.probe_flow != Some(spec.flow) {
            return None;
        }
        let at_destination =
            matches!(reply.kind, ReplyKind::PortUnreachable) || reply.responder == destination;
        Some(Self {
            flow: spec.flow,
            ttl: spec.ttl,
            responder: reply.responder,
            at_destination,
            ip_id: reply.reply_ip_id,
            reply_ttl: reply.reply_ttl,
            mpls: reply.mpls_stack,
            timestamp,
        })
    }
}

/// What one ping-style (direct) probe observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectObservation {
    /// The address probed (and that answered).
    pub target: Ipv4Addr,
    /// IP ID of the echo reply.
    pub ip_id: u16,
    /// IP ID carried by the probe itself: some routers simply echo it
    /// back, which MIDAR must detect as an unusable series (Sec. 4.2).
    pub probe_ip_id: u16,
    /// TTL of the echo reply as received.
    pub reply_ttl: u8,
    /// Transport timestamp of the reply.
    pub timestamp: u64,
}

/// Logical probing interface used by all algorithms.
pub trait Prober {
    /// Sends an indirect (UDP, TTL-limited) probe.
    fn probe(&mut self, flow: FlowId, ttl: u8) -> Option<ProbeObservation>;

    /// Sends a round of indirect probes, returning one observation slot
    /// per spec, in spec order.
    ///
    /// The default shim dispatches sequentially through
    /// [`Prober::probe`], so every prober is batch-callable; transports
    /// with a vectorized path override this.
    fn probe_batch(&mut self, specs: &[ProbeSpec]) -> Vec<Option<ProbeObservation>> {
        specs.iter().map(|s| self.probe(s.flow, s.ttl)).collect()
    }

    /// Sends a direct (ICMP echo) probe to a specific interface.
    fn direct_probe(&mut self, target: Ipv4Addr) -> Option<DirectObservation>;

    /// Total probe packets sent so far (including retries and losses) —
    /// the paper's cost metric.
    fn probes_sent(&self) -> u64;

    /// Destination being traced towards.
    fn destination(&self) -> Ipv4Addr;
}

/// Everything observed through a prober, kept for alias resolution.
#[derive(Debug, Clone, Default)]
pub struct ProbeLog {
    /// All indirect observations, in probing order.
    pub indirect: Vec<ProbeObservation>,
    /// All direct observations, in probing order.
    pub direct: Vec<DirectObservation>,
}

/// A [`Prober`] over a [`BatchTransport`], building and parsing real
/// packets. Batched rounds reuse the packet/reply scratch buffers below,
/// so steady-state probing performs no heap allocations on the send path.
pub struct TransportProber<T: PacketTransport> {
    transport: T,
    source: Ipv4Addr,
    destination: Ipv4Addr,
    sequence: u16,
    echo_identifier: u16,
    retries: u8,
    probes_sent: u64,
    dispatch: DispatchMode,
    log: ProbeLog,
    /// Reusable encode buffer for one round of probe packets.
    scratch_packets: PacketBatch,
    /// Reusable decode buffer for one round of replies.
    scratch_replies: ReplyBatch,
    /// Reusable per-round bookkeeping (pending spec indices).
    scratch_pending: Vec<usize>,
}

impl<T: PacketTransport> TransportProber<T> {
    /// Creates a prober for one source/destination pair.
    pub fn new(transport: T, source: Ipv4Addr, destination: Ipv4Addr) -> Self {
        Self {
            transport,
            source,
            destination,
            sequence: 0,
            echo_identifier: ECHO_IDENTIFIER,
            retries: 0,
            probes_sent: 0,
            dispatch: DispatchMode::default(),
            log: ProbeLog::default(),
            scratch_packets: PacketBatch::new(),
            scratch_replies: ReplyBatch::new(),
            scratch_pending: Vec::new(),
        }
    }

    /// Sets how many times an unanswered probe is retried (default 0).
    /// Retries matter only under fault injection; each retry counts as a
    /// sent probe, as it would on the wire. In batched dispatch, retries
    /// happen per round (all unanswered probes re-sent together) instead
    /// of immediately per probe.
    pub fn with_retries(mut self, retries: u8) -> Self {
        self.retries = retries;
        self
    }

    /// Selects the dispatch mode (default [`DispatchMode::Batched`]).
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// The dispatch mode in force.
    pub fn dispatch(&self) -> DispatchMode {
        self.dispatch
    }

    /// The accumulated observation log.
    pub fn log(&self) -> &ProbeLog {
        &self.log
    }

    /// Consumes the prober, returning transport and log.
    pub fn into_parts(self) -> (T, ProbeLog) {
        (self.transport, self.log)
    }

    /// Access to the underlying transport (e.g. to advance a simulated
    /// clock between rounds).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    fn next_sequence(&mut self) -> u16 {
        self.sequence = self.sequence.wrapping_add(1);
        self.sequence
    }

    /// Decodes one reply slot against its spec; returns the observation
    /// if the reply matches the probe (shared rule:
    /// [`ProbeObservation::from_reply`]).
    fn decode_reply(
        &self,
        spec: ProbeSpec,
        reply: &[u8],
        timestamp: u64,
    ) -> Option<ProbeObservation> {
        let parsed = parse_reply(reply).ok()?;
        ProbeObservation::from_reply(spec, parsed, self.destination, timestamp)
    }
}

impl<T: BatchTransport> Prober for TransportProber<T> {
    fn probe(&mut self, flow: FlowId, ttl: u8) -> Option<ProbeObservation> {
        for _attempt in 0..=self.retries {
            let sequence = self.next_sequence();
            let mut packet_buf = std::mem::take(&mut self.scratch_packets);
            packet_buf.clear();
            packet_buf.push_with(|buf| {
                build_udp_probe_into(
                    &ProbePacket {
                        source: self.source,
                        destination: self.destination,
                        flow,
                        ttl,
                        sequence,
                    },
                    buf,
                )
            });
            self.probes_sent += 1;
            let mut reply_buf = std::mem::take(&mut self.scratch_replies);
            reply_buf.clear();
            let mut answered = false;
            reply_buf.push_with(0, |buf| {
                answered = self.transport.send_packet_into(packet_buf.get(0), buf);
                answered
            });
            let obs = if answered {
                self.decode_reply(
                    ProbeSpec::new(flow, ttl),
                    reply_buf.get(0).expect("answered slot"),
                    self.transport.now(),
                )
            } else {
                None
            };
            self.scratch_packets = packet_buf;
            self.scratch_replies = reply_buf;
            if let Some(obs) = obs {
                self.log.indirect.push(obs.clone());
                return Some(obs);
            }
        }
        None
    }

    /// Vectorized dispatch: encodes the whole round into the reusable
    /// packet batch, crosses the transport once, and decodes the packed
    /// replies. Unanswered probes are retried in follow-up rounds (up to
    /// the configured retry count).
    fn probe_batch(&mut self, specs: &[ProbeSpec]) -> Vec<Option<ProbeObservation>> {
        if self.dispatch == DispatchMode::PerProbe {
            // Legacy path: sequential, for A/B comparison.
            return specs.iter().map(|s| self.probe(s.flow, s.ttl)).collect();
        }
        let mut results: Vec<Option<ProbeObservation>> = vec![None; specs.len()];
        let mut pending = std::mem::take(&mut self.scratch_pending);
        pending.clear();
        pending.extend(0..specs.len());

        for _attempt in 0..=self.retries {
            if pending.is_empty() {
                break;
            }
            // Encode the round.
            let mut packets = std::mem::take(&mut self.scratch_packets);
            packets.clear();
            for &i in &pending {
                let sequence = self.next_sequence();
                let spec = specs[i];
                let probe = ProbePacket {
                    source: self.source,
                    destination: self.destination,
                    flow: spec.flow,
                    ttl: spec.ttl,
                    sequence,
                };
                packets.push_with(|buf| build_udp_probe_into(&probe, buf));
            }
            self.probes_sent += pending.len() as u64;

            // One transport crossing for the whole round.
            let mut replies = std::mem::take(&mut self.scratch_replies);
            self.transport.send_batch(&packets, &mut replies);

            // Decode, keeping unanswered specs for the next attempt.
            let mut write = 0usize;
            for slot in 0..pending.len() {
                let i = pending[slot];
                let obs = replies
                    .get(slot)
                    .and_then(|reply| self.decode_reply(specs[i], reply, replies.timestamp(slot)));
                match obs {
                    Some(obs) => {
                        self.log.indirect.push(obs.clone());
                        results[i] = Some(obs);
                    }
                    None => {
                        pending[write] = i;
                        write += 1;
                    }
                }
            }
            pending.truncate(write);

            self.scratch_packets = packets;
            self.scratch_replies = replies;
        }

        self.scratch_pending = pending;
        results
    }

    fn direct_probe(&mut self, target: Ipv4Addr) -> Option<DirectObservation> {
        for _attempt in 0..=self.retries {
            let sequence = self.next_sequence();
            let packet = build_echo_probe(
                self.source,
                target,
                self.echo_identifier,
                sequence,
                ECHO_TTL,
            );
            self.probes_sent += 1;
            let Some(reply) = self.transport.send_packet(&packet) else {
                continue;
            };
            let Ok(parsed) = parse_reply(&reply) else {
                continue;
            };
            if parsed.kind != ReplyKind::EchoReply
                || parsed.echo != Some((self.echo_identifier, sequence))
            {
                continue;
            }
            let obs = DirectObservation {
                target: parsed.responder,
                ip_id: parsed.reply_ip_id,
                probe_ip_id: sequence,
                reply_ttl: parsed.reply_ttl,
                timestamp: self.transport.now(),
            };
            self.log.direct.push(obs.clone());
            return Some(obs);
        }
        None
    }

    fn probes_sent(&self) -> u64 {
        self.probes_sent
    }

    fn destination(&self) -> Ipv4Addr {
        self.destination
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpt_sim::SimNetwork;
    use mlpt_topo::canonical;
    use mlpt_topo::graph::addr;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    fn prober_over(topo: mlpt_topo::MultipathTopology, seed: u64) -> TransportProber<SimNetwork> {
        let dst = topo.destination();
        TransportProber::new(SimNetwork::new(topo, seed), SRC, dst)
    }

    #[test]
    fn probe_returns_observation() {
        let mut p = prober_over(canonical::simplest_diamond(), 1);
        let obs = p.probe(FlowId(3), 1).unwrap();
        assert_eq!(obs.responder, addr(0, 0));
        assert!(!obs.at_destination);
        assert_eq!(obs.flow, FlowId(3));
        assert_eq!(obs.ttl, 1);
        assert_eq!(p.probes_sent(), 1);
        assert_eq!(p.log().indirect.len(), 1);
    }

    #[test]
    fn destination_flagged() {
        let mut p = prober_over(canonical::simplest_diamond(), 1);
        let obs = p.probe(FlowId(3), 3).unwrap();
        assert!(obs.at_destination);
        assert_eq!(obs.responder, p.destination());
    }

    #[test]
    fn direct_probe_observation() {
        let mut p = prober_over(canonical::simplest_diamond(), 1);
        let obs = p.direct_probe(addr(1, 0)).unwrap();
        assert_eq!(obs.target, addr(1, 0));
        assert_eq!(p.log().direct.len(), 1);
    }

    #[test]
    fn retries_count_as_probes() {
        use mlpt_sim::FaultPlan;
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        let net = SimNetwork::builder(topo)
            .faults(FaultPlan::with_loss(1.0, 0.0))
            .seed(1)
            .build();
        let mut p = TransportProber::new(net, SRC, dst).with_retries(2);
        assert!(p.probe(FlowId(0), 1).is_none());
        assert_eq!(p.probes_sent(), 3, "initial try + 2 retries");
    }

    #[test]
    fn timestamps_progress() {
        let mut p = prober_over(canonical::simplest_diamond(), 1);
        let a = p.probe(FlowId(0), 1).unwrap().timestamp;
        let b = p.probe(FlowId(1), 1).unwrap().timestamp;
        assert!(b > a);
    }

    #[test]
    fn log_accumulates_ip_ids() {
        let mut p = prober_over(canonical::simplest_diamond(), 1);
        for f in 0..8u16 {
            let _ = p.probe(FlowId(f), 2);
        }
        assert_eq!(p.log().indirect.len(), 8);
        // IP IDs were stamped by the simulator's counters.
        let ids: Vec<u16> = p.log().indirect.iter().map(|o| o.ip_id).collect();
        assert!(ids.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn probe_batch_matches_sequential_exactly() {
        // The headline equivalence: batched and per-probe dispatch over
        // identical simulators yield bit-identical observations, logs and
        // probe counts.
        let topo = canonical::fig1_meshed();
        let specs: Vec<ProbeSpec> = (0..24u16)
            .flat_map(|f| (1..=4u8).map(move |ttl| ProbeSpec::new(FlowId(f), ttl)))
            .collect();

        let mut batched = prober_over(topo.clone(), 99);
        let batch_results = batched.probe_batch(&specs);

        let mut sequential = prober_over(topo, 99).with_dispatch(DispatchMode::PerProbe);
        let seq_results = sequential.probe_batch(&specs);

        assert_eq!(batch_results, seq_results);
        assert_eq!(batched.probes_sent(), sequential.probes_sent());
        assert_eq!(batched.log().indirect, sequential.log().indirect);
    }

    #[test]
    fn probe_batch_counts_losses() {
        use mlpt_sim::FaultPlan;
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        let net = SimNetwork::builder(topo)
            .faults(FaultPlan::with_loss(1.0, 0.0))
            .seed(1)
            .build();
        let mut p = TransportProber::new(net, SRC, dst).with_retries(1);
        let specs = [ProbeSpec::new(FlowId(0), 1), ProbeSpec::new(FlowId(1), 1)];
        let results = p.probe_batch(&specs);
        assert!(results.iter().all(Option::is_none));
        // 2 specs × (1 try + 1 retry) = 4 packets on the wire.
        assert_eq!(p.probes_sent(), 4);
    }

    #[test]
    fn probe_batch_empty_is_noop() {
        let mut p = prober_over(canonical::simplest_diamond(), 1);
        assert!(p.probe_batch(&[]).is_empty());
        assert_eq!(p.probes_sent(), 0);
    }
}
