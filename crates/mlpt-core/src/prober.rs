//! The prober: logical probes over a byte transport.
//!
//! Tracing algorithms think in terms of "send flow f at TTL t, which
//! interface answered?" — the [`Prober`] trait. [`TransportProber`]
//! implements it over any [`PacketTransport`] by building real probe
//! datagrams and parsing real replies, so every algorithmic probe
//! round-trips through the wire substrate exactly as a real tool's
//! packets would.
//!
//! Every observation (interface, IP ID, reply TTL, MPLS labels,
//! timestamp) is also recorded in a [`ProbeLog`], which is the "for free"
//! data of Sec. 4.1: the alias resolution stages start from what tracing
//! already collected.

use mlpt_wire::icmp::MplsLabelStackEntry;
use mlpt_wire::probe::{build_echo_probe, build_udp_probe, parse_reply, ProbePacket, ReplyKind};
use mlpt_wire::transport::PacketTransport;
use mlpt_wire::FlowId;
use std::net::Ipv4Addr;

/// What one traceroute-style (indirect) probe observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeObservation {
    /// The flow that was probed.
    pub flow: FlowId,
    /// The TTL that was probed.
    pub ttl: u8,
    /// The interface that answered.
    pub responder: Ipv4Addr,
    /// True if the responder is the trace destination (Port Unreachable).
    pub at_destination: bool,
    /// IP ID of the reply datagram (IP-ID counter sample).
    pub ip_id: u16,
    /// TTL of the reply datagram as received.
    pub reply_ttl: u8,
    /// MPLS label stack attached to the reply, outermost first.
    pub mpls: Vec<MplsLabelStackEntry>,
    /// Transport timestamp of the reply.
    pub timestamp: u64,
}

/// What one ping-style (direct) probe observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectObservation {
    /// The address probed (and that answered).
    pub target: Ipv4Addr,
    /// IP ID of the echo reply.
    pub ip_id: u16,
    /// IP ID carried by the probe itself: some routers simply echo it
    /// back, which MIDAR must detect as an unusable series (Sec. 4.2).
    pub probe_ip_id: u16,
    /// TTL of the echo reply as received.
    pub reply_ttl: u8,
    /// Transport timestamp of the reply.
    pub timestamp: u64,
}

/// Logical probing interface used by all algorithms.
pub trait Prober {
    /// Sends an indirect (UDP, TTL-limited) probe.
    fn probe(&mut self, flow: FlowId, ttl: u8) -> Option<ProbeObservation>;

    /// Sends a direct (ICMP echo) probe to a specific interface.
    fn direct_probe(&mut self, target: Ipv4Addr) -> Option<DirectObservation>;

    /// Total probe packets sent so far (including retries and losses) —
    /// the paper's cost metric.
    fn probes_sent(&self) -> u64;

    /// Destination being traced towards.
    fn destination(&self) -> Ipv4Addr;
}

/// Everything observed through a prober, kept for alias resolution.
#[derive(Debug, Clone, Default)]
pub struct ProbeLog {
    /// All indirect observations, in probing order.
    pub indirect: Vec<ProbeObservation>,
    /// All direct observations, in probing order.
    pub direct: Vec<DirectObservation>,
}

/// A [`Prober`] over a [`PacketTransport`], building and parsing real
/// packets.
pub struct TransportProber<T: PacketTransport> {
    transport: T,
    source: Ipv4Addr,
    destination: Ipv4Addr,
    sequence: u16,
    echo_identifier: u16,
    retries: u8,
    probes_sent: u64,
    log: ProbeLog,
}

impl<T: PacketTransport> TransportProber<T> {
    /// Creates a prober for one source/destination pair.
    pub fn new(transport: T, source: Ipv4Addr, destination: Ipv4Addr) -> Self {
        Self {
            transport,
            source,
            destination,
            sequence: 0,
            echo_identifier: 0x4D4C, // "ML"
            retries: 0,
            probes_sent: 0,
            log: ProbeLog::default(),
        }
    }

    /// Sets how many times an unanswered probe is retried (default 0).
    /// Retries matter only under fault injection; each retry counts as a
    /// sent probe, as it would on the wire.
    pub fn with_retries(mut self, retries: u8) -> Self {
        self.retries = retries;
        self
    }

    /// The accumulated observation log.
    pub fn log(&self) -> &ProbeLog {
        &self.log
    }

    /// Consumes the prober, returning transport and log.
    pub fn into_parts(self) -> (T, ProbeLog) {
        (self.transport, self.log)
    }

    /// Access to the underlying transport (e.g. to advance a simulated
    /// clock between rounds).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    fn next_sequence(&mut self) -> u16 {
        self.sequence = self.sequence.wrapping_add(1);
        self.sequence
    }
}

impl<T: PacketTransport> Prober for TransportProber<T> {
    fn probe(&mut self, flow: FlowId, ttl: u8) -> Option<ProbeObservation> {
        for _attempt in 0..=self.retries {
            let sequence = self.next_sequence();
            let packet = build_udp_probe(&ProbePacket {
                source: self.source,
                destination: self.destination,
                flow,
                ttl,
                sequence,
            });
            self.probes_sent += 1;
            let Some(reply) = self.transport.send_packet(&packet) else {
                continue;
            };
            let Ok(parsed) = parse_reply(&reply) else {
                continue;
            };
            // Reject replies that don't quote our probe (mismatched flow):
            // a real tool matches replies to probes by the quoted headers.
            if parsed.probe_flow != Some(flow) {
                continue;
            }
            let at_destination = matches!(parsed.kind, ReplyKind::PortUnreachable)
                || parsed.responder == self.destination;
            let obs = ProbeObservation {
                flow,
                ttl,
                responder: parsed.responder,
                at_destination,
                ip_id: parsed.reply_ip_id,
                reply_ttl: parsed.reply_ttl,
                mpls: parsed.mpls_stack,
                timestamp: self.transport.now(),
            };
            self.log.indirect.push(obs.clone());
            return Some(obs);
        }
        None
    }

    fn direct_probe(&mut self, target: Ipv4Addr) -> Option<DirectObservation> {
        for _attempt in 0..=self.retries {
            let sequence = self.next_sequence();
            let packet =
                build_echo_probe(self.source, target, self.echo_identifier, sequence, 64);
            self.probes_sent += 1;
            let Some(reply) = self.transport.send_packet(&packet) else {
                continue;
            };
            let Ok(parsed) = parse_reply(&reply) else {
                continue;
            };
            if parsed.kind != ReplyKind::EchoReply
                || parsed.echo != Some((self.echo_identifier, sequence))
            {
                continue;
            }
            let obs = DirectObservation {
                target: parsed.responder,
                ip_id: parsed.reply_ip_id,
                probe_ip_id: sequence,
                reply_ttl: parsed.reply_ttl,
                timestamp: self.transport.now(),
            };
            self.log.direct.push(obs.clone());
            return Some(obs);
        }
        None
    }

    fn probes_sent(&self) -> u64 {
        self.probes_sent
    }

    fn destination(&self) -> Ipv4Addr {
        self.destination
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpt_sim::SimNetwork;
    use mlpt_topo::canonical;
    use mlpt_topo::graph::addr;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    fn prober_over(
        topo: mlpt_topo::MultipathTopology,
        seed: u64,
    ) -> TransportProber<SimNetwork> {
        let dst = topo.destination();
        TransportProber::new(SimNetwork::new(topo, seed), SRC, dst)
    }

    #[test]
    fn probe_returns_observation() {
        let mut p = prober_over(canonical::simplest_diamond(), 1);
        let obs = p.probe(FlowId(3), 1).unwrap();
        assert_eq!(obs.responder, addr(0, 0));
        assert!(!obs.at_destination);
        assert_eq!(obs.flow, FlowId(3));
        assert_eq!(obs.ttl, 1);
        assert_eq!(p.probes_sent(), 1);
        assert_eq!(p.log().indirect.len(), 1);
    }

    #[test]
    fn destination_flagged() {
        let mut p = prober_over(canonical::simplest_diamond(), 1);
        let obs = p.probe(FlowId(3), 3).unwrap();
        assert!(obs.at_destination);
        assert_eq!(obs.responder, p.destination());
    }

    #[test]
    fn direct_probe_observation() {
        let mut p = prober_over(canonical::simplest_diamond(), 1);
        let obs = p.direct_probe(addr(1, 0)).unwrap();
        assert_eq!(obs.target, addr(1, 0));
        assert_eq!(p.log().direct.len(), 1);
    }

    #[test]
    fn retries_count_as_probes() {
        use mlpt_sim::FaultPlan;
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        let net = SimNetwork::builder(topo)
            .faults(FaultPlan::with_loss(1.0, 0.0))
            .seed(1)
            .build();
        let mut p = TransportProber::new(net, SRC, dst).with_retries(2);
        assert!(p.probe(FlowId(0), 1).is_none());
        assert_eq!(p.probes_sent(), 3, "initial try + 2 retries");
    }

    #[test]
    fn timestamps_progress() {
        let mut p = prober_over(canonical::simplest_diamond(), 1);
        let a = p.probe(FlowId(0), 1).unwrap().timestamp;
        let b = p.probe(FlowId(1), 1).unwrap().timestamp;
        assert!(b > a);
    }

    #[test]
    fn log_accumulates_ip_ids() {
        let mut p = prober_over(canonical::simplest_diamond(), 1);
        for f in 0..8u16 {
            let _ = p.probe(FlowId(f), 2);
        }
        assert_eq!(p.log().indirect.len(), 8);
        // IP IDs were stamped by the simulator's counters.
        let ids: Vec<u16> = p.log().indirect.iter().map(|o| o.ip_id).collect();
        assert!(ids.windows(2).any(|w| w[0] != w[1]));
    }
}
