//! Serializable trace reports — the tool's machine-readable output.
//!
//! Survey infrastructures archive traces in structured formats (scamper's
//! warts, M-Lab's paris-traceroute schema, ref. \[23\]); [`TraceReport`] is this
//! tool's equivalent: a self-contained, serde-serializable summary of one
//! multipath trace, including per-hop vertices with their flow counts and
//! the witnessed edges, suitable for JSON archival and later re-analysis.

use crate::trace::{Algorithm, SwitchReason, Trace, TraceOutcome};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// One interface observed at a hop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportVertex {
    /// The interface address.
    pub address: Ipv4Addr,
    /// How many distinct flows were observed reaching it.
    pub flows: usize,
    /// Whether this is the trace destination.
    pub is_destination: bool,
}

/// One hop of the report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportHop {
    /// Probe TTL of this hop.
    pub ttl: u8,
    /// Interfaces observed, in discovery order.
    pub vertices: Vec<ReportVertex>,
    /// Probes sent at this TTL.
    pub probes: u64,
}

/// A witnessed edge between adjacent hops.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportEdge {
    /// TTL of the `from` side.
    pub ttl: u8,
    /// Interface at `ttl`.
    pub from: Ipv4Addr,
    /// Interface at `ttl + 1`.
    pub to: Ipv4Addr,
}

/// The complete machine-readable trace summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Algorithm that produced the trace.
    pub algorithm: Algorithm,
    /// Destination traced towards.
    pub destination: Ipv4Addr,
    /// Whether the destination answered.
    pub reached_destination: bool,
    /// Total probes sent.
    pub probes_sent: u64,
    /// Probes skipped thanks to shared-stop-set hits (0 outside
    /// stop-set sweeps).
    pub probes_elided: u64,
    /// MDA-Lite escalation, if any.
    pub switched: Option<SwitchReason>,
    /// Whether the probe budget was exhausted.
    pub budget_exhausted: bool,
    /// How the trace ended (complete, or gracefully degraded partial).
    pub outcome: TraceOutcome,
    /// Per-hop observations.
    pub hops: Vec<ReportHop>,
    /// Witnessed edges.
    pub edges: Vec<ReportEdge>,
}

impl TraceReport {
    /// Builds the report from a completed trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let max_ttl = trace.discovery.max_observed_ttl();
        let mut hops = Vec::with_capacity(usize::from(max_ttl));
        let mut edges = Vec::new();
        for ttl in 1..=max_ttl {
            let vertices = trace
                .vertices_at(ttl)
                .iter()
                .map(|&address| ReportVertex {
                    address,
                    flows: trace.discovery.flows_reaching(ttl, address).len(),
                    is_destination: address == trace.destination,
                })
                .collect();
            hops.push(ReportHop {
                ttl,
                vertices,
                probes: trace.discovery.probes_at(ttl),
            });
            for (from, tos) in trace.discovery.edges_from(ttl) {
                for to in tos {
                    edges.push(ReportEdge { ttl, from, to });
                }
            }
        }
        Self {
            algorithm: trace.algorithm,
            destination: trace.destination,
            reached_destination: trace.reached_destination,
            probes_sent: trace.probes_sent,
            probes_elided: trace.probes_elided,
            switched: trace.switched,
            budget_exhausted: trace.budget_exhausted,
            outcome: trace.outcome,
            hops,
            edges,
        }
    }

    /// Total vertices across hops.
    pub fn total_vertices(&self) -> usize {
        self.hops.iter().map(|h| h.vertices.len()).sum()
    }

    /// Widest hop in the report.
    pub fn max_width(&self) -> usize {
        self.hops
            .iter()
            .map(|h| h.vertices.len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TraceConfig;
    use crate::mda_lite::trace_mda_lite;
    use crate::prober::TransportProber;
    use mlpt_sim::SimNetwork;
    use mlpt_topo::canonical;

    fn report() -> TraceReport {
        let topo = canonical::fig1_unmeshed();
        let net = SimNetwork::new(topo.clone(), 7);
        let mut prober =
            TransportProber::new(net, "192.0.2.1".parse().unwrap(), topo.destination());
        let trace = trace_mda_lite(&mut prober, &TraceConfig::new(7));
        TraceReport::from_trace(&trace)
    }

    #[test]
    fn report_summarises_trace() {
        let r = report();
        assert_eq!(r.algorithm, Algorithm::MdaLite);
        assert!(r.reached_destination);
        assert_eq!(r.hops.len(), 4);
        assert_eq!(r.max_width(), 4);
        assert_eq!(r.total_vertices(), 8);
        assert!(!r.edges.is_empty());
        // Every hop reports its probe count; the whole trace's probes are
        // at least the per-hop sums (retries never under-count).
        let per_hop: u64 = r.hops.iter().map(|h| h.probes).sum();
        assert!(per_hop <= r.probes_sent + 1);
        // Destination flagged exactly once, at the last hop.
        let dest_flags: usize = r
            .hops
            .iter()
            .flat_map(|h| &h.vertices)
            .filter(|v| v.is_destination)
            .count();
        assert_eq!(dest_flags, 1);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        let back: TraceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn flows_counts_positive() {
        let r = report();
        for hop in &r.hops {
            for v in &hop.vertices {
                assert!(v.flows >= 1, "{} observed with no flow", v.address);
            }
        }
    }
}
