//! Sans-IO probe sessions: probing protocols as resumable state
//! machines.
//!
//! The MDA, MDA-Lite and single-flow tracers used to be blocking
//! functions that owned a [`Prober`] for the duration of one trace. This
//! module re-expresses each of them as a **session**: a state machine
//! that never touches a transport. A session is driven by repeating
//!
//! 1. [`TraceSession::poll`] — advances the machine until it either has a
//!    round of probes ready ([`SessionState::Probing`]) or is done
//!    ([`SessionState::Finished`]);
//! 2. [`TraceSession::next_rounds`] — the pending round, one
//!    [`ProbeSpec`] per probe;
//! 3. [`TraceSession::on_replies`] — hands back one observation slot per
//!    spec (in spec order; `None` marks loss) and lets the machine
//!    transition.
//!
//! Because sessions perform no IO, *any* driver produces the identical
//! trace: the single-session driver [`drive`] behind [`trace_mda`],
//! [`trace_mda_lite`] and [`trace_single_flow`]; or the concurrent sweep
//! scheduler in [`crate::engine`], which interleaves many sessions'
//! rounds over one shared transport. The state machines emit probe
//! rounds in **exactly** the order the original blocking implementations
//! dispatched them — including flow-allocator draws on budget-exhausted
//! paths — so a session-driven trace is bit-identical to its blocking
//! ancestor, probe for probe.
//!
//! # Sessions beyond traceroute
//!
//! Tracing only ever sends one kind of packet (a TTL-limited UDP probe
//! towards the session's destination), so [`TraceSession`] speaks
//! [`ProbeSpec`]s. Other probing protocols — above all the paper's
//! Round 0–10 alias resolution, which interleaves TTL-limited UDP with
//! ICMP Echo Requests aimed at individual interfaces — need a wider
//! vocabulary. [`ProbeSession`] is that generalisation: the same
//! poll / next round / absorb replies contract, but over typed
//! [`ProbeRequest`]s and [`ProbeOutcome`]s. The sweep engine schedules
//! `ProbeSession`s; trace sessions join in through the
//! [`TraceProbeSession`] adapter, and [`drive_probes`] is the blocking
//! single-session driver (the alias analogue of [`drive`]).
//!
//! [`trace_mda`]: crate::mda::trace_mda
//! [`trace_mda_lite`]: crate::mda_lite::trace_mda_lite
//! [`trace_single_flow`]: crate::single_flow::trace_single_flow

use crate::artifact::{AuditVerdict, RouteAudit, RouteHealth};
use crate::config::TraceConfig;
use crate::discovery::{Discovery, FlowAllocator};
use crate::prober::{DirectObservation, ProbeObservation, ProbeSpec, Prober};
use crate::stopset::{contribution_from_discovery, StopContribution, StopSeen, StopSnapshot};
use crate::trace::{Algorithm, PartialReason, SwitchReason, Trace, TraceOutcome};
use mlpt_wire::FlowId;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// What a session wants next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// A round of probes is ready in [`TraceSession::next_rounds`].
    Probing,
    /// The trace is complete; collect it with [`TraceSession::take_trace`].
    Finished,
}

/// One typed probe a [`ProbeSession`] asks its driver to put on the wire.
///
/// The two kinds cover everything the paper's protocols send: indirect
/// (traceroute-style) probes that elicit ICMP errors, and direct
/// (ping-style) probes that elicit Echo Replies. New probe kinds (e.g. a
/// full-TTL UDP probe aimed straight at an interface) slot in as further
/// variants; drivers match exhaustively, so adding one is a compile-time
/// checklist of every dispatch path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeRequest {
    /// TTL-limited UDP towards the session's
    /// [`destination`](ProbeSession::destination) — the indirect probe
    /// behind all tracing and the MBT's Time Exceeded samples.
    Udp(ProbeSpec),
    /// ICMP Echo Request aimed directly at `target` — the direct probe
    /// behind fingerprint completion and MIDAR-style Echo Reply series.
    Echo {
        /// The interface address to ping.
        target: Ipv4Addr,
    },
}

/// What one [`ProbeRequest`] observed, typed to match the request kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Reply to a [`ProbeRequest::Udp`] probe.
    Udp(ProbeObservation),
    /// Reply to a [`ProbeRequest::Echo`] probe.
    Echo(DirectObservation),
}

/// A resumable, transport-free probing session over typed requests — the
/// generalisation of [`TraceSession`] the sweep engine schedules.
///
/// The contract mirrors [`TraceSession`]: call
/// [`poll`](ProbeSession::poll); while it returns
/// [`SessionState::Probing`], dispatch the requests of
/// [`next_rounds`](ProbeSession::next_rounds) and answer with
/// [`on_replies`](ProbeSession::on_replies) (one slot per request, in
/// request order; `None` marks loss). Rounds are never empty while
/// probing. Drivers report wire-level packet counts through
/// [`note_wire_probes`](ProbeSession::note_wire_probes) just before each
/// round's replies, so sessions can account the paper's cost metric
/// per protocol phase even when a transport retries on their behalf.
pub trait ProbeSession {
    /// Advances the machine; returns whether probes are ready or the
    /// session is done.
    fn poll(&mut self) -> SessionState;

    /// The pending round of typed probe requests (non-empty while
    /// [`SessionState::Probing`]; empty once finished). Stable until
    /// [`on_replies`](ProbeSession::on_replies) is called.
    fn next_rounds(&self) -> &[ProbeRequest];

    /// Delivers the round's outcomes, one slot per request in request
    /// order. Slots are `&mut` so the session can move observations out
    /// instead of cloning them.
    fn on_replies(&mut self, results: &mut [Option<ProbeOutcome>]);

    /// The destination this session probes towards: the target of its
    /// [`ProbeRequest::Udp`] probes and the key under which a scheduler
    /// deduplicates concurrent sessions.
    fn destination(&self) -> Ipv4Addr;

    /// Informs the session how many packets the driver actually put on
    /// the wire for the round about to be delivered (retries included).
    /// Called immediately before [`on_replies`](ProbeSession::on_replies).
    fn note_wire_probes(&mut self, count: u64) {
        let _ = count;
    }

    /// A hint of how many probes this session is still expected to cost,
    /// consulted by cost-aware schedulers
    /// ([`crate::engine::Admission::CostAware`]) when deciding *when* to
    /// admit a session — never *what* it probes, so the hint may be
    /// arbitrarily wrong without affecting results. `0` means "no
    /// estimate" and sorts last. Trace sessions report what the
    /// remaining probe budget allows (the only a-priori bound a
    /// topology-blind tracer has); richer sessions refine the hint as
    /// they learn — the multilevel session switches to its
    /// discovered-hop-width alias cost once its trace phase completes.
    fn predicted_cost(&self) -> u64 {
        0
    }

    /// Tells the session the driver is finalizing it early (graceful
    /// degradation: the stall watchdog fired). After this call the
    /// driver treats the session as finished regardless of
    /// [`poll`](ProbeSession::poll); sessions that surface a result
    /// should record the reason and report it (trace sessions mark the
    /// trace [`crate::TraceOutcome::Partial`]). The default ignores the
    /// notification.
    fn abort(&mut self, reason: PartialReason) {
        let _ = reason;
    }

    /// Hands the session the shared-stop-set snapshot its sweep
    /// generation adopted ([`crate::stopset`]). Called once at
    /// admission, before the first [`poll`](ProbeSession::poll).
    /// Sessions without a stop-set-aware mode ignore it and probe
    /// classically; the empty snapshot must leave behaviour
    /// bit-identical to a sweep without a stop set.
    fn adopt_stop_set(&mut self, snapshot: &StopSnapshot) {
        let _ = snapshot;
    }

    /// The session's firsthand `(TTL, interface)` observations,
    /// collected by the engine once the session finishes and committed
    /// to the shared stop set in source order. `None` (the default)
    /// opts the session out of contributing. Contributions must never
    /// include observations adopted from a snapshot — only what the
    /// session itself saw on the wire.
    fn stop_contribution(&mut self) -> Option<StopContribution> {
        None
    }

    /// Whether a timed-out `request` is still worth retrying. Stop-set
    /// aware sessions answer `false` when the shared set meanwhile
    /// confirmed what the probe would observe; the engine then elides
    /// the retry and the session adopts the predicted responder when
    /// the slot comes back unanswered.
    fn should_retry(&self, request: &ProbeRequest) -> bool {
        let _ = request;
        true
    }

    /// Route-change health counters, collected by the engine when the
    /// session finalizes. `None` (the default) means the session ran no
    /// route-change audit.
    fn route_health(&self) -> Option<RouteHealth> {
        None
    }
}

/// Adapts any [`TraceSession`] to the [`ProbeSession`] contract: every
/// [`ProbeSpec`] round becomes a round of [`ProbeRequest::Udp`] requests,
/// and UDP outcomes are handed back as plain observations. This is how
/// the trace algorithms ride the generalised sweep scheduler unchanged.
pub struct TraceProbeSession<S> {
    inner: S,
    requests: Vec<ProbeRequest>,
    replies: Vec<Option<ProbeObservation>>,
    partial: Option<PartialReason>,
}

impl<S: TraceSession> TraceProbeSession<S> {
    /// Wraps a trace session.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            requests: Vec::new(),
            replies: Vec::new(),
            partial: None,
        }
    }

    /// The wrapped session.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps the trace session.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// How the finished trace should be stamped: `Partial` if the driver
    /// aborted this session, `Complete` otherwise.
    pub fn outcome(&self) -> TraceOutcome {
        match self.partial {
            Some(reason) => TraceOutcome::Partial { reason },
            None => TraceOutcome::Complete,
        }
    }
}

impl<S: TraceSession> ProbeSession for TraceProbeSession<S> {
    fn poll(&mut self) -> SessionState {
        let state = self.inner.poll();
        if state == SessionState::Probing && self.requests.is_empty() {
            self.requests.extend(
                self.inner
                    .next_rounds()
                    .iter()
                    .map(|&s| ProbeRequest::Udp(s)),
            );
        }
        state
    }

    fn next_rounds(&self) -> &[ProbeRequest] {
        &self.requests
    }

    fn on_replies(&mut self, results: &mut [Option<ProbeOutcome>]) {
        self.replies.clear();
        self.replies.extend(results.iter_mut().map(|slot| {
            match slot.take() {
                Some(ProbeOutcome::Udp(obs)) => Some(obs),
                // An echo outcome for a UDP request cannot happen through
                // a well-behaved driver; treat it as loss.
                Some(ProbeOutcome::Echo(_)) | None => None,
            }
        }));
        self.inner.on_replies(&self.replies);
        self.requests.clear();
    }

    fn destination(&self) -> Ipv4Addr {
        self.inner.destination()
    }

    fn predicted_cost(&self) -> u64 {
        self.inner.predicted_cost()
    }

    fn abort(&mut self, reason: PartialReason) {
        self.partial = Some(reason);
    }

    fn adopt_stop_set(&mut self, snapshot: &StopSnapshot) {
        self.inner.adopt_stop_set(snapshot);
    }

    fn stop_contribution(&mut self) -> Option<StopContribution> {
        self.inner.stop_contribution()
    }

    fn should_retry(&self, request: &ProbeRequest) -> bool {
        match request {
            ProbeRequest::Udp(spec) => self.inner.should_retry(spec),
            ProbeRequest::Echo { .. } => true,
        }
    }

    fn route_health(&self) -> Option<RouteHealth> {
        self.inner.route_health()
    }
}

/// Drives a [`ProbeSession`] to completion over a [`Prober`] — the
/// blocking single-session driver behind `run_rounds` and
/// `trace_multilevel` in `mlpt-alias`. Returns the wire-level packet
/// count (retries included).
///
/// Consecutive UDP requests are dispatched as one
/// [`Prober::probe_batch`] round (bit-identical to per-probe dispatch on
/// a synchronous transport without retries); echo requests go through
/// [`Prober::direct_probe`] one at a time, exactly as the blocking alias
/// protocol always dispatched them.
pub fn drive_probes<S: ProbeSession + ?Sized, P: Prober>(session: &mut S, prober: &mut P) -> u64 {
    let start = prober.probes_sent();
    let mut requests: Vec<ProbeRequest> = Vec::new();
    let mut specs: Vec<ProbeSpec> = Vec::new();
    let mut outcomes: Vec<Option<ProbeOutcome>> = Vec::new();
    while session.poll() == SessionState::Probing {
        let round_start = prober.probes_sent();
        requests.clear();
        requests.extend_from_slice(session.next_rounds());
        outcomes.clear();
        let mut i = 0;
        while i < requests.len() {
            match requests[i] {
                ProbeRequest::Udp(_) => {
                    specs.clear();
                    while let Some(ProbeRequest::Udp(spec)) = requests.get(i) {
                        specs.push(*spec);
                        i += 1;
                    }
                    let results = prober.probe_batch(&specs);
                    outcomes.extend(results.into_iter().map(|o| o.map(ProbeOutcome::Udp)));
                }
                ProbeRequest::Echo { target } => {
                    outcomes.push(prober.direct_probe(target).map(ProbeOutcome::Echo));
                    i += 1;
                }
            }
        }
        session.note_wire_probes(prober.probes_sent() - round_start);
        session.on_replies(&mut outcomes);
    }
    prober.probes_sent() - start
}

/// A resumable, transport-free tracing session.
///
/// The contract: call [`poll`](TraceSession::poll); while it returns
/// [`SessionState::Probing`], dispatch the specs of
/// [`next_rounds`](TraceSession::next_rounds) and answer with
/// [`on_replies`](TraceSession::on_replies) (one slot per spec, in spec
/// order). Once `poll` returns [`SessionState::Finished`], collect the
/// result with [`take_trace`](TraceSession::take_trace), passing the
/// number of probe packets actually put on the wire (retries included) so
/// the trace reports the paper's cost metric faithfully.
///
/// Trace sessions are `Send`: they are pure owned data (evidence base,
/// flow allocator, pending round), which is what lets a sharded sweep
/// ([`crate::shard::ShardedSweepEngine`]) drive disjoint shards on
/// worker threads while each session still runs strictly sequentially.
pub trait TraceSession: Send {
    /// Advances the machine; returns whether probes are ready or the
    /// session is done.
    fn poll(&mut self) -> SessionState;

    /// The pending round of probes (non-empty while
    /// [`SessionState::Probing`]; empty once finished). Stable until
    /// [`on_replies`](TraceSession::on_replies) is called.
    fn next_rounds(&self) -> &[ProbeSpec];

    /// Delivers the round's outcomes, one slot per spec in spec order.
    fn on_replies(&mut self, results: &[Option<ProbeObservation>]);

    /// The destination this session traces towards.
    fn destination(&self) -> Ipv4Addr;

    /// Consumes the accumulated evidence into a [`Trace`]. `probes_sent`
    /// is the wire-level packet count the driver measured.
    fn take_trace(&mut self, probes_sent: u64) -> Trace;

    /// Cost hint for cost-aware admission (see
    /// [`ProbeSession::predicted_cost`]); the adapter forwards it. `0`
    /// means "no estimate".
    fn predicted_cost(&self) -> u64 {
        0
    }

    /// Stop-set adoption (see [`ProbeSession::adopt_stop_set`]); the
    /// adapter forwards it. Called before the first poll; the empty
    /// snapshot must leave behaviour bit-identical to classic probing.
    fn adopt_stop_set(&mut self, snapshot: &StopSnapshot) {
        let _ = snapshot;
    }

    /// Firsthand observations for the shared stop set (see
    /// [`ProbeSession::stop_contribution`]); the adapter forwards it.
    fn stop_contribution(&mut self) -> Option<StopContribution> {
        None
    }

    /// Retry-elision verdict for a timed-out `spec` (see
    /// [`ProbeSession::should_retry`]); the adapter forwards it.
    fn should_retry(&self, spec: &ProbeSpec) -> bool {
        let _ = spec;
        true
    }

    /// Route-change health counters (see [`ProbeSession::route_health`]);
    /// the adapter forwards it.
    fn route_health(&self) -> Option<RouteHealth> {
        None
    }
}

impl<S: TraceSession + ?Sized> TraceSession for Box<S> {
    fn poll(&mut self) -> SessionState {
        (**self).poll()
    }

    fn next_rounds(&self) -> &[ProbeSpec] {
        (**self).next_rounds()
    }

    fn on_replies(&mut self, results: &[Option<ProbeObservation>]) {
        (**self).on_replies(results)
    }

    fn destination(&self) -> Ipv4Addr {
        (**self).destination()
    }

    fn take_trace(&mut self, probes_sent: u64) -> Trace {
        (**self).take_trace(probes_sent)
    }

    fn predicted_cost(&self) -> u64 {
        (**self).predicted_cost()
    }

    fn adopt_stop_set(&mut self, snapshot: &StopSnapshot) {
        (**self).adopt_stop_set(snapshot)
    }

    fn stop_contribution(&mut self) -> Option<StopContribution> {
        (**self).stop_contribution()
    }

    fn should_retry(&self, spec: &ProbeSpec) -> bool {
        (**self).should_retry(spec)
    }

    fn route_health(&self) -> Option<RouteHealth> {
        (**self).route_health()
    }
}

/// Drives a session to completion over a [`Prober`] — the single-session
/// driver behind the classic blocking entry points.
pub fn drive<S: TraceSession + ?Sized, P: Prober>(session: &mut S, prober: &mut P) -> Trace {
    let before = prober.probes_sent();
    while session.poll() == SessionState::Probing {
        let results = prober.probe_batch(session.next_rounds());
        session.on_replies(&results);
    }
    session.take_trace(prober.probes_sent() - before)
}

/// True once every vertex known at `ttl` is the destination (and at least
/// one is): the trace has converged.
pub(crate) fn converged(state: &Discovery, destination: Ipv4Addr, ttl: u8) -> bool {
    let vs = state.vertices_at(ttl);
    !vs.is_empty() && vs.iter().all(|&v| v == destination)
}

/// Outcome of handing a round to [`SessionCore::emit`].
enum Emit {
    /// Probes were granted by the budget and await dispatch.
    Yield,
    /// Nothing crossed the wire. `sent_all` is false when the budget cut
    /// a non-empty round to zero (the blocking code's "break" signal) and
    /// true when the round was empty to begin with.
    NoneSent {
        /// Whether the (empty) round counts as fully sent.
        sent_all: bool,
    },
}

/// State shared by every session kind: the evidence base, the flow
/// allocator, the probe budget and the pending round.
struct SessionCore {
    destination: Ipv4Addr,
    config: TraceConfig,
    state: Discovery,
    flows: FlowAllocator,
    /// Probes charged against the budget so far (granted, not wire-level).
    used: u64,
    /// The pending round awaiting dispatch/replies.
    round: Vec<ProbeSpec>,
    /// Recycled round storage: rounds are built into this buffer and
    /// returned to it after delivery, so steady-state probing performs
    /// no per-round heap allocations (the property the blocking code's
    /// reusable `ctx.specs` provided).
    spare: Vec<ProbeSpec>,
    /// True when the budget truncated the last emitted round — the
    /// state-machine analogue of `send_probe_batch` returning false.
    round_cut: bool,
}

impl SessionCore {
    fn new(destination: Ipv4Addr, config: TraceConfig) -> Self {
        let flows = FlowAllocator::new(config.seed);
        Self {
            destination,
            config,
            state: Discovery::new(),
            flows,
            used: 0,
            round: Vec::new(),
            spare: Vec::new(),
            round_cut: false,
        }
    }

    /// Hands out the recycled round buffer, emptied.
    fn specs_buffer(&mut self) -> Vec<ProbeSpec> {
        let mut buf = std::mem::take(&mut self.spare);
        buf.clear();
        buf
    }

    /// Returns an unused round buffer to the recycler.
    fn recycle(&mut self, mut buf: Vec<ProbeSpec>) {
        buf.clear();
        self.spare = buf;
    }

    fn exhausted(&self) -> bool {
        self.used >= self.config.probe_budget
    }

    /// Emits a round under the budget, mirroring the blocking
    /// `send_probe_batch`: the round is truncated to the remaining budget
    /// and noted in the discovery state before dispatch.
    fn emit(&mut self, mut specs: Vec<ProbeSpec>) -> Emit {
        let want = specs.len() as u64;
        let granted = want.min(self.config.probe_budget.saturating_sub(self.used));
        self.used += granted;
        let cut = granted < want;
        if granted == 0 {
            self.recycle(specs);
            return Emit::NoneSent { sent_all: !cut };
        }
        specs.truncate(granted as usize);
        self.state.note_probes_sent(&specs);
        self.round = specs;
        self.round_cut = cut;
        Emit::Yield
    }

    /// Records a delivered round into the discovery state.
    fn absorb(&mut self, results: &[Option<ProbeObservation>]) {
        let round = std::mem::take(&mut self.round);
        debug_assert_eq!(round.len(), results.len(), "one result slot per spec");
        for (spec, result) in round.iter().zip(results) {
            if let Some(obs) = result {
                self.state
                    .record(spec.flow, spec.ttl, obs.responder, obs.at_destination);
            }
        }
        self.recycle(round);
    }

    /// Marks every flow the state has seen as taken by the allocator
    /// (run_mda's entry behaviour, needed when the MDA resumes over
    /// MDA-Lite evidence).
    fn reserve_used_flows(&mut self) {
        let used: Vec<FlowId> = self.state.used_flows().iter().copied().collect();
        self.flows.reserve(used);
    }
}

/// Uniform (no node control) hop discovery: the persistent reuse cursor
/// plus round construction under the stopping rule. Shared by the MDA's
/// single-parent hops and every MDA-Lite hop.
struct UniformState {
    reuse: Vec<FlowId>,
    pos: usize,
}

impl UniformState {
    fn new(reuse: Vec<FlowId>) -> Self {
        Self { reuse, pos: 0 }
    }

    /// Builds the next round owed under the stopping rule, or `None` once
    /// the rule fires. Consumes reuse flows first (skipping ones already
    /// probed at `ttl`), then draws fresh ones — exactly the blocking
    /// loop's `reuse_iter.find(..).unwrap_or_else(fresh)`.
    fn build_round(&mut self, core: &mut SessionCore, ttl: u8) -> Option<Vec<ProbeSpec>> {
        let k = core.state.vertices_at(ttl).len().max(1);
        let sent = core.state.probes_at(ttl);
        if core.config.stopping.should_stop(k, sent) {
            return None;
        }
        let owed = core.config.stopping.n(k).saturating_sub(sent).max(1);
        let mut specs = core.specs_buffer();
        specs.reserve(owed as usize);
        for _ in 0..owed {
            let mut reused = None;
            while self.pos < self.reuse.len() {
                let f = self.reuse[self.pos];
                self.pos += 1;
                if !core.state.flow_probed_at(ttl, f) {
                    reused = Some(f);
                    break;
                }
            }
            let flow = match reused {
                Some(f) => f,
                // Flow space exhausted: probe with what we have (an
                // empty round reads as the rule having fired).
                None => match core.flows.try_fresh() {
                    Some(f) => f,
                    None => break,
                },
            };
            specs.push(ProbeSpec::new(flow, ttl));
        }
        if specs.is_empty() {
            return None;
        }
        Some(specs)
    }
}

/// Per-vertex node-control progress inside the MDA's multi-parent hops.
enum VertexSub {
    /// Recompute the pending-parent worklist (top of the blocking `loop`).
    LoopTop,
    /// Top of `process_vertex`'s loop for the current parent.
    Eval,
    /// A flows-reaching batch is in flight.
    WaitBatch,
    /// About to draw a fresh flow and emit one hunt probe at `ttl - 1`.
    HuntNext {
        /// Hunt iterations left (the `node_control_attempts` counter).
        left: u64,
    },
    /// A hunt probe is in flight.
    WaitHunt { flow: FlowId, left: u64 },
    /// Hunt succeeded; emit the follow-up probe at `ttl` with its flow.
    EmitPostHunt { flow: FlowId },
    /// The post-hunt probe is in flight.
    WaitPostHunt,
}

/// Multi-parent hop state: the worklist and the current parent's
/// node-control progress.
struct ParentsState {
    processed: BTreeSet<Ipv4Addr>,
    pending: Vec<Ipv4Addr>,
    idx: usize,
    sub: VertexSub,
}

impl ParentsState {
    /// Advances past the current parent (the end of one `process_vertex`
    /// call in the blocking code).
    fn finish_parent(&mut self) {
        self.processed.insert(self.pending[self.idx]);
        self.idx += 1;
        self.sub = if self.idx < self.pending.len() {
            VertexSub::Eval
        } else {
            VertexSub::LoopTop
        };
    }
}

enum MdaPhase {
    /// Evaluate the hop loop's entry conditions for the current ttl.
    HopStart,
    /// Uniform discovery at the current ttl (single known parent).
    Uniform(UniformState),
    /// Vertex-by-vertex discovery with node control.
    Parents(ParentsState),
    Done,
}

/// The full MDA as a state machine over a [`SessionCore`]. Also embedded
/// by [`MdaLiteSession`] for the switchover, resuming over everything the
/// Lite pass learned.
struct MdaMachine {
    ttl: u8,
    phase: MdaPhase,
}

impl MdaMachine {
    fn new() -> Self {
        Self::at(1)
    }

    /// A machine entering the hop loop at `ttl` — the full restart
    /// (`ttl == 1`) and route-change recovery (`ttl ==` the first
    /// invalidated hop) are the same state, since `HopStart` re-derives
    /// everything from the evidence base.
    fn at(ttl: u8) -> Self {
        Self {
            ttl: ttl.max(1),
            phase: MdaPhase::HopStart,
        }
    }

    /// End-of-hop bookkeeping shared by every exit from a hop's probing.
    fn post_hop(&mut self, core: &SessionCore) {
        if converged(&core.state, core.destination, self.ttl) || core.exhausted() {
            self.phase = MdaPhase::Done;
        } else {
            self.ttl += 1;
            self.phase = MdaPhase::HopStart;
        }
    }

    /// Advances until a round is pending (`true`) or the MDA is done
    /// (`false`).
    fn advance(&mut self, core: &mut SessionCore) -> bool {
        loop {
            match &mut self.phase {
                MdaPhase::Done => return false,
                MdaPhase::HopStart => {
                    if self.ttl > core.config.max_ttl {
                        self.phase = MdaPhase::Done;
                        continue;
                    }
                    if self.ttl > 1
                        && converged(
                            &core.state,
                            core.destination,
                            self.ttl.saturating_sub(1).max(1),
                        )
                    {
                        self.phase = MdaPhase::Done;
                        continue;
                    }
                    let single_parent =
                        self.ttl == 1 || core.state.vertices_at(self.ttl - 1).len() <= 1;
                    if single_parent {
                        let reuse = if self.ttl == 1 {
                            Vec::new()
                        } else {
                            core.state.reuse_queue(self.ttl - 1)
                        };
                        self.phase = MdaPhase::Uniform(UniformState::new(reuse));
                    } else {
                        self.phase = MdaPhase::Parents(ParentsState {
                            processed: BTreeSet::new(),
                            pending: Vec::new(),
                            idx: 0,
                            sub: VertexSub::LoopTop,
                        });
                    }
                }
                MdaPhase::Uniform(uniform) => match uniform.build_round(core, self.ttl) {
                    Some(specs) => match core.emit(specs) {
                        Emit::Yield => return true,
                        // A non-empty round cut to nothing: the budget is
                        // gone, the hop loop breaks.
                        Emit::NoneSent { .. } => self.post_hop(core),
                    },
                    None => self.post_hop(core),
                },
                MdaPhase::Parents(parents) => match parents.sub {
                    VertexSub::LoopTop => {
                        parents.pending = core
                            .state
                            .vertices_at(self.ttl - 1)
                            .iter()
                            .copied()
                            .filter(|v| !parents.processed.contains(v) && *v != core.destination)
                            .collect();
                        if parents.pending.is_empty() || core.exhausted() {
                            self.post_hop(core);
                        } else {
                            parents.idx = 0;
                            parents.sub = VertexSub::Eval;
                        }
                    }
                    VertexSub::Eval => {
                        let parent = parents.pending[parents.idx];
                        let (sent_via, successors) = core.state.probes_via(parent, self.ttl);
                        let k = successors.len().max(1);
                        if core.config.stopping.should_stop(k, sent_via) {
                            parents.finish_parent();
                            continue;
                        }
                        let owed =
                            core.config.stopping.n(k).saturating_sub(sent_via).max(1) as usize;
                        let mut specs = core.specs_buffer();
                        specs.extend(
                            core.state
                                .flows_reaching(self.ttl - 1, parent)
                                .into_iter()
                                .filter(|&f| !core.state.flow_probed_at(self.ttl, f))
                                .take(owed)
                                .map(|f| ProbeSpec::new(f, self.ttl)),
                        );
                        if !specs.is_empty() {
                            match core.emit(specs) {
                                Emit::Yield => {
                                    parents.sub = VertexSub::WaitBatch;
                                    return true;
                                }
                                Emit::NoneSent { .. } => parents.finish_parent(),
                            }
                        } else {
                            parents.sub = VertexSub::HuntNext {
                                left: core.config.node_control_attempts,
                            };
                        }
                    }
                    VertexSub::HuntNext { left } => {
                        if left == 0 {
                            // Attempts exhausted: the hunt returns None
                            // and the parent is given up on.
                            parents.finish_parent();
                            continue;
                        }
                        // The blocking hunt draws the flow before the
                        // budget check — preserved for identical
                        // allocator streams. A dry flow space ends the
                        // hunt like attempts exhaustion would.
                        let Some(flow) = core.flows.try_fresh() else {
                            parents.finish_parent();
                            continue;
                        };
                        let mut specs = core.specs_buffer();
                        specs.push(ProbeSpec::new(flow, self.ttl - 1));
                        match core.emit(specs) {
                            Emit::Yield => {
                                parents.sub = VertexSub::WaitHunt {
                                    flow,
                                    left: left - 1,
                                };
                                return true;
                            }
                            Emit::NoneSent { .. } => parents.finish_parent(),
                        }
                    }
                    VertexSub::EmitPostHunt { flow } => {
                        let mut specs = core.specs_buffer();
                        specs.push(ProbeSpec::new(flow, self.ttl));
                        match core.emit(specs) {
                            Emit::Yield => {
                                parents.sub = VertexSub::WaitPostHunt;
                                return true;
                            }
                            Emit::NoneSent { .. } => parents.finish_parent(),
                        }
                    }
                    VertexSub::WaitBatch | VertexSub::WaitHunt { .. } | VertexSub::WaitPostHunt => {
                        debug_assert!(false, "advance called while awaiting replies");
                        return true;
                    }
                },
            }
        }
    }

    /// Applies the transition the blocking code performed right after a
    /// dispatch returned (the replies are already absorbed into state).
    fn resume(&mut self, core: &SessionCore) {
        let cut = core.round_cut;
        match &mut self.phase {
            MdaPhase::Uniform(_) => {
                if cut {
                    self.post_hop(core);
                }
            }
            MdaPhase::Parents(parents) => match parents.sub {
                VertexSub::WaitBatch | VertexSub::WaitPostHunt => {
                    if cut {
                        parents.finish_parent();
                    } else {
                        parents.sub = VertexSub::Eval;
                    }
                }
                VertexSub::WaitHunt { flow, left } => {
                    let parent = parents.pending[parents.idx];
                    if cut {
                        parents.finish_parent();
                    } else if core.state.flow_vertex(self.ttl - 1, flow) == Some(parent) {
                        parents.sub = VertexSub::EmitPostHunt { flow };
                    } else if left == 0 {
                        parents.finish_parent();
                    } else {
                        parents.sub = VertexSub::HuntNext { left };
                    }
                }
                _ => debug_assert!(false, "resume without a round in flight"),
            },
            MdaPhase::HopStart | MdaPhase::Done => {
                debug_assert!(false, "resume without a round in flight")
            }
        }
    }
}

/// The classic MDA as a [`TraceSession`].
pub struct MdaSession {
    core: SessionCore,
    machine: MdaMachine,
    finished: bool,
    audit: Option<RouteAudit>,
    auditing: bool,
}

impl MdaSession {
    /// Creates a session tracing towards `destination`.
    pub fn new(destination: Ipv4Addr, config: TraceConfig) -> Self {
        let audit = config.reprobe.map(RouteAudit::new);
        let mut core = SessionCore::new(destination, config);
        core.reserve_used_flows();
        Self {
            core,
            machine: MdaMachine::new(),
            finished: false,
            audit,
            auditing: false,
        }
    }
}

impl TraceSession for MdaSession {
    fn poll(&mut self) -> SessionState {
        if self.finished {
            return SessionState::Finished;
        }
        if !self.core.round.is_empty() {
            return SessionState::Probing;
        }
        if self.machine.advance(&mut self.core) {
            return SessionState::Probing;
        }
        // The stopping rule fired: audit the committed evidence before
        // trusting it (audit probes are bounded separately and never
        // charged to the stopping rule's per-hop accounting).
        if let Some(audit) = self.audit.as_mut() {
            if let Some(specs) = audit.start(&self.core.state) {
                self.core.round = specs;
                self.auditing = true;
                return SessionState::Probing;
            }
            audit.finalize(&self.core.state);
        }
        self.finished = true;
        SessionState::Finished
    }

    fn next_rounds(&self) -> &[ProbeSpec] {
        &self.core.round
    }

    fn on_replies(&mut self, results: &[Option<ProbeObservation>]) {
        if self.core.round.is_empty() {
            return;
        }
        if self.auditing {
            self.auditing = false;
            let round = std::mem::take(&mut self.core.round);
            // mlpt: allow(MLPT-W004, reason = "invariant: `auditing` is only set true in the branch that saw `audit` as Some, and `audit` is never cleared")
            let audit = self.audit.as_mut().expect("auditing without an audit");
            let verdict = audit.absorb(
                &round,
                results,
                &mut self.core.state,
                self.core.destination,
                &BTreeMap::new(),
            );
            self.core.recycle(round);
            if let AuditVerdict::Recover { at_ttl } = verdict {
                self.machine = MdaMachine::at(at_ttl);
            }
            return;
        }
        self.core.absorb(results);
        self.machine.resume(&self.core);
    }

    fn destination(&self) -> Ipv4Addr {
        self.core.destination
    }

    fn predicted_cost(&self) -> u64 {
        // No topology knowledge before probing: the remaining budget is
        // the only a-priori bound on what this trace can still cost.
        self.core.config.probe_budget.saturating_sub(self.core.used)
    }

    fn route_health(&self) -> Option<RouteHealth> {
        self.audit.as_ref().map(RouteAudit::health)
    }

    fn take_trace(&mut self, probes_sent: u64) -> Trace {
        Trace {
            algorithm: Algorithm::Mda,
            destination: self.core.destination,
            reached_destination: self.core.state.destination_ttl().is_some(),
            probes_sent,
            probes_elided: 0,
            switched: None,
            budget_exhausted: self.core.exhausted(),
            outcome: audit_outcome(self.audit.as_ref()),
            discovery: std::mem::take(&mut self.core.state),
        }
    }
}

/// The trace outcome a session's audit dictates: `Partial { RouteChanged }`
/// on recovery exhaustion, `Complete` otherwise (including no audit).
fn audit_outcome(audit: Option<&RouteAudit>) -> TraceOutcome {
    match audit.and_then(RouteAudit::partial) {
        Some(reason) => TraceOutcome::Partial { reason },
        None => TraceOutcome::Complete,
    }
}

/// Meshing-test context (Sec. 2.3.2), fixed when the test starts.
struct MeshState {
    vertices: Vec<Ipv4Addr>,
    from_ttl: u8,
    to_ttl: u8,
    wider_prev: bool,
    attempts: u64,
}

enum LitePhase {
    /// Stop-set mode: descending one-probe scan from below the start
    /// TTL, hunting the deepest hop the shared set already knows.
    Scan {
        /// TTL the scout probes next.
        ttl: u8,
    },
    /// A scan probe is in flight.
    ScanWait {
        /// TTL the scout probed.
        ttl: u8,
    },
    HopStart,
    Uniform(UniformState),
    UniformWait(UniformState),
    Edges {
        round: u8,
    },
    EdgesWait {
        round: u8,
    },
    MeshGather(MeshState),
    MeshGatherWait(MeshState),
    MeshTrace(MeshState),
    MeshTraceWait(MeshState),
    MeshDetect(MeshState),
    Escalate(MdaMachine),
    Done,
}

/// Stop-set state of an [`MdaLiteSession`].
struct LiteStops {
    snap: StopSnapshot,
    /// The single flow the descending scan probes with (`None` when the
    /// adopted snapshot was empty and the session probes classically).
    scout: Option<FlowId>,
    probes_elided: u64,
    stop_hits: u64,
}

/// MDA-Lite as a [`TraceSession`], including the switchover: on meshing
/// or width asymmetry the embedded [`MdaMachine`] resumes over the
/// accumulated evidence.
///
/// With an adopted non-empty stop set the session first runs a
/// descending one-probe scan with a single scout flow from below the
/// snapshot's start TTL: the first `(TTL, interface)` pair the set
/// already knows short-circuits the shared prefix, and the classic
/// hop-by-hop loop resumes just above the hit. The scan supplies only
/// single-flow evidence, which MDA-Lite's diamond detection cannot rely
/// on — so any meshing or asymmetry found later escalates, as always,
/// to a full [`MdaMachine`] from TTL 1: the full-probing fallback that
/// keeps stopping-rule soundness when the set cannot supply per-hop
/// flow evidence.
pub struct MdaLiteSession {
    core: SessionCore,
    ttl: u8,
    phase: LitePhase,
    switched: Option<SwitchReason>,
    finished: bool,
    stops: Option<LiteStops>,
    audit: Option<RouteAudit>,
    auditing: bool,
}

impl MdaLiteSession {
    /// Creates a session tracing towards `destination`.
    pub fn new(destination: Ipv4Addr, config: TraceConfig) -> Self {
        let audit = config.reprobe.map(RouteAudit::new);
        Self {
            core: SessionCore::new(destination, config),
            ttl: 1,
            phase: LitePhase::HopStart,
            switched: None,
            finished: false,
            stops: None,
            audit,
            auditing: false,
        }
    }

    /// The hop loop's exit: either escalate to the full MDA or stop.
    fn end_of_hops(&mut self) {
        if self.switched.is_some() && !self.core.exhausted() {
            self.core.reserve_used_flows();
            self.phase = LitePhase::Escalate(MdaMachine::new());
        } else {
            self.phase = LitePhase::Done;
        }
    }

    /// The width-asymmetry test followed by the hop's closing checks.
    fn check_asym_then_hop_end(&mut self) {
        if pair_is_asymmetric(&self.core.state, self.ttl) {
            self.switched = Some(SwitchReason::AsymmetryDetected { ttl: self.ttl - 1 });
            self.end_of_hops();
        } else {
            self.hop_end();
        }
    }

    fn hop_end(&mut self) {
        if converged(&self.core.state, self.core.destination, self.ttl) {
            self.end_of_hops();
        } else {
            self.ttl += 1;
            self.phase = LitePhase::HopStart;
        }
    }

    /// After uniform discovery: budget check, then edge completion (the
    /// `ttl >= 2` block) or straight to the hop's closing checks.
    fn after_uniform(&mut self) {
        if self.core.exhausted() {
            self.end_of_hops();
        } else if self.ttl >= 2 {
            self.phase = LitePhase::Edges { round: 0 };
        } else {
            self.hop_end();
        }
    }

    /// After edge completion: budget check, then the meshing test when
    /// both hops are multi-vertex, else the asymmetry test.
    fn after_edges(&mut self) {
        if self.core.exhausted() {
            self.end_of_hops();
            return;
        }
        let prev_multi = self.core.state.vertices_at(self.ttl - 1).len() >= 2;
        let curr_multi = self.core.state.vertices_at(self.ttl).len() >= 2;
        if prev_multi && curr_multi {
            let wider_prev = self.core.state.vertices_at(self.ttl - 1).len()
                >= self.core.state.vertices_at(self.ttl).len();
            let (from_ttl, to_ttl) = if wider_prev {
                (self.ttl - 1, self.ttl)
            } else {
                (self.ttl, self.ttl - 1)
            };
            self.phase = LitePhase::MeshGather(MeshState {
                vertices: self.core.state.vertices_at(from_ttl).to_vec(),
                from_ttl,
                to_ttl,
                wider_prev,
                attempts: 0,
            });
        } else {
            self.check_asym_then_hop_end();
        }
    }

    /// Advances until a round is pending (`true`) or the session is done
    /// (`false`).
    fn advance(&mut self) -> bool {
        loop {
            match std::mem::replace(&mut self.phase, LitePhase::Done) {
                LitePhase::Done => return false,
                LitePhase::Scan { ttl } => {
                    // A scan phase is only entered by `adopt_stop_set`
                    // after it installed stop state with a scout flow;
                    // if either is gone, degrade to classic probing
                    // from TTL 1 rather than panic mid-sweep.
                    let Some(scout) = self.stops.as_ref().and_then(|s| s.scout) else {
                        self.ttl = 1;
                        self.phase = LitePhase::HopStart;
                        continue;
                    };
                    let mut specs = self.core.specs_buffer();
                    specs.push(ProbeSpec::new(scout, ttl));
                    match self.core.emit(specs) {
                        Emit::Yield => {
                            self.phase = LitePhase::ScanWait { ttl };
                            return true;
                        }
                        // Budget gone before the scan found anything:
                        // fall back to classic probing from TTL 1.
                        Emit::NoneSent { .. } => {
                            self.ttl = 1;
                            self.phase = LitePhase::HopStart;
                        }
                    }
                }
                LitePhase::HopStart => {
                    if self.ttl > self.core.config.max_ttl {
                        self.end_of_hops();
                        continue;
                    }
                    let reuse = if self.ttl == 1 {
                        Vec::new()
                    } else {
                        self.core.state.reuse_queue(self.ttl - 1)
                    };
                    self.phase = LitePhase::Uniform(UniformState::new(reuse));
                }
                LitePhase::Uniform(mut uniform) => {
                    match uniform.build_round(&mut self.core, self.ttl) {
                        Some(specs) => match self.core.emit(specs) {
                            Emit::Yield => {
                                self.phase = LitePhase::UniformWait(uniform);
                                return true;
                            }
                            Emit::NoneSent { .. } => self.after_uniform(),
                        },
                        None => self.after_uniform(),
                    }
                }
                LitePhase::Edges { round } => {
                    if round >= 4 {
                        self.after_edges();
                        continue;
                    }
                    let mut work = self.core.specs_buffer();
                    build_edge_work(&self.core.state, self.ttl, &mut work);
                    if work.is_empty() {
                        self.core.recycle(work);
                        self.after_edges();
                        continue;
                    }
                    match self.core.emit(work) {
                        Emit::Yield => {
                            self.phase = LitePhase::EdgesWait { round };
                            return true;
                        }
                        Emit::NoneSent { .. } => self.after_edges(),
                    }
                }
                LitePhase::MeshGather(mut mesh) => {
                    let phi = self.core.config.phi as usize;
                    let deficit: u64 = mesh
                        .vertices
                        .iter()
                        .map(|&v| {
                            phi.saturating_sub(
                                self.core.state.flows_reaching(mesh.from_ttl, v).len(),
                            ) as u64
                        })
                        .sum();
                    if deficit == 0 {
                        self.phase = LitePhase::MeshTrace(mesh);
                        continue;
                    }
                    let allowance = self
                        .core
                        .config
                        .node_control_attempts
                        .saturating_sub(mesh.attempts);
                    let round = deficit.min(allowance);
                    if round == 0 {
                        self.phase = LitePhase::MeshTrace(mesh);
                        continue;
                    }
                    mesh.attempts += round;
                    let from_ttl = mesh.from_ttl;
                    let mut specs = self.core.specs_buffer();
                    for _ in 0..round {
                        // A dry flow space truncates the gather round.
                        let Some(flow) = self.core.flows.try_fresh() else {
                            break;
                        };
                        specs.push(ProbeSpec::new(flow, from_ttl));
                    }
                    if specs.is_empty() {
                        self.phase = LitePhase::MeshTrace(mesh);
                        continue;
                    }
                    match self.core.emit(specs) {
                        Emit::Yield => {
                            self.phase = LitePhase::MeshGatherWait(mesh);
                            return true;
                        }
                        Emit::NoneSent { .. } => self.phase = LitePhase::MeshTrace(mesh),
                    }
                }
                LitePhase::MeshTrace(mesh) => {
                    let phi = self.core.config.phi as usize;
                    let mut specs = self.core.specs_buffer();
                    for &v in &mesh.vertices {
                        specs.extend(
                            self.core
                                .state
                                .flows_reaching(mesh.from_ttl, v)
                                .into_iter()
                                .take(phi)
                                .filter(|&f| !self.core.state.flow_probed_at(mesh.to_ttl, f))
                                .map(|f| ProbeSpec::new(f, mesh.to_ttl)),
                        );
                    }
                    match self.core.emit(specs) {
                        Emit::Yield => {
                            self.phase = LitePhase::MeshTraceWait(mesh);
                            return true;
                        }
                        // An empty round counts as fully sent: detection
                        // still runs over the accumulated evidence.
                        Emit::NoneSent { sent_all: true } => {
                            self.phase = LitePhase::MeshDetect(mesh)
                        }
                        // Budget gone: meshing_test returns "not meshed".
                        Emit::NoneSent { sent_all: false } => self.check_asym_then_hop_end(),
                    }
                }
                LitePhase::MeshDetect(mesh) => {
                    let earlier = mesh.from_ttl.min(mesh.to_ttl);
                    let meshed = if mesh.wider_prev {
                        self.core
                            .state
                            .edges_from(earlier)
                            .values()
                            .any(|succs| succs.len() >= 2)
                    } else {
                        self.core
                            .state
                            .reverse_edges_from(earlier)
                            .values()
                            .any(|preds| preds.len() >= 2)
                    };
                    if meshed {
                        self.switched = Some(SwitchReason::MeshingDetected { ttl: self.ttl - 1 });
                        self.end_of_hops();
                    } else {
                        self.check_asym_then_hop_end();
                    }
                }
                LitePhase::Escalate(mut machine) => {
                    if machine.advance(&mut self.core) {
                        self.phase = LitePhase::Escalate(machine);
                        return true;
                    }
                    self.phase = LitePhase::Done;
                }
                LitePhase::ScanWait { .. }
                | LitePhase::UniformWait(_)
                | LitePhase::EdgesWait { .. }
                | LitePhase::MeshGatherWait(_)
                | LitePhase::MeshTraceWait(_) => {
                    debug_assert!(false, "advance called while awaiting replies");
                    return false;
                }
            }
        }
    }
}

impl TraceSession for MdaLiteSession {
    fn poll(&mut self) -> SessionState {
        if self.finished {
            return SessionState::Finished;
        }
        if !self.core.round.is_empty() {
            return SessionState::Probing;
        }
        if self.advance() {
            return SessionState::Probing;
        }
        // Stopping rules (or the escalated MDA) are done: audit the
        // committed evidence before trusting it.
        if let Some(audit) = self.audit.as_mut() {
            if let Some(specs) = audit.start(&self.core.state) {
                self.core.round = specs;
                self.auditing = true;
                return SessionState::Probing;
            }
            audit.finalize(&self.core.state);
        }
        self.finished = true;
        SessionState::Finished
    }

    fn next_rounds(&self) -> &[ProbeSpec] {
        &self.core.round
    }

    fn on_replies(&mut self, results: &[Option<ProbeObservation>]) {
        if self.core.round.is_empty() {
            return;
        }
        if self.auditing {
            self.auditing = false;
            let round = std::mem::take(&mut self.core.round);
            // mlpt: allow(MLPT-W004, reason = "invariant: `auditing` is only set true in the branch that saw `audit` as Some, and `audit` is never cleared")
            let audit = self.audit.as_mut().expect("auditing without an audit");
            let verdict = audit.absorb(
                &round,
                results,
                &mut self.core.state,
                self.core.destination,
                &BTreeMap::new(),
            );
            self.core.recycle(round);
            if let AuditVerdict::Recover { at_ttl } = verdict {
                if self.switched.is_some() {
                    // The trace ended escalated: recovery re-enters the
                    // full MDA at the invalidated hop (Lite's hop loop
                    // must not resume over switched evidence).
                    self.core.reserve_used_flows();
                    self.phase = LitePhase::Escalate(MdaMachine::at(at_ttl));
                } else {
                    self.ttl = at_ttl;
                    self.phase = LitePhase::HopStart;
                }
            }
            return;
        }
        self.core.absorb(results);
        let cut = self.core.round_cut;
        match std::mem::replace(&mut self.phase, LitePhase::Done) {
            LitePhase::ScanWait { ttl } => {
                // Mirrors the `Scan` arm: stop state with a scout flow
                // is installed before any scan round can be in flight,
                // but if either is gone, degrade to classic probing
                // from TTL 1 rather than panic mid-sweep.
                let stops = self.stops.as_mut();
                let scout = stops.as_ref().and_then(|s| s.scout);
                let (Some(stops), Some(scout)) = (stops, scout) else {
                    self.ttl = 1;
                    self.phase = LitePhase::HopStart;
                    return;
                };
                let hit = self
                    .core
                    .state
                    .flow_vertex(ttl, scout)
                    .is_some_and(|v| stops.snap.contains(ttl, v));
                if hit {
                    // The set already knows this hop, so the prefix
                    // below is reconstructable from it; the hop loop
                    // resumes just above the hit. The scout's
                    // observation stays in the evidence base and counts
                    // towards the stopping rule like any other probe.
                    stops.stop_hits += 1;
                    stops.probes_elided += self
                        .core
                        .config
                        .stopping
                        .elision_estimate(u64::from(ttl - 1));
                    self.ttl = ttl + 1;
                    self.phase = LitePhase::HopStart;
                } else if ttl <= 1 {
                    // Scanned to the bottom without a hit: probe
                    // classically from TTL 1 over the scout's evidence.
                    self.ttl = 1;
                    self.phase = LitePhase::HopStart;
                } else {
                    self.phase = LitePhase::Scan { ttl: ttl - 1 };
                }
            }
            LitePhase::UniformWait(uniform) => {
                if cut {
                    self.after_uniform();
                } else {
                    self.phase = LitePhase::Uniform(uniform);
                }
            }
            LitePhase::EdgesWait { round } => {
                if cut {
                    self.after_edges();
                } else {
                    self.phase = LitePhase::Edges { round: round + 1 };
                }
            }
            LitePhase::MeshGatherWait(mesh) => {
                if cut {
                    self.phase = LitePhase::MeshTrace(mesh);
                } else {
                    self.phase = LitePhase::MeshGather(mesh);
                }
            }
            LitePhase::MeshTraceWait(mesh) => {
                if cut {
                    self.check_asym_then_hop_end();
                } else {
                    self.phase = LitePhase::MeshDetect(mesh);
                }
            }
            LitePhase::Escalate(mut machine) => {
                machine.resume(&self.core);
                self.phase = LitePhase::Escalate(machine);
            }
            other => {
                debug_assert!(false, "replies delivered with no round in flight");
                self.phase = other;
            }
        }
    }

    fn destination(&self) -> Ipv4Addr {
        self.core.destination
    }

    fn predicted_cost(&self) -> u64 {
        // Same bound as the full MDA: the remaining probe budget.
        self.core.config.probe_budget.saturating_sub(self.core.used)
    }

    fn adopt_stop_set(&mut self, snapshot: &StopSnapshot) {
        debug_assert!(
            matches!(self.phase, LitePhase::HopStart) && self.ttl == 1 && !self.finished,
            "stop sets are adopted before probing starts"
        );
        let start = snapshot.start_ttl().min(self.core.config.max_ttl);
        let scout = if snapshot.is_empty() || start <= 1 {
            // Generation 0 (or a degenerate start TTL): classic probing
            // from TTL 1, no extra flow draw — bit-identical to a sweep
            // without a stop set.
            None
        } else {
            let scout = self.core.flows.fresh();
            self.phase = LitePhase::Scan { ttl: start - 1 };
            Some(scout)
        };
        self.stops = Some(LiteStops {
            snap: snapshot.clone(),
            scout,
            probes_elided: 0,
            stop_hits: 0,
        });
    }

    fn stop_contribution(&mut self) -> Option<StopContribution> {
        // Every record in the evidence base is firsthand: MDA-Lite never
        // adopts foreign observations (scan hits only short-circuit
        // probing, they never inject records).
        let stops = self.stops.as_ref()?;
        let mut contribution = contribution_from_discovery(
            &self.core.state,
            self.core.destination,
            None,
            stops.probes_elided,
            stops.stop_hits,
        );
        if let Some(audit) = self.audit.as_ref() {
            contribution.evict.extend_from_slice(audit.evictions());
        }
        Some(contribution)
    }

    fn route_health(&self) -> Option<RouteHealth> {
        self.audit.as_ref().map(RouteAudit::health)
    }

    fn take_trace(&mut self, probes_sent: u64) -> Trace {
        Trace {
            algorithm: Algorithm::MdaLite,
            destination: self.core.destination,
            reached_destination: self.core.state.destination_ttl().is_some(),
            probes_sent,
            probes_elided: self.stops.as_ref().map_or(0, |s| s.probes_elided),
            switched: self.switched,
            budget_exhausted: self.core.exhausted(),
            outcome: audit_outcome(self.audit.as_ref()),
            discovery: std::mem::take(&mut self.core.state),
        }
    }
}

/// Deterministic edge-completion work between `ttl - 1` and `ttl`
/// (Sec. 2.3.1): forward probes for successor-less vertices, backward
/// probes for predecessor-less ones.
fn build_edge_work(state: &Discovery, ttl: u8, work: &mut Vec<ProbeSpec>) {
    let edges = state.edges_from(ttl - 1);
    let rev = state.reverse_edges_from(ttl - 1);

    for &u in state.vertices_at(ttl - 1) {
        if edges.get(&u).is_none_or(BTreeSet::is_empty) {
            if let Some(&f) = state
                .flows_reaching(ttl - 1, u)
                .iter()
                .find(|&&f| !state.flow_probed_at(ttl, f))
            {
                work.push(ProbeSpec::new(f, ttl));
            }
        }
    }
    for &v in state.vertices_at(ttl) {
        if rev.get(&v).is_none_or(BTreeSet::is_empty) {
            if let Some(&f) = state
                .flows_reaching(ttl, v)
                .iter()
                .find(|&&f| !state.flow_probed_at(ttl - 1, f))
            {
                work.push(ProbeSpec::new(f, ttl - 1));
            }
        }
    }
}

/// Width-asymmetry test (Sec. 2.3.3).
pub(crate) fn pair_is_asymmetric(state: &Discovery, ttl: u8) -> bool {
    let edges = state.edges_from(ttl - 1);
    let rev = state.reverse_edges_from(ttl - 1);

    let succ_counts: Vec<usize> = state
        .vertices_at(ttl - 1)
        .iter()
        .map(|v| edges.get(v).map_or(0, BTreeSet::len))
        .collect();
    let pred_counts: Vec<usize> = state
        .vertices_at(ttl)
        .iter()
        .map(|v| rev.get(v).map_or(0, BTreeSet::len))
        .collect();

    let uneven = |counts: &[usize]| {
        counts
            .iter()
            .filter(|&&c| c > 0) // vertices with no evidence don't testify
            .collect::<BTreeSet<_>>()
            .len()
            > 1
    };
    uneven(&succ_counts) || uneven(&pred_counts)
}

/// Direction of the stop-set-aware single-flow probing legs.
enum SfDir {
    /// From the mid-path start TTL towards the destination.
    Forward,
    /// From below the start TTL towards the source, until a shared-stop
    /// hit.
    Backward,
}

/// Stop-set state of a [`SingleFlowSession`].
struct SfStops {
    snap: StopSnapshot,
    start: u8,
    dir: SfDir,
    /// Firsthand observations (TTL → responder) — the honest basis of
    /// the contribution; adopted responders never enter it.
    seen: BTreeMap<u8, Ipv4Addr>,
    /// Smallest TTL at which this session *itself* saw the destination.
    seen_dest_ttl: Option<u8>,
    probes_elided: u64,
    stop_hits: u64,
}

/// Paris traceroute with one flow identifier as a [`TraceSession`]: one
/// probe per TTL, stopping at the destination.
///
/// With an adopted stop set ([`TraceSession::adopt_stop_set`]) the
/// session runs Doubletree-style: it starts at the snapshot's mid-path
/// TTL, probes forward until the destination answers (or the set
/// predicts the rest of the path from a same-destination contributor —
/// the global stop), then probes backward towards the source until it
/// observes an interface the set already knows (the local stop), eliding
/// the shared near-source prefix. The empty snapshot leaves behaviour
/// exactly classic.
pub struct SingleFlowSession {
    destination: Ipv4Addr,
    config: TraceConfig,
    state: Discovery,
    flow: FlowId,
    ttl: u8,
    round: Vec<ProbeSpec>,
    done: bool,
    stops: Option<SfStops>,
    audit: Option<RouteAudit>,
    auditing: bool,
    finished: bool,
}

impl SingleFlowSession {
    /// Creates a session tracing towards `destination` with `flow`.
    pub fn new(destination: Ipv4Addr, config: TraceConfig, flow: FlowId) -> Self {
        let audit = config.reprobe.map(RouteAudit::new);
        Self {
            destination,
            config,
            state: Discovery::new(),
            flow,
            ttl: 1,
            round: Vec::new(),
            done: false,
            stops: None,
            audit,
            auditing: false,
            finished: false,
        }
    }

    /// Ends the forward leg: turns around below the start TTL (the
    /// backward leg), or finishes when no prefix is owed.
    fn end_forward(&mut self) {
        match self.stops.as_mut() {
            Some(stops) if matches!(stops.dir, SfDir::Forward) && stops.start > 1 => {
                stops.dir = SfDir::Backward;
                self.ttl = stops.start - 1;
            }
            _ => self.done = true,
        }
    }

    /// TTL → interface for every committed record that did *not* come
    /// from a firsthand reply — i.e. responders adopted from stop-set
    /// predictions. This is the audit's stale-versus-route-change
    /// discriminator.
    fn adopted_map(&self) -> BTreeMap<u8, Ipv4Addr> {
        let mut adopted = BTreeMap::new();
        let Some(stops) = self.stops.as_ref() else {
            return adopted;
        };
        for ttl in 1..=self.state.max_observed_ttl() {
            if let Some(vertex) = self.state.flow_vertex(ttl, self.flow) {
                if stops.seen.get(&ttl) != Some(&vertex) {
                    adopted.insert(ttl, vertex);
                }
            }
        }
        adopted
    }
}

impl TraceSession for SingleFlowSession {
    fn poll(&mut self) -> SessionState {
        if self.finished {
            return SessionState::Finished;
        }
        if !self.round.is_empty() {
            return SessionState::Probing;
        }
        if !self.done && self.ttl > self.config.max_ttl {
            // The forward leg ran out of TTL horizon; in stop-set mode
            // the backward leg below the start TTL is still owed.
            self.end_forward();
        }
        if self.done {
            // Both legs are done: audit the committed evidence before
            // trusting it.
            if let Some(audit) = self.audit.as_mut() {
                if let Some(specs) = audit.start(&self.state) {
                    self.round = specs;
                    self.auditing = true;
                    return SessionState::Probing;
                }
                audit.finalize(&self.state);
            }
            self.finished = true;
            return SessionState::Finished;
        }
        self.round.clear();
        self.round.push(ProbeSpec::new(self.flow, self.ttl));
        self.state.note_probes_sent(&self.round);
        SessionState::Probing
    }

    fn next_rounds(&self) -> &[ProbeSpec] {
        &self.round
    }

    fn on_replies(&mut self, results: &[Option<ProbeObservation>]) {
        if self.round.is_empty() {
            return;
        }
        if self.auditing {
            self.auditing = false;
            let round = std::mem::take(&mut self.round);
            let adopted = self.adopted_map();
            // mlpt: allow(MLPT-W004, reason = "invariant: `auditing` is only set true in the branch that saw `audit` as Some, and `audit` is never cleared")
            let audit = self.audit.as_mut().expect("auditing without an audit");
            let verdict =
                audit.absorb(&round, results, &mut self.state, self.destination, &adopted);
            let invalidated = match verdict {
                AuditVerdict::Recover { at_ttl } => {
                    // Re-trace the invalidated suffix forward from the
                    // contradicted hop; the backward leg's surviving
                    // prefix is not owed again (start clamps to 1).
                    self.done = false;
                    self.ttl = at_ttl;
                    if let Some(stops) = self.stops.as_mut() {
                        stops.dir = SfDir::Forward;
                        stops.start = 1;
                    }
                    Some(at_ttl)
                }
                AuditVerdict::Exhausted { at_ttl } => Some(at_ttl),
                AuditVerdict::Clean => None,
            };
            if let Some(at_ttl) = invalidated {
                // Firsthand observations at and beyond the contradicted
                // hop describe the pre-change world: they leave the
                // contribution too.
                if let Some(stops) = self.stops.as_mut() {
                    let _ = stops.seen.split_off(&at_ttl);
                    if stops.seen_dest_ttl.is_some_and(|t| t >= at_ttl) {
                        stops.seen_dest_ttl = None;
                    }
                }
            }
            // Audit replies are firsthand evidence: every observation the
            // surviving state agrees with (matches, repaired stale
            // adoptions, the fresh post-change record at the contradicted
            // hop) joins the contribution basis.
            if let Some(stops) = self.stops.as_mut() {
                for (spec, result) in round.iter().zip(results) {
                    let Some(obs) = result.as_ref() else { continue };
                    if self.state.flow_vertex(spec.ttl, spec.flow) != Some(obs.responder) {
                        continue;
                    }
                    stops.seen.insert(spec.ttl, obs.responder);
                    if obs.at_destination {
                        stops.seen_dest_ttl = Some(match stops.seen_dest_ttl {
                            Some(t) => t.min(spec.ttl),
                            None => spec.ttl,
                        });
                    }
                }
            }
            return;
        }
        let spec = self.round[0];
        self.round.clear();
        // What the probe observed: the delivered reply, or — for an
        // unanswered slot — the responder the shared set predicts for
        // this (destination, flow, TTL). Paris flow determinism (same
        // destination + same flow ⇒ same path) makes the prediction
        // sound, and it is what lets the engine elide the retry.
        let (observed, firsthand) = match results.first().and_then(Option::as_ref) {
            Some(obs) => (Some((obs.responder, obs.at_destination)), true),
            None => (
                self.stops.as_ref().and_then(|stops| {
                    stops
                        .snap
                        .predicted_responder(spec.ttl, self.destination, self.flow)
                        .map(|(iface, _)| (iface, iface == self.destination))
                }),
                false,
            ),
        };
        if let Some((responder, at_destination)) = observed {
            self.state
                .record(spec.flow, spec.ttl, responder, at_destination);
            if firsthand {
                if let Some(stops) = self.stops.as_mut() {
                    stops.seen.insert(spec.ttl, responder);
                    if at_destination {
                        stops.seen_dest_ttl = Some(match stops.seen_dest_ttl {
                            Some(t) => t.min(spec.ttl),
                            None => spec.ttl,
                        });
                    }
                }
            }
        }
        if let Some(stops) = self
            .stops
            .as_mut()
            .filter(|s| matches!(s.dir, SfDir::Backward))
        {
            // Backward leg: a shared-stop hit means the set already
            // knows this interface at this TTL, so the prefix below is
            // reconstructable and probing it again is pure redundancy.
            let hit =
                observed.is_some_and(|(responder, _)| stops.snap.contains(spec.ttl, responder));
            if hit {
                stops.stop_hits += 1;
                // One probe per remaining TTL is exactly what the
                // classic tracer would have spent below here.
                stops.probes_elided += u64::from(spec.ttl - 1);
                self.done = true;
            } else if spec.ttl <= 1 {
                self.done = true;
            } else {
                self.ttl = spec.ttl - 1;
            }
            return;
        }
        // Forward leg (or classic probing from TTL 1).
        if observed.is_some_and(|(_, at_destination)| at_destination) {
            self.end_forward();
            return;
        }
        // Global stop: a same-destination same-flow contributor already
        // traced this path to the destination — adopt its destination
        // TTL and skip the probes between.
        let global = observed.and_then(|(responder, _)| {
            let stops = self.stops.as_ref()?;
            let meta = stops.snap.get(spec.ttl, responder)?;
            if meta.toward == self.destination && meta.flow == Some(self.flow) && meta.reached {
                meta.dest_ttl.filter(|&dt| dt > spec.ttl)
            } else {
                None
            }
        });
        if let Some(dest_ttl) = global {
            self.state
                .record(self.flow, dest_ttl, self.destination, true);
            // `global` is derived from `self.stops` above, so the stop
            // state is present whenever this branch runs.
            if let Some(stops) = self.stops.as_mut() {
                stops.stop_hits += 1;
                stops.probes_elided += u64::from(dest_ttl - spec.ttl);
            }
            self.end_forward();
        } else {
            self.ttl += 1;
        }
    }

    fn destination(&self) -> Ipv4Addr {
        self.destination
    }

    fn predicted_cost(&self) -> u64 {
        // One probe per remaining TTL is this tracer's exact worst case.
        u64::from(self.config.max_ttl.saturating_sub(self.ttl)) + 1
    }

    fn adopt_stop_set(&mut self, snapshot: &StopSnapshot) {
        debug_assert!(
            self.round.is_empty() && self.ttl == 1 && !self.done,
            "stop sets are adopted before probing starts"
        );
        let start = if snapshot.is_empty() {
            // Generation 0: no evidence, probe exactly classically.
            1
        } else {
            snapshot.start_ttl().clamp(1, self.config.max_ttl)
        };
        self.ttl = start;
        self.stops = Some(SfStops {
            snap: snapshot.clone(),
            start,
            dir: SfDir::Forward,
            seen: BTreeMap::new(),
            seen_dest_ttl: None,
            probes_elided: 0,
            stop_hits: 0,
        });
    }

    fn stop_contribution(&mut self) -> Option<StopContribution> {
        let stops = self.stops.as_ref()?;
        let entries = stops
            .seen
            .iter()
            .map(|(&ttl, &interface)| StopSeen {
                ttl,
                interface,
                predecessor: ttl
                    .checked_sub(1)
                    .filter(|&p| p >= 1)
                    .and_then(|p| stops.seen.get(&p).copied()),
            })
            .collect();
        Some(StopContribution {
            entries,
            destination: Some(self.destination),
            flow: Some(self.flow),
            dest_ttl: stops.seen_dest_ttl,
            reached: stops.seen_dest_ttl.is_some(),
            probes_elided: stops.probes_elided,
            stop_hits: stops.stop_hits,
            evict: self
                .audit
                .as_ref()
                .map(|audit| audit.evictions().to_vec())
                .unwrap_or_default(),
        })
    }

    fn route_health(&self) -> Option<RouteHealth> {
        self.audit.as_ref().map(RouteAudit::health)
    }

    fn should_retry(&self, spec: &ProbeSpec) -> bool {
        self.stops.as_ref().is_none_or(|stops| {
            stops
                .snap
                .predicted_responder(spec.ttl, self.destination, spec.flow)
                .is_none()
        })
    }

    fn take_trace(&mut self, probes_sent: u64) -> Trace {
        Trace {
            algorithm: Algorithm::SingleFlow,
            destination: self.destination,
            reached_destination: self.state.destination_ttl().is_some(),
            probes_sent,
            probes_elided: self.stops.as_ref().map_or(0, |s| s.probes_elided),
            switched: None,
            budget_exhausted: false,
            outcome: audit_outcome(self.audit.as_ref()),
            discovery: std::mem::take(&mut self.state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::TransportProber;
    use mlpt_sim::SimNetwork;
    use mlpt_topo::canonical;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    /// A session can be driven round by round by hand, and the pending
    /// round is stable across repeated polls.
    #[test]
    fn manual_drive_matches_driver() {
        let topo = canonical::fig1_unmeshed();
        let config = TraceConfig::new(9);

        let mut manual_prober =
            TransportProber::new(SimNetwork::new(topo.clone(), 4), SRC, topo.destination());
        let mut session = MdaSession::new(topo.destination(), config.clone());
        let mut rounds = 0usize;
        while session.poll() == SessionState::Probing {
            assert_eq!(session.poll(), SessionState::Probing, "poll is idempotent");
            assert!(!session.next_rounds().is_empty());
            let specs: Vec<ProbeSpec> = session.next_rounds().to_vec();
            let results = manual_prober.probe_batch(&specs);
            session.on_replies(&results);
            rounds += 1;
        }
        assert!(rounds > 1, "a multipath trace takes several rounds");
        let manual = session.take_trace(manual_prober.probes_sent());

        let mut prober =
            TransportProber::new(SimNetwork::new(topo.clone(), 4), SRC, topo.destination());
        let via_driver = crate::mda::trace_mda(&mut prober, &config);
        assert_eq!(manual.probes_sent, via_driver.probes_sent);
        assert_eq!(manual.discovery, via_driver.discovery);
    }

    /// Sessions never yield an empty round while probing.
    #[test]
    fn rounds_are_never_empty() {
        let topo = canonical::fig1_meshed();
        let mut prober =
            TransportProber::new(SimNetwork::new(topo.clone(), 2), SRC, topo.destination());
        let mut session = MdaLiteSession::new(topo.destination(), TraceConfig::new(2));
        while session.poll() == SessionState::Probing {
            assert!(!session.next_rounds().is_empty());
            let results = prober.probe_batch(session.next_rounds());
            session.on_replies(&results);
        }
        assert!(session.take_trace(prober.probes_sent()).reached_destination);
    }

    /// A finished session stays finished and reports an empty round.
    #[test]
    fn finished_is_terminal() {
        let topo = canonical::simplest_diamond();
        let mut prober =
            TransportProber::new(SimNetwork::new(topo.clone(), 1), SRC, topo.destination());
        let mut session =
            SingleFlowSession::new(topo.destination(), TraceConfig::new(1), FlowId(3));
        let trace = drive(&mut session, &mut prober);
        assert!(trace.reached_destination);
        assert_eq!(session.poll(), SessionState::Finished);
        assert!(session.next_rounds().is_empty());
    }
}
