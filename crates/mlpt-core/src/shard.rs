//! Sharded sweep engine: multicore scale-out of [`SweepEngine`].
//!
//! A single [`SweepEngine`] drives every session on one thread; the
//! transport parallelises *within* a crossing (the simulator's lane
//! worker pool, a real backend's `sendmmsg`), but session bookkeeping —
//! demux, pending table, retry waves, AIMD — is serial. For
//! million-destination sweeps that serial section dominates. The
//! [`ShardedSweepEngine`] splits the destination space across N
//! independent engine **shards**, each owning its own transport,
//! pending table, retry waves and AIMD budget, and drives disjoint
//! shards on scoped worker threads.
//!
//! # Partition function
//!
//! [`shard_of`] maps a destination to its shard by a fixed
//! multiplicative hash of the address — **by destination, never by
//! source index** — so every session towards one destination lands on
//! the same shard (reply tags stay unambiguous, per-destination FIFO
//! order survives) and the assignment is reproducible from the
//! destination alone. The same function must partition the transport:
//! `MultiNetwork::split_by` in `mlpt-sim` takes it as the assignment
//! closure, so a shard's lanes are exactly its sessions' lanes.
//!
//! # Generation-barrier stop-set commit
//!
//! The PR 7 shared stop set is **protocol state** (determinism rule 5):
//! its contents must be decided by source order, never by scheduling.
//! Sharding threatens that — two shards racing to commit would make the
//! set depend on thread timing. The sharded engine therefore keeps the
//! set **outside** the shards and commits at generation barriers:
//!
//! 1. Sessions are pulled from the source in generations of
//!    [`StopSetConfig::commit_width`] consecutive source indices; every
//!    session of generation *g* adopts the identical snapshot closed
//!    over generations `< g` (generation 0 adopts the empty snapshot).
//! 2. The generation's sessions are partitioned by [`shard_of`] and
//!    each shard runs its slice to completion — a **barrier**: no shard
//!    starts generation *g+1* until every shard finished *g*.
//! 3. The shards' contributions merge in **source-index order**
//!    (first-writer-wins per `(TTL, interface)`, evictions first), the
//!    snapshot is rebuilt once, and the identical snapshot fans out to
//!    every shard's generation *g+1*.
//!
//! This is exactly the unsharded engine's commit schedule — same
//! generation boundaries, same commit order, same snapshots — so every
//! per-destination outcome is bit-identical for any shard count, any
//! admission mode and any budget, and replays exactly from seed.
//! Without a stop set the whole source is one generation and shards
//! never synchronise mid-sweep.
//!
//! # Accounting
//!
//! Each shard's engine keeps its own [`SweepStats`] (exposed via
//! [`ShardedSweepEngine::shard_stats`]); [`ShardedSweepEngine::stats`]
//! merges them through the audited [`SweepStats::merge`] (sums
//! saturate; high-water marks take the max) plus the shard layer's own
//! counters: stop-set elisions/hits/evictions (harvested at the
//! barrier, since the inner engines run stop-set-less) and
//! [`SweepStats::generation_barrier_stalls`]. A stall is a
//! shard-generation that finished its slice early and parked at the
//! barrier while the slowest shard kept dispatching — counted by
//! comparing per-shard *dispatch-cycle deltas* across the generation
//! (virtual work, not wall clock), so the counter is deterministic and
//! replayable like everything else.
//!
//! All accounting invariants hold per shard **and** merged: the
//! 4-bucket partition (`probes_timed_out + replies_delivered +
//! malformed_replies + mismatched_replies == probes_sent`) and the
//! stop-set ledger (`probes_sent + probes_elided == classic
//! probes_sent` under single-flow/lossless conditions) — see
//! `tests/sweep_equivalence.rs`.
//!
//! # Caveat
//!
//! Sharding assumes per-destination transport isolation: a shard's
//! transport must own every interface its sessions can elicit replies
//! from. The simulator's per-destination lanes satisfy this by
//! construction ([`MultiNetwork::split_by`] keeps each destination's
//! lane whole); a raw-socket backend trivially satisfies it (the kernel
//! routes replies by the probe's tag, not by shard).
//!
//! [`MultiNetwork::split_by`]: ../../mlpt_sim/struct.MultiNetwork.html

use crate::engine::{SweepConfig, SweepEngine, SweepStats};
use crate::session::{ProbeSession, TraceProbeSession, TraceSession};
use crate::stopset::{SharedStopSet, StopContribution, StopSetConfig, StopSnapshot};
use crate::trace::Trace;
use mlpt_wire::transport::SplitTransport;
use std::net::Ipv4Addr;

/// The deterministic destination→shard partition function.
///
/// A fixed multiplicative hash (Knuth's 2^32/φ constant) scrambles the
/// address so adjacent prefixes spread across shards, then reduces mod
/// `shards`. `shards <= 1` always maps to shard 0. The function is
/// pure: the same `(destination, shards)` pair maps identically
/// forever, on every platform — replays and transport splits agree by
/// construction.
pub fn shard_of(destination: Ipv4Addr, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    (u32::from(destination).wrapping_mul(0x9E37_79B1) as usize) % shards
}

/// N independent [`SweepEngine`] shards behind one engine-shaped
/// surface (see module docs).
pub struct ShardedSweepEngine<T: SplitTransport> {
    engines: Vec<SweepEngine<T>>,
    /// The sweep-level config; shards run with `stop_set: None` (the
    /// set lives here, committed at generation barriers).
    config: SweepConfig,
    /// Shard-layer counters the inner engines cannot see: stop-set
    /// elisions/hits/evictions and generation-barrier stalls.
    extra: SweepStats,
    /// `extra` merged with every shard's stats, rebuilt after each run.
    merged: SweepStats,
    /// Final stop-set snapshot of the last run with an active stop set.
    last_stop_snapshot: Option<StopSnapshot>,
}

impl<T: SplitTransport> ShardedSweepEngine<T> {
    /// Creates a sharded engine over `transports` (one shard per
    /// transport, at least one), probing from `source`. The caller must
    /// have partitioned the transports with the same [`shard_of`]
    /// assignment this engine applies to sessions.
    ///
    /// # Panics
    ///
    /// Panics if `transports` is empty.
    pub fn new(transports: Vec<T>, source: Ipv4Addr) -> Self {
        assert!(
            !transports.is_empty(),
            "a sharded engine needs at least one shard transport"
        );
        let engines = transports
            .into_iter()
            .map(|t| SweepEngine::new(t, source))
            .collect();
        let mut this = Self {
            engines,
            config: SweepConfig::default(),
            extra: SweepStats::default(),
            merged: SweepStats::default(),
            last_stop_snapshot: None,
        };
        this.apply_config();
        this
    }

    /// Replaces the tuning knobs. Every shard gets the same config with
    /// [`SweepConfig::stop_set`] stripped — the shared set is
    /// coordinated here, at generation barriers, not inside a shard.
    pub fn with_config(mut self, config: SweepConfig) -> Self {
        self.config = config;
        if let Some(stop) = &mut self.config.stop_set {
            stop.commit_width = stop.commit_width.max(1);
            stop.start_ttl = stop.start_ttl.max(1);
        }
        self.apply_config();
        self
    }

    /// Pushes the current config (stop set stripped) into every shard.
    fn apply_config(&mut self) {
        let shard_config = SweepConfig {
            stop_set: None,
            ..self.config
        };
        for engine in std::mem::take(&mut self.engines) {
            self.engines.push(engine.with_config(shard_config));
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.engines.len()
    }

    /// Per-shard dispatch statistics, in shard order. Protocol-level
    /// counters sum to the unsharded equivalents; scheduling counters
    /// (dispatch cycles, batch sizes, backoffs) are per-shard facts.
    pub fn shard_stats(&self) -> Vec<&SweepStats> {
        self.engines.iter().map(|e| e.stats()).collect()
    }

    /// Merged sweep statistics: every shard's counters combined through
    /// [`SweepStats::merge`], plus the shard-layer stop-set and
    /// barrier-stall counters.
    pub fn stats(&self) -> &SweepStats {
        &self.merged
    }

    /// The shared stop set's final snapshot from the last run with
    /// [`SweepConfig::stop_set`] active (`None` otherwise) — same
    /// contract as [`SweepEngine::stop_snapshot`].
    pub fn stop_snapshot(&self) -> Option<&StopSnapshot> {
        self.last_stop_snapshot.as_ref()
    }

    /// Consumes the engine, returning the shard transports in shard
    /// order.
    pub fn into_transports(self) -> Vec<T> {
        self.engines
            .into_iter()
            .map(|e| e.into_transport())
            .collect()
    }

    /// Rebuilds the merged stats from the shard engines and the layer
    /// counters.
    fn remerge(&mut self) {
        let mut merged = self.extra;
        for engine in &self.engines {
            merged.merge(engine.stats());
        }
        self.merged = merged;
    }
}

impl<T: SplitTransport + Send> ShardedSweepEngine<T> {
    /// Streams trace sessions through the sharded engine, returning
    /// their traces in source order — the sharded analogue of
    /// [`SweepEngine::run_stream`].
    pub fn run_stream<I>(&mut self, sessions: I) -> Vec<Trace>
    where
        I: IntoIterator<Item = Box<dyn TraceSession>>,
    {
        let mut out: Vec<Option<Trace>> = Vec::new();
        self.run_stream_with(sessions, |index, trace| {
            if out.len() <= index {
                out.resize_with(index + 1, || None);
            }
            out[index] = Some(trace);
        });
        out.into_iter().flatten().collect()
    }

    /// Streams trace sessions through the sharded engine, handing each
    /// finished trace to `sink` with its source index — the sharded
    /// analogue of [`SweepEngine::run_stream_with`]. Traces are emitted
    /// in source order within each generation.
    pub fn run_stream_with<I, F>(&mut self, sessions: I, mut sink: F)
    where
        I: IntoIterator<Item = Box<dyn TraceSession>>,
        F: FnMut(usize, Trace),
    {
        let adapted = sessions.into_iter().map(TraceProbeSession::new);
        self.run_sessions_with(adapted, |index, mut session, probes_sent| {
            let outcome = session.outcome();
            let mut trace = session.inner_mut().take_trace(probes_sent);
            // Engine-side verdict (watchdog aborts) wins over a clean
            // session outcome; a self-declared partial keeps its
            // verdict — same rule as the unsharded engine.
            if outcome.is_partial() {
                trace.outcome = outcome;
            }
            sink(index, trace);
        });
    }

    /// The generalised entry point — the sharded analogue of
    /// [`SweepEngine::run_sessions_with`]: streams any `Send` probe
    /// session type through the shards, handing each finished session
    /// back with its source index and wire-level probe count. Sessions
    /// are emitted in source order within each generation.
    pub fn run_sessions_with<S, I, F>(&mut self, sessions: I, mut sink: F)
    where
        S: ProbeSession + Send,
        I: IntoIterator<Item = S>,
        F: FnMut(usize, S, u64),
    {
        self.last_stop_snapshot = None;
        let stop_cfg: Option<StopSetConfig> = self.config.stop_set;
        // Without a stop set there is nothing to synchronise on: the
        // whole source is one generation and shards run free.
        let width = match &stop_cfg {
            Some(cfg) => cfg.commit_width.max(1),
            None => usize::MAX,
        };
        let mut set = SharedStopSet::default();
        let mut snapshot = StopSnapshot::empty();
        let mut iter = sessions.into_iter();
        let mut next_index = 0usize;

        loop {
            // Pull one generation in source order; every session adopts
            // the snapshot closed over earlier generations (empty for
            // generation 0) at pull time, exactly like the unsharded
            // engine.
            let mut generation: Vec<(usize, S)> = Vec::new();
            while generation.len() < width {
                let Some(mut session) = iter.next() else {
                    break;
                };
                if stop_cfg.is_some() {
                    session.adopt_stop_set(&snapshot);
                }
                generation.push((next_index, session));
                next_index += 1;
            }
            if generation.is_empty() {
                break;
            }

            // Partition by destination; same-destination sessions land
            // on the same shard, so reply tags stay unambiguous.
            let shards = self.engines.len();
            let mut batches: Vec<Vec<(usize, S)>> = (0..shards).map(|_| Vec::new()).collect();
            for (index, session) in generation {
                batches[shard_of(session.destination(), shards)].push((index, session));
            }

            // Barrier-stall accounting baseline: dispatch cycles before
            // this generation, per participating shard.
            let cycles_before: Vec<u64> = self
                .engines
                .iter()
                .map(|e| e.stats().dispatch_cycles)
                .collect();
            let participating: Vec<usize> = batches
                .iter()
                .enumerate()
                .filter(|(_, b)| !b.is_empty())
                .map(|(i, _)| i)
                .collect();

            let harvest = stop_cfg.is_some();
            let mut results: Vec<(usize, S, u64, Option<StopContribution>)> =
                if participating.len() <= 1 {
                    // One busy shard (or none): no parallelism to buy,
                    // run inline and skip the scope entirely.
                    match participating.first() {
                        Some(&shard) => run_shard(
                            &mut self.engines[shard],
                            std::mem::take(&mut batches[shard]),
                            harvest,
                        ),
                        None => Vec::new(),
                    }
                } else {
                    // Disjoint shards on scoped worker threads. Shard
                    // state is engine state: budgets, stats and demux
                    // tables persist across generations on their own
                    // shard, untouched by the others.
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = self
                            .engines
                            .iter_mut()
                            .zip(batches)
                            .filter(|(_, batch)| !batch.is_empty())
                            .map(|(engine, batch)| {
                                scope.spawn(move || run_shard(engine, batch, harvest))
                            })
                            .collect();
                        handles
                            .into_iter()
                            // mlpt: allow(MLPT-W004, reason = "join() only fails if a worker panicked; re-raising that panic on the coordinator is the correct propagation")
                            .flat_map(|h| h.join().expect("a sweep shard panicked"))
                            .collect()
                    })
                };

            // Barrier stalls: shards that finished the generation in
            // fewer dispatch cycles than the slowest one idled at the
            // barrier for the difference. Only meaningful when two or
            // more shards actually ran.
            if participating.len() > 1 {
                let deltas: Vec<u64> = participating
                    .iter()
                    .map(|&i| self.engines[i].stats().dispatch_cycles - cycles_before[i])
                    .collect();
                let slowest = deltas.iter().copied().max().unwrap_or(0);
                self.extra.generation_barrier_stalls +=
                    deltas.iter().filter(|&&d| d < slowest).count() as u64;
            }

            // Emit in source order within the generation (determinism
            // of the emission sequence, not just of its contents), then
            // commit contributions in the same order — first-writer-
            // wins resolves exactly as in the unsharded engine.
            results.sort_by_key(|&(index, _, _, _)| index);
            let mut staged: Vec<(usize, StopContribution)> = Vec::new();
            for (index, session, probes_sent, contribution) in results {
                if let Some(contribution) = contribution {
                    self.extra.probes_elided += contribution.probes_elided;
                    self.extra.stop_set_hits += contribution.stop_hits;
                    staged.push((index, contribution));
                }
                sink(index, session, probes_sent);
            }
            if let Some(cfg) = &stop_cfg {
                let evictions_before = set.evictions();
                for (index, contribution) in staged {
                    set.commit(index, &contribution);
                }
                self.extra.stop_set_evictions += set.evictions() - evictions_before;
                snapshot = set.snapshot(cfg);
            }
        }

        if let Some(cfg) = &stop_cfg {
            self.last_stop_snapshot = Some(set.snapshot(cfg));
        }
        self.remerge();
    }
}

/// Runs one shard's slice of a generation to completion on its own
/// engine, returning `(source index, session, probes sent, stop
/// contribution)` per session. Contributions are harvested here, at
/// finish time (the shard engines run stop-set-less; the shared set is
/// committed at the barrier), before the session reaches the caller's
/// sink — same order as the unsharded engine's harvest.
fn run_shard<T: SplitTransport, S: ProbeSession>(
    engine: &mut SweepEngine<T>,
    batch: Vec<(usize, S)>,
    harvest: bool,
) -> Vec<(usize, S, u64, Option<StopContribution>)> {
    let mut globals = Vec::with_capacity(batch.len());
    let sessions: Vec<S> = batch
        .into_iter()
        .map(|(index, session)| {
            globals.push(index);
            session
        })
        .collect();
    let mut out = Vec::with_capacity(globals.len());
    engine.run_sessions_with(sessions, |local, mut session, probes_sent| {
        let contribution = if harvest {
            session.stop_contribution()
        } else {
            None
        };
        out.push((globals[local], session, probes_sent, contribution));
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TraceConfig;
    use crate::engine::{AdaptiveBudget, Admission};
    use crate::session::MdaLiteSession;
    use mlpt_sim::SimNetwork;
    use mlpt_topo::canonical;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        let dests = [
            Ipv4Addr::new(198, 51, 100, 1),
            Ipv4Addr::new(198, 51, 100, 2),
            Ipv4Addr::new(203, 0, 113, 7),
            Ipv4Addr::new(10, 0, 0, 1),
        ];
        for shards in 1..=8 {
            for d in dests {
                let s = shard_of(d, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(d, shards), "pure function");
            }
        }
        for d in dests {
            assert_eq!(shard_of(d, 0), 0);
            assert_eq!(shard_of(d, 1), 0);
        }
        // The hash actually spreads adjacent addresses (not a fixed
        // value): over a /24 of destinations every shard of 4 is hit.
        let mut hit = [false; 4];
        for host in 0..=255u8 {
            hit[shard_of(Ipv4Addr::new(198, 51, 100, host), 4)] = true;
        }
        assert!(hit.iter().all(|&h| h), "all shards reachable: {hit:?}");
    }

    fn lane_topos(n: u32) -> Vec<mlpt_topo::MultipathTopology> {
        (0..n)
            .map(|i| canonical::fig1_meshed().translated(0x0100_0000 * (i + 1)))
            .collect()
    }

    fn nets_for(
        topos: &[mlpt_topo::MultipathTopology],
        pred: impl Fn(Ipv4Addr) -> bool,
    ) -> Vec<SimNetwork> {
        topos
            .iter()
            .enumerate()
            .filter(|(_, t)| pred(t.destination()))
            .map(|(i, t)| SimNetwork::new(t.clone(), 7 + i as u64))
            .collect()
    }

    fn sessions_for(topos: &[mlpt_topo::MultipathTopology]) -> Vec<Box<dyn TraceSession>> {
        topos
            .iter()
            .enumerate()
            .map(|(i, t)| {
                Box::new(MdaLiteSession::new(
                    t.destination(),
                    TraceConfig::new(i as u64),
                )) as Box<dyn TraceSession>
            })
            .collect()
    }

    fn config(admission: Admission, stop: Option<StopSetConfig>) -> SweepConfig {
        SweepConfig {
            max_in_flight: 16,
            retries: 1,
            admission,
            adaptive: Some(AdaptiveBudget {
                min_in_flight: 2,
                ..AdaptiveBudget::default()
            }),
            stop_set: stop,
            ..SweepConfig::default()
        }
    }

    /// The heart of the tentpole: N-shard runs are bit-identical to the
    /// unsharded engine — traces, protocol stats, stop-set snapshot —
    /// across admission modes, with and without the shared stop set.
    #[test]
    fn sharded_matches_unsharded_bit_identical() {
        let topos = lane_topos(13);
        let stop = Some(StopSetConfig {
            commit_width: 4,
            ..StopSetConfig::default()
        });
        for admission in [Admission::Eager, Admission::Streaming, Admission::CostAware] {
            for stop_cfg in [None, stop] {
                let cfg = config(admission, stop_cfg);
                // Unsharded reference.
                let net = mlpt_sim::MultiNetwork::new(nets_for(&topos, |_| true))
                    .expect("unique destinations");
                let mut plain = SweepEngine::new(net, SRC).with_config(cfg);
                let want = plain.run_stream(sessions_for(&topos));
                let want_stats = *plain.stats();

                for shards in [1usize, 2, 3, 4] {
                    let transports: Vec<_> = (0..shards)
                        .map(|s| {
                            mlpt_sim::MultiNetwork::new(nets_for(&topos, |d| {
                                shard_of(d, shards) == s
                            }))
                            .expect("unique destinations")
                        })
                        .collect();
                    let mut sharded = ShardedSweepEngine::new(transports, SRC).with_config(cfg);
                    let got = sharded.run_stream(sessions_for(&topos));
                    assert_eq!(want, got, "{admission:?} stop={stop_cfg:?} shards={shards}");
                    let got_stats = *sharded.stats();
                    // Protocol-level stats are scheduling-independent.
                    assert_eq!(want_stats.probes_sent, got_stats.probes_sent);
                    assert_eq!(want_stats.replies_delivered, got_stats.replies_delivered);
                    assert_eq!(want_stats.probes_timed_out, got_stats.probes_timed_out);
                    assert_eq!(want_stats.probes_elided, got_stats.probes_elided);
                    assert_eq!(want_stats.stop_set_hits, got_stats.stop_set_hits);
                    assert_eq!(want_stats.retries_elided, got_stats.retries_elided);
                    assert_eq!(want_stats.stop_set_evictions, got_stats.stop_set_evictions);
                    assert_eq!(want_stats.sessions_admitted, got_stats.sessions_admitted);
                    assert_eq!(want_stats.sessions_completed, got_stats.sessions_completed);
                    // 4-bucket partition holds per shard and merged.
                    for stats in sharded
                        .shard_stats()
                        .into_iter()
                        .copied()
                        .chain([got_stats])
                    {
                        assert_eq!(
                            stats.probes_timed_out
                                + stats.replies_delivered
                                + stats.malformed_replies
                                + stats.mismatched_replies,
                            stats.probes_sent
                        );
                    }
                    // Same final snapshot (the set is protocol state).
                    match (plain.stop_snapshot(), sharded.stop_snapshot()) {
                        (None, None) => assert!(stop_cfg.is_none()),
                        (Some(a), Some(b)) => assert_eq!(a.len(), b.len()),
                        (a, b) => panic!("snapshot presence diverged: {a:?} vs {b:?}"),
                    }
                }
            }
        }
    }

    /// Replays are exact: the same seeds and shard count reproduce the
    /// same traces and merged stats, including the barrier-stall
    /// counter (virtual work, not wall clock).
    #[test]
    fn sharded_replay_is_exact() {
        let topos = lane_topos(9);
        let cfg = config(
            Admission::Streaming,
            Some(StopSetConfig {
                commit_width: 3,
                ..StopSetConfig::default()
            }),
        );
        let run = || {
            let transports: Vec<_> = (0..3usize)
                .map(|s| {
                    mlpt_sim::MultiNetwork::new(nets_for(&topos, |d| shard_of(d, 3) == s))
                        .expect("unique destinations")
                })
                .collect();
            let mut engine = ShardedSweepEngine::new(transports, SRC).with_config(cfg);
            let traces = engine.run_stream(sessions_for(&topos));
            (traces, *engine.stats())
        };
        let (traces_a, stats_a) = run();
        let (traces_b, stats_b) = run();
        assert_eq!(traces_a, traces_b);
        assert_eq!(stats_a, stats_b, "replay must reproduce every counter");
    }

    #[test]
    #[should_panic(expected = "at least one shard transport")]
    fn empty_transport_vector_rejected() {
        let _ = ShardedSweepEngine::<mlpt_sim::SimNetwork>::new(Vec::new(), SRC);
    }
}
