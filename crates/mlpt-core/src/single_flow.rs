//! Paris traceroute with a single flow identifier.
//!
//! The baseline the paper compares against (Sec. 2.4.2): "one with just a
//! single flow ID, the way Paris Traceroute is currently implemented on
//! the RIPE Atlas infrastructure". One probe per TTL, all with the same
//! flow identifier, so the trace follows exactly one load-balanced path
//! and discovers one vertex and one edge per hop.

use crate::config::TraceConfig;
use crate::prober::Prober;
use crate::session::{drive, SingleFlowSession};
use crate::trace::Trace;
use mlpt_wire::FlowId;

/// Traces a single path using one flow identifier.
///
/// The algorithm lives in [`SingleFlowSession`], a sans-IO state machine
/// emitting one single-spec round per hop; this entry point is the thin
/// single-session driver. Dispatch rides the batched probe engine like
/// the multipath algorithms: the hop's outcome gates whether the next TTL
/// is probed at all.
pub fn trace_single_flow<P: Prober>(prober: &mut P, config: &TraceConfig, flow: FlowId) -> Trace {
    let mut session = SingleFlowSession::new(prober.destination(), config.clone(), flow);
    drive(&mut session, prober)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::TransportProber;
    use mlpt_sim::SimNetwork;
    use mlpt_topo::canonical;
    use std::net::Ipv4Addr;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    #[test]
    fn traces_one_path() {
        let topo = canonical::fig1_unmeshed();
        let net = SimNetwork::new(topo.clone(), 7);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let config = TraceConfig::new(7);
        let trace = trace_single_flow(&mut prober, &config, FlowId(5));
        assert!(trace.reached_destination);
        // One vertex per hop.
        for ttl in 1..=topo.num_hops() as u8 {
            assert_eq!(trace.vertices_at(ttl).len(), 1, "ttl {ttl}");
        }
        // Exactly one probe per hop.
        assert_eq!(trace.probes_sent, topo.num_hops() as u64);
    }

    #[test]
    fn discovers_fraction_of_wide_hop() {
        let topo = canonical::max_length_2();
        let net = SimNetwork::new(topo.clone(), 7);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let config = TraceConfig::new(7);
        let trace = trace_single_flow(&mut prober, &config, FlowId(5));
        // 1 of 28 middle vertices: heavy undercount, tiny probe bill.
        assert_eq!(trace.total_vertices(), 3);
        assert_eq!(trace.probes_sent, 3);
    }

    #[test]
    fn stable_flow_stable_path() {
        let topo = canonical::meshed();
        let a = {
            let net = SimNetwork::new(topo.clone(), 3);
            let mut p = TransportProber::new(net, SRC, topo.destination());
            trace_single_flow(&mut p, &TraceConfig::new(1), FlowId(9))
        };
        let b = {
            let net = SimNetwork::new(topo.clone(), 3);
            let mut p = TransportProber::new(net, SRC, topo.destination());
            trace_single_flow(&mut p, &TraceConfig::new(2), FlowId(9))
        };
        for ttl in 1..=topo.num_hops() as u8 {
            assert_eq!(a.vertices_at(ttl), b.vertices_at(ttl));
        }
    }
}
