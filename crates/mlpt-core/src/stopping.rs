//! Stopping points n_k: the MDA's failure control.
//!
//! "The number of probe packets the MDA sends to discover all successors
//! of a vertex v is governed by a set of predetermined stopping points,
//! designated n_k. If k successors to v have been discovered then the MDA
//! keeps sending probes until either the number of probes equals n_k or an
//! additional successor has been discovered." (Sec. 2.1)
//!
//! The rule: under the hypothesis that a vertex has k + 1 uniform
//! successors, the probability that n probes fail to see all of them is
//! (inclusion–exclusion over which successors are missed):
//!
//! ```text
//!   P_miss(k + 1, n) = Σ_{i=1}^{k} (-1)^(i+1) · C(k+1, i) · ((k+1-i)/(k+1))^n
//! ```
//!
//! n_k is the smallest n with `P_miss(k+1, n) ≤ α`. At α = 0.05 this gives
//! the classic 95 % table 6, 11, 16, 21, 27, 33, … used by scamper and
//! libparistraceroute.
//!
//! The paper's worked examples (Sec. 2.1/2.3) quote Veitch et al.'s
//! Table 1 values n₁ = 9, n₂ = 17, n₄ = 33, under which the unmeshed
//! diamond costs the MDA 11·n₁ + δ = 99 + δ probes, the meshed diamond
//! 8·n₂ + 3·n₁ + δ′ = 163 + δ′, and MDA-Lite n₄ + n₂ + 2·n₁ = 68.
//! [`StoppingPoints::veitch_table1`] pins those exact values so the
//! paper's arithmetic reproduces to the probe.

use serde::{Deserialize, Serialize};

/// A table of stopping points n₁ … n_K with the failure bound that
/// produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoppingPoints {
    nks: Vec<u64>,
    alpha: f64,
}

/// Default number of stopping points to precompute: branching factors
/// beyond this are treated as table exhaustion (probing stops).
pub const DEFAULT_MAX_BRANCHING: usize = 128;

impl StoppingPoints {
    /// Probability that `n` uniform probes over `k_plus_1` successors miss
    /// at least one of them (exact inclusion–exclusion).
    pub fn miss_probability(k_plus_1: usize, n: u64) -> f64 {
        assert!(k_plus_1 >= 1);
        if k_plus_1 == 1 {
            return if n == 0 { 1.0 } else { 0.0 };
        }
        let m = k_plus_1 as f64;
        let mut total = 0.0f64;
        let mut binom = 1.0f64; // C(k+1, i) built incrementally
        for i in 1..k_plus_1 {
            binom = binom * (m - (i as f64 - 1.0)) / i as f64;
            let term = binom * ((m - i as f64) / m).powf(n as f64);
            if i % 2 == 1 {
                total += term;
            } else {
                total -= term;
            }
        }
        total.clamp(0.0, 1.0)
    }

    /// Builds the table by the exact rule: `n_k` = smallest n with
    /// `miss_probability(k + 1, n) ≤ alpha`, for k = 1 ..= max_k.
    pub fn exact(alpha: f64, max_k: usize) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        assert!(max_k >= 1);
        let mut nks = Vec::with_capacity(max_k);
        let mut n = 1u64;
        for k in 1..=max_k {
            // Monotone in k: start scanning from the previous value.
            while Self::miss_probability(k + 1, n) > alpha {
                n += 1;
            }
            nks.push(n);
        }
        Self { nks, alpha }
    }

    /// The classic 95 % table (α = 0.05): 6, 11, 16, 21, 27, 33, …
    pub fn mda95() -> Self {
        Self::exact(0.05, DEFAULT_MAX_BRANCHING)
    }

    /// The 99 % table (α = 0.01).
    pub fn mda99() -> Self {
        Self::exact(0.01, DEFAULT_MAX_BRANCHING)
    }

    /// The values the paper quotes from Veitch et al.'s Table 1:
    /// n₁ = 9, n₂ = 17, n₄ = 33 (n₃ = 25 interpolating the arithmetic
    /// progression), extended beyond k = 4 by the exact rule at
    /// α = 0.0039, the bound consistent with those pinned values.
    pub fn veitch_table1() -> Self {
        let alpha = 0.0039;
        let extended = Self::exact(alpha, DEFAULT_MAX_BRANCHING);
        let mut nks = extended.nks;
        nks[0] = 9;
        nks[1] = 17;
        nks[2] = 25;
        nks[3] = 33;
        // Keep the table monotone where the pinned prefix meets the tail.
        for k in 4..nks.len() {
            if nks[k] < nks[k - 1] {
                nks[k] = nks[k - 1];
            }
        }
        Self { nks, alpha }
    }

    /// The stopping point n_k after `k` successors have been found.
    ///
    /// # Panics
    /// Panics if `k` is 0 or beyond the table.
    pub fn n(&self, k: usize) -> u64 {
        assert!(k >= 1, "stopping points are defined for k >= 1");
        self.nks[k - 1]
    }

    /// Largest branching factor the table covers.
    pub fn max_k(&self) -> usize {
        self.nks.len()
    }

    /// The failure bound the table was built for.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The raw table (nks[k-1] = n_k), for the analytic calculator.
    pub fn as_slice(&self) -> &[u64] {
        &self.nks
    }

    /// Lower bound on the probes a stop-set short-circuit saves when
    /// `hops_skipped` hops go unprobed: each skipped hop would have cost
    /// at least n₁ probes under this table (more if it branched, so the
    /// estimate is conservative). Feeds the `probes_elided` accounting
    /// of Doubletree-style sweeps.
    pub fn elision_estimate(&self, hops_skipped: u64) -> u64 {
        hops_skipped.saturating_mul(self.n(1))
    }

    /// True if probing should stop: `probes` sent with `k` distinct
    /// successors seen has reached the stopping point. Saturates at the
    /// table end (stop immediately beyond the modelled branching).
    pub fn should_stop(&self, k: usize, probes: u64) -> bool {
        if k == 0 {
            return false;
        }
        if k > self.nks.len() {
            return true;
        }
        probes >= self.n(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_95_table() {
        let sp = StoppingPoints::mda95();
        assert_eq!(&sp.as_slice()[..6], &[6, 11, 16, 21, 27, 33]);
    }

    #[test]
    fn classic_99_table_is_larger() {
        let sp95 = StoppingPoints::mda95();
        let sp99 = StoppingPoints::mda99();
        for k in 1..=16 {
            assert!(sp99.n(k) > sp95.n(k), "k={k}");
        }
    }

    #[test]
    fn veitch_pinned_values() {
        let sp = StoppingPoints::veitch_table1();
        assert_eq!(sp.n(1), 9);
        assert_eq!(sp.n(2), 17);
        assert_eq!(sp.n(3), 25);
        assert_eq!(sp.n(4), 33);
        // Paper's worked probe counts (Sec. 2.1 / 2.3.1).
        assert_eq!(11 * sp.n(1), 99);
        assert_eq!(8 * sp.n(2) + 3 * sp.n(1), 163);
        assert_eq!(sp.n(4) + sp.n(2) + 2 * sp.n(1), 68);
    }

    #[test]
    fn tables_monotone() {
        for sp in [
            StoppingPoints::mda95(),
            StoppingPoints::mda99(),
            StoppingPoints::veitch_table1(),
        ] {
            let s = sp.as_slice();
            assert!(s.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn miss_probability_closed_forms() {
        // Two successors: P = 2 * (1/2)^n.
        let p = StoppingPoints::miss_probability(2, 6);
        assert!((p - 2.0 * 0.5f64.powi(6)).abs() < 1e-12);
        // Bound check at the stopping point.
        assert!(StoppingPoints::miss_probability(2, 6) <= 0.05);
        assert!(StoppingPoints::miss_probability(2, 5) > 0.05);
    }

    #[test]
    fn miss_probability_three() {
        // Three successors: P = 3(2/3)^n - 3(1/3)^n.
        let n = 11u64;
        let expected = 3.0 * (2f64 / 3.0).powi(n as i32) - 3.0 * (1f64 / 3.0).powi(n as i32);
        assert!((StoppingPoints::miss_probability(3, n) - expected).abs() < 1e-12);
        assert!(StoppingPoints::miss_probability(3, 11) <= 0.05);
        assert!(StoppingPoints::miss_probability(3, 10) > 0.05);
    }

    #[test]
    fn miss_probability_single_successor() {
        assert_eq!(StoppingPoints::miss_probability(1, 1), 0.0);
        assert_eq!(StoppingPoints::miss_probability(1, 0), 1.0);
    }

    #[test]
    fn elision_estimate_is_n1_per_hop() {
        let sp = StoppingPoints::mda95();
        assert_eq!(sp.elision_estimate(0), 0);
        assert_eq!(sp.elision_estimate(7), 7 * 6);
        assert_eq!(StoppingPoints::veitch_table1().elision_estimate(3), 27);
    }

    #[test]
    fn should_stop_logic() {
        let sp = StoppingPoints::mda95();
        assert!(!sp.should_stop(1, 5));
        assert!(sp.should_stop(1, 6));
        assert!(!sp.should_stop(2, 10));
        assert!(sp.should_stop(2, 11));
        assert!(!sp.should_stop(0, 1_000_000));
        // Beyond the table: stop.
        assert!(sp.should_stop(sp.max_k() + 1, 0));
    }

    #[test]
    fn exact_table_respects_alpha_pointwise() {
        let alpha = 0.02;
        let sp = StoppingPoints::exact(alpha, 20);
        for k in 1..=20 {
            let n = sp.n(k);
            assert!(StoppingPoints::miss_probability(k + 1, n) <= alpha);
            assert!(StoppingPoints::miss_probability(k + 1, n - 1) > alpha);
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let _ = StoppingPoints::exact(0.0, 4);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn n_zero_rejected() {
        let _ = StoppingPoints::mda95().n(0);
    }
}
