//! Sweep-wide shared stop sets: Doubletree-style cross-destination
//! redundancy elimination.
//!
//! A wide sweep rediscovers the same near-source hops once per
//! destination — the intra-monitor redundancy Donnet et al. ("Efficient
//! Route Tracing from a Single Source") measured at >90% of probe
//! traffic and eliminated with Doubletree. This module is that idea for
//! the sweep engine: a sweep-wide set of confirmed `(TTL, interface)`
//! pairs that stop-set-aware sessions consult to skip path prefixes
//! other sessions already mapped.
//!
//! * [`SharedStopSet`] is the engine-owned master copy. Finished
//!   sessions hand back a [`StopContribution`] of everything they
//!   firsthand observed; the engine commits contributions **in source
//!   order at generation boundaries** (see below), never in completion
//!   order.
//! * [`StopSnapshot`] is the cheap, immutable view a session adopts at
//!   admission: membership lookups plus the sweep's current mid-path
//!   start TTL. Snapshots are `Arc`-backed, so handing one to every
//!   session of a generation is O(1).
//! * [`StopSetConfig`] is the knob set: the (configurable or adaptive)
//!   start TTL and the commit width.
//!
//! # Determinism (rule 5, extended)
//!
//! Stop-set contents are **protocol state decided by source order,
//! never by scheduling**. The engine partitions the source stream into
//! *generations* of [`StopSetConfig::commit_width`] consecutive
//! sessions. Every session of generation `g` adopts the identical
//! snapshot — the union of contributions from generations `< g`,
//! committed sorted by source index with first-writer-wins per
//! `(TTL, interface)` key — and generation `g + 1` is not admitted
//! until every pulled session has completed. Which admission mode runs
//! the sweep, how the budget slices rounds, and which lane finishes
//! first therefore cannot change a single snapshot, so eager ==
//! streaming == cost-aware stay bit-identical and sweeps replay
//! exactly from seed. Generation 0 adopts the empty snapshot and
//! behaves exactly like a sweep without a stop set.
//!
//! # Honesty
//!
//! A contribution contains only interfaces the session *itself*
//! observed in replies — never entries it adopted from a snapshot or
//! inferred from one. A blackholed lane therefore contributes only the
//! honest prefix it really saw and cannot poison the shared set
//! (property-tested in `tests/sweep_equivalence.rs`).

use crate::discovery::Discovery;
use mlpt_wire::FlowId;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Tuning of the sweep-wide shared stop set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StopSetConfig {
    /// Mid-path TTL at which stop-set-aware sessions start probing
    /// (forward towards the destination, then backward towards the
    /// source). Values `<= 1` disable mid-path starts.
    pub start_ttl: u8,
    /// When true, the start TTL adapts to the sweep: once committed
    /// contributions report destination TTLs, the snapshot's start TTL
    /// becomes half the median destination TTL (clamped to at least 2),
    /// tracking the actual mid-path point of the destinations probed.
    pub adaptive_start: bool,
    /// Sessions per commit generation: contributions are committed in
    /// source order every `commit_width` sessions, and a generation's
    /// sessions all adopt the identical snapshot (see module docs).
    pub commit_width: usize,
}

impl Default for StopSetConfig {
    fn default() -> Self {
        Self {
            start_ttl: 8,
            adaptive_start: true,
            commit_width: 16,
        }
    }
}

/// What the shared set knows about one confirmed `(TTL, interface)`
/// pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StopMeta {
    /// The interface the contributor observed one hop earlier on the
    /// same path, if any — the predecessor link that makes
    /// per-destination path prefixes reconstructable from the set.
    pub predecessor: Option<Ipv4Addr>,
    /// Source index of the contributing session (first writer wins).
    pub contributor: usize,
    /// The destination the contributor was probing towards.
    pub toward: Ipv4Addr,
    /// The contributor's Paris flow identifier, when it probed with a
    /// single one (retry elision requires flow-determinism evidence).
    pub flow: Option<FlowId>,
    /// Whether the contributor reached its destination.
    pub reached: bool,
    /// The TTL at which the contributor's destination answered.
    pub dest_ttl: Option<u8>,
}

/// One firsthand-observed `(TTL, interface)` pair in a contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StopSeen {
    /// Probe TTL the interface answered at.
    pub ttl: u8,
    /// The observed interface address.
    pub interface: Ipv4Addr,
    /// An interface observed at `ttl - 1` on the same path, if any.
    pub predecessor: Option<Ipv4Addr>,
}

/// Everything a finished session hands back to the shared set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StopContribution {
    /// Firsthand-observed pairs, in ascending TTL order.
    pub entries: Vec<StopSeen>,
    /// The contributor's destination.
    pub destination: Option<Ipv4Addr>,
    /// The contributor's single Paris flow, when it used exactly one.
    pub flow: Option<FlowId>,
    /// TTL at which the destination answered, if reached.
    pub dest_ttl: Option<u8>,
    /// Whether the destination answered.
    pub reached: bool,
    /// Probes this session skipped thanks to stop-set hits (estimated
    /// against what its classic mode would have sent).
    pub probes_elided: u64,
    /// Stop-set membership hits that short-circuited probing.
    pub stop_hits: u64,
    /// `(TTL, interface)` pairs this session contradicted with firsthand
    /// evidence (stale predictions, vanished branches): the shared set
    /// must drop them so a flapped prefix cannot keep serving stale
    /// predictions. Processed *before* this contribution's insertions.
    pub evict: Vec<(u8, Ipv4Addr)>,
}

/// The immutable stop-set view one generation's sessions adopt.
#[derive(Debug, Clone)]
pub struct StopSnapshot {
    entries: Arc<BTreeMap<(u8, u32), StopMeta>>,
    start_ttl: u8,
}

impl StopSnapshot {
    /// The empty snapshot generation 0 adopts (classic behaviour).
    pub fn empty() -> Self {
        Self {
            entries: Arc::new(BTreeMap::new()),
            start_ttl: 1,
        }
    }

    /// True when the set holds no entries — sessions then probe
    /// classically from TTL 1.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of `(TTL, interface)` pairs in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The mid-path TTL stop-set-aware sessions should start at.
    pub fn start_ttl(&self) -> u8 {
        self.start_ttl
    }

    /// Membership lookup.
    pub fn get(&self, ttl: u8, interface: Ipv4Addr) -> Option<&StopMeta> {
        self.entries.get(&(ttl, u32::from(interface)))
    }

    /// True when `(ttl, interface)` is a confirmed pair.
    pub fn contains(&self, ttl: u8, interface: Ipv4Addr) -> bool {
        self.get(ttl, interface).is_some()
    }

    /// The interface a probe at `ttl` with `flow` towards `toward`
    /// would observe, according to a same-destination same-flow entry —
    /// the only evidence strong enough to elide a retry (Paris flow
    /// determinism: same destination + same flow ⇒ same path).
    pub fn predicted_responder(
        &self,
        ttl: u8,
        toward: Ipv4Addr,
        flow: FlowId,
    ) -> Option<(Ipv4Addr, &StopMeta)> {
        self.entries
            .range((ttl, 0)..=(ttl, u32::MAX))
            .find(|(_, meta)| meta.toward == toward && meta.flow == Some(flow))
            .map(|(&(_, iface), meta)| (Ipv4Addr::from(iface), meta))
    }

    /// Walks predecessor links downward from `(ttl, interface)`,
    /// returning the reconstructed path prefix in ascending TTL order
    /// (ending at the given pair). This is how a per-destination path
    /// prefix is recovered for a session that backward-stopped early.
    pub fn reconstruct_prefix(&self, ttl: u8, interface: Ipv4Addr) -> Vec<(u8, Ipv4Addr)> {
        let mut prefix = Vec::new();
        let mut cursor = Some((ttl, interface));
        while let Some((t, iface)) = cursor {
            if !self.contains(t, iface) {
                break;
            }
            prefix.push((t, iface));
            cursor = match (
                t.checked_sub(1),
                self.get(t, iface).and_then(|m| m.predecessor),
            ) {
                (Some(prev_ttl), Some(prev)) if prev_ttl >= 1 => Some((prev_ttl, prev)),
                _ => None,
            };
        }
        prefix.reverse();
        prefix
    }
}

/// The engine-owned master stop set (see module docs for the commit
/// discipline that keeps it deterministic).
#[derive(Debug, Default)]
pub struct SharedStopSet {
    entries: BTreeMap<(u8, u32), StopMeta>,
    dest_ttls: Vec<u8>,
    evictions: u64,
}

impl SharedStopSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of committed `(TTL, interface)` pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True before any commit added an entry.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Commits one contribution. The caller (the engine) is responsible
    /// for calling this in ascending `contributor` (source-index) order
    /// within each generation; the first writer of a key wins, so that
    /// order is what makes the merged contents deterministic.
    pub fn commit(&mut self, contributor: usize, contribution: &StopContribution) {
        // Firsthand contradictions first: an evicted key freed here may
        // legitimately be re-claimed by this same contribution's fresh
        // post-change evidence below.
        for &(ttl, interface) in &contribution.evict {
            if self.entries.remove(&(ttl, u32::from(interface))).is_some() {
                self.evictions += 1;
            }
        }
        for seen in &contribution.entries {
            self.entries
                .entry((seen.ttl, u32::from(seen.interface)))
                .or_insert(StopMeta {
                    predecessor: seen.predecessor,
                    contributor,
                    toward: contribution.destination.unwrap_or(Ipv4Addr::UNSPECIFIED),
                    flow: contribution.flow,
                    reached: contribution.reached,
                    dest_ttl: contribution.dest_ttl,
                });
        }
        if contribution.reached {
            if let Some(dt) = contribution.dest_ttl {
                self.dest_ttls.push(dt);
            }
        }
    }

    /// Total committed entries dropped by contribution evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Builds the immutable snapshot the next generation adopts,
    /// deriving the start TTL per `config` (fixed, or adaptive from the
    /// median committed destination TTL).
    pub fn snapshot(&self, config: &StopSetConfig) -> StopSnapshot {
        let start_ttl = if config.adaptive_start && !self.dest_ttls.is_empty() {
            let mut ttls = self.dest_ttls.clone();
            ttls.sort_unstable();
            (ttls[ttls.len() / 2] / 2).max(2)
        } else {
            config.start_ttl
        };
        StopSnapshot {
            entries: Arc::new(self.entries.clone()),
            start_ttl,
        }
    }
}

/// Builds a contribution from a discovery evidence base in which every
/// record is firsthand (sessions that adopt foreign observations must
/// track their firsthand subset separately instead). Each vertex's
/// predecessor is its first witnessed reverse edge, giving the shared
/// set the links prefix reconstruction follows.
///
/// `flow` should be `Some` only when the session probed with exactly
/// one Paris flow throughout — the evidence
/// [`StopSnapshot::predicted_responder`] requires.
pub fn contribution_from_discovery(
    state: &Discovery,
    destination: Ipv4Addr,
    flow: Option<FlowId>,
    probes_elided: u64,
    stop_hits: u64,
) -> StopContribution {
    let mut entries = Vec::new();
    for ttl in 1..=state.max_observed_ttl() {
        let predecessors = if ttl >= 2 {
            state.reverse_edges_from(ttl - 1)
        } else {
            BTreeMap::new()
        };
        for &interface in state.vertices_at(ttl) {
            let predecessor = predecessors
                .get(&interface)
                .and_then(|preds| preds.iter().next().copied());
            entries.push(StopSeen {
                ttl,
                interface,
                predecessor,
            });
        }
    }
    let dest_ttl = state.destination_ttl();
    StopContribution {
        entries,
        destination: Some(destination),
        flow,
        dest_ttl,
        reached: dest_ttl.is_some(),
        probes_elided,
        stop_hits,
        evict: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpt_topo::graph::addr;

    fn contribution(dest: Ipv4Addr, path: &[Ipv4Addr], flow: Option<FlowId>) -> StopContribution {
        let entries = path
            .iter()
            .enumerate()
            .map(|(i, &interface)| StopSeen {
                ttl: (i + 1) as u8,
                interface,
                predecessor: i.checked_sub(1).map(|p| path[p]),
            })
            .collect();
        StopContribution {
            entries,
            destination: Some(dest),
            flow,
            dest_ttl: Some(path.len() as u8),
            reached: true,
            probes_elided: 0,
            stop_hits: 0,
            evict: Vec::new(),
        }
    }

    #[test]
    fn first_writer_wins_in_commit_order() {
        let dest_a = addr(9, 1);
        let dest_b = addr(9, 2);
        let shared = addr(1, 0);
        let mut set = SharedStopSet::new();
        set.commit(0, &contribution(dest_a, &[shared, dest_a], Some(FlowId(1))));
        set.commit(1, &contribution(dest_b, &[shared, dest_b], Some(FlowId(2))));
        let snap = set.snapshot(&StopSetConfig::default());
        let meta = snap.get(1, shared).expect("shared hop committed");
        assert_eq!(meta.contributor, 0, "the earlier source index wins");
        assert_eq!(meta.toward, dest_a);
        assert!(snap.contains(2, dest_a));
        assert!(snap.contains(2, dest_b));
    }

    #[test]
    fn snapshot_is_immutable_and_cheap() {
        let dest = addr(9, 1);
        let mut set = SharedStopSet::new();
        set.commit(0, &contribution(dest, &[addr(1, 0), dest], None));
        let before = set.snapshot(&StopSetConfig::default());
        set.commit(
            1,
            &contribution(addr(9, 2), &[addr(2, 0), addr(9, 2)], None),
        );
        assert_eq!(before.len(), 2, "older snapshots never see later commits");
        assert_eq!(set.snapshot(&StopSetConfig::default()).len(), 4);
        let clone = before.clone();
        assert_eq!(clone.len(), before.len());
    }

    #[test]
    fn adaptive_start_tracks_median_dest_ttl() {
        let cfg = StopSetConfig {
            start_ttl: 5,
            adaptive_start: true,
            commit_width: 4,
        };
        let mut set = SharedStopSet::new();
        assert_eq!(set.snapshot(&cfg).start_ttl(), 5, "no evidence: configured");
        for (i, len) in [20u8, 24, 28].into_iter().enumerate() {
            let path: Vec<Ipv4Addr> = (0..len).map(|h| addr(usize::from(h), i)).collect();
            set.commit(i, &contribution(*path.last().unwrap(), &path, None));
        }
        // Median destination TTL 24 → start at 12.
        assert_eq!(set.snapshot(&cfg).start_ttl(), 12);
        let fixed = StopSetConfig {
            adaptive_start: false,
            ..cfg
        };
        assert_eq!(set.snapshot(&fixed).start_ttl(), 5);
    }

    #[test]
    fn predicted_responder_requires_same_destination_and_flow() {
        let dest = addr(9, 1);
        let hop = addr(3, 0);
        let mut set = SharedStopSet::new();
        set.commit(
            0,
            &contribution(dest, &[addr(1, 0), addr(2, 0), hop, dest], Some(FlowId(7))),
        );
        let snap = set.snapshot(&StopSetConfig::default());
        let (iface, meta) = snap
            .predicted_responder(3, dest, FlowId(7))
            .expect("matching evidence");
        assert_eq!(iface, hop);
        assert!(meta.reached);
        assert!(snap.predicted_responder(3, dest, FlowId(8)).is_none());
        assert!(snap.predicted_responder(3, addr(9, 2), FlowId(7)).is_none());
    }

    #[test]
    fn prefix_reconstruction_follows_predecessor_links() {
        let dest = addr(9, 1);
        let path = [addr(1, 0), addr(2, 0), addr(3, 0), dest];
        let mut set = SharedStopSet::new();
        set.commit(0, &contribution(dest, &path, Some(FlowId(1))));
        let snap = set.snapshot(&StopSetConfig::default());
        let prefix = snap.reconstruct_prefix(3, addr(3, 0));
        assert_eq!(
            prefix,
            vec![(1, addr(1, 0)), (2, addr(2, 0)), (3, addr(3, 0))]
        );
        assert!(snap.reconstruct_prefix(3, addr(5, 5)).is_empty());
    }

    #[test]
    fn evictions_drop_contradicted_entries_before_insertions() {
        let dest_a = addr(9, 1);
        let dest_b = addr(9, 2);
        let stale = addr(2, 0);
        let fresh = addr(2, 7);
        let mut set = SharedStopSet::new();
        set.commit(
            0,
            &contribution(dest_a, &[addr(1, 0), stale], Some(FlowId(1))),
        );
        assert!(set.snapshot(&StopSetConfig::default()).contains(2, stale));
        // A later source contradicts (2, stale) firsthand and re-claims
        // the TTL with its post-change observation.
        let mut c = contribution(dest_b, &[addr(1, 0), fresh], Some(FlowId(2)));
        c.evict.push((2, stale));
        set.commit(1, &c);
        assert_eq!(set.evictions(), 1);
        let snap = set.snapshot(&StopSetConfig::default());
        assert!(!snap.contains(2, stale), "stale entry must be gone");
        assert!(snap.contains(2, fresh), "fresh evidence takes the slot");
        // Evicting a key nobody holds is a no-op, not a count.
        let mut noop = contribution(dest_b, &[addr(1, 0), fresh], None);
        noop.evict.push((5, addr(5, 5)));
        set.commit(2, &noop);
        assert_eq!(set.evictions(), 1);
    }

    #[test]
    fn empty_snapshot_behaves_classically() {
        let snap = StopSnapshot::empty();
        assert!(snap.is_empty());
        assert_eq!(snap.start_ttl(), 1);
        assert!(!snap.contains(1, addr(1, 0)));
    }
}
