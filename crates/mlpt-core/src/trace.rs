//! Trace results: what a completed run reports.
//!
//! [`Trace`] bundles the discovery evidence with run metadata (algorithm,
//! probe cost, whether MDA-Lite switched to the full MDA and why), and
//! converts the evidence into a [`MultipathTopology`] for diamond
//! analysis, with star placeholders for unresponsive hops as the survey
//! requires (Sec. 5).

use crate::discovery::Discovery;
use mlpt_topo::{star_address, MultipathTopology, TopologyBuilder};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Which algorithm produced a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Classic MDA with full node control.
    Mda,
    /// MDA-Lite (possibly switched to MDA mid-run).
    MdaLite,
    /// Paris traceroute with a single flow identifier.
    SingleFlow,
}

/// Why an MDA-Lite run escalated to the full MDA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchReason {
    /// The meshing test found a hop pair with degree ≥ 2 (Sec. 2.3.2).
    MeshingDetected {
        /// TTL of the earlier hop of the meshed pair.
        ttl: u8,
    },
    /// Width asymmetry found after edge discovery (Sec. 2.3.3).
    AsymmetryDetected {
        /// TTL of the earlier hop of the asymmetric pair.
        ttl: u8,
    },
}

/// Why a trace was cut short of its protocol's natural stopping point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartialReason {
    /// The stall watchdog fired: the session made no reply progress for
    /// the configured number of consecutive rounds.
    Stalled {
        /// Consecutive all-silent rounds observed before finalizing.
        silent_rounds: u32,
    },
    /// The route-change audit confirmed a contradiction of committed
    /// evidence but the `ReprobeBudget`'s recovery allowance was spent:
    /// the trace is honest about everything up to `at_ttl` and makes no
    /// claim beyond it.
    RouteChanged {
        /// First TTL whose committed evidence was contradicted.
        at_ttl: u8,
    },
}

impl std::fmt::Display for PartialReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartialReason::Stalled { silent_rounds } => {
                write!(f, "stalled for {silent_rounds} silent rounds")
            }
            PartialReason::RouteChanged { at_ttl } => {
                write!(f, "route changed at ttl {at_ttl}, recovery budget spent")
            }
        }
    }
}

/// How a trace ended: ran to its protocol's stopping rule, or was
/// finalized early with whatever evidence had accumulated.
///
/// `Partial` is a *graceful* ending — the trace's discovery evidence is
/// sound (everything recorded was really observed), merely incomplete.
/// Degradation machinery (the stall watchdog) produces it instead of
/// letting a dark destination hang the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TraceOutcome {
    /// The algorithm reached its own stopping rule.
    #[default]
    Complete,
    /// The trace was finalized early; the evidence is honest but
    /// incomplete.
    Partial {
        /// Why the early finalization happened.
        reason: PartialReason,
    },
}

impl TraceOutcome {
    /// True for [`TraceOutcome::Partial`].
    pub fn is_partial(&self) -> bool {
        matches!(self, TraceOutcome::Partial { .. })
    }
}

/// A completed multipath trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Algorithm that produced this trace.
    pub algorithm: Algorithm,
    /// The destination traced towards.
    pub destination: Ipv4Addr,
    /// Whether the destination answered.
    pub reached_destination: bool,
    /// Total probe packets sent (the paper's cost metric).
    pub probes_sent: u64,
    /// Probes the session skipped thanks to shared-stop-set hits
    /// (Doubletree-style redundancy elimination; 0 outside stop-set
    /// sweeps).
    pub probes_elided: u64,
    /// For MDA-Lite: the switchover that occurred, if any.
    pub switched: Option<SwitchReason>,
    /// True if the run stopped because the probe budget was exhausted.
    pub budget_exhausted: bool,
    /// How the trace ended (complete, or gracefully degraded).
    pub outcome: TraceOutcome,
    /// The raw evidence (vertices, flows, edges per hop).
    pub discovery: Discovery,
}

impl Trace {
    /// Vertices discovered at `ttl` (excluding star placeholders, which
    /// are only synthesised during topology conversion).
    pub fn vertices_at(&self, ttl: u8) -> &[Ipv4Addr] {
        self.discovery.vertices_at(ttl)
    }

    /// Total discovered vertices (all hops through the destination hop).
    pub fn total_vertices(&self) -> usize {
        self.discovery.total_vertices()
    }

    /// Total witnessed edges.
    pub fn total_edges(&self) -> usize {
        self.discovery.total_edges()
    }

    /// The TTL at which the destination finally answered, if reached.
    pub fn destination_ttl(&self) -> Option<u8> {
        self.discovery.destination_ttl()
    }

    /// Set of all discovered interface addresses.
    pub fn all_addresses(&self) -> BTreeSet<Ipv4Addr> {
        let mut set = BTreeSet::new();
        for ttl in 1..=self.discovery.max_observed_ttl() {
            set.extend(self.discovery.vertices_at(ttl).iter().copied());
        }
        set
    }

    /// Converts the evidence into a validated topology for diamond
    /// analysis.
    ///
    /// * Hops past the destination TTL are dropped; the final hop is the
    ///   destination alone.
    /// * A hop with no responses becomes a star placeholder vertex.
    /// * Vertices the evidence leaves unconnected (possible under heavy
    ///   loss or budget exhaustion) are linked through the only vertex of
    ///   an adjacent single-vertex hop when sound, or to the first vertex
    ///   of the adjacent hop as a last resort; lossless complete runs
    ///   never need either.
    ///
    /// Returns `None` if the destination was never reached (no convergence
    /// point — the survey discards such traces as non-exploitable).
    pub fn to_topology(&self) -> Option<MultipathTopology> {
        self.destination_ttl()?;
        let max_ttl = self.discovery.max_observed_ttl();
        // Final hop must hold exactly the destination; if the last observed
        // hop still mixes other vertices (truncated run), synthesise one
        // more hop for the destination.
        let last_is_clean = self.discovery.vertices_at(max_ttl) == [self.destination];
        let final_ttl = if last_is_clean { max_ttl } else { max_ttl + 1 };

        let mut b = TopologyBuilder::default();
        let mut hop_vertices: Vec<Vec<Ipv4Addr>> = Vec::new();
        for ttl in 1..final_ttl {
            let mut vs: Vec<Ipv4Addr> = self.discovery.vertices_at(ttl).to_vec();
            if vs.is_empty() {
                vs.push(star_address(ttl));
            }
            hop_vertices.push(vs);
        }
        hop_vertices.push(vec![self.destination]);

        for vs in &hop_vertices {
            b.add_hop(vs.iter().copied());
        }

        // Witnessed edges.
        let mut has_succ: Vec<BTreeSet<Ipv4Addr>> = vec![BTreeSet::new(); hop_vertices.len()];
        let mut has_pred: Vec<BTreeSet<Ipv4Addr>> = vec![BTreeSet::new(); hop_vertices.len()];
        for ttl in 1..final_ttl {
            let h = usize::from(ttl - 1);
            for (from, tos) in self.discovery.edges_from(ttl) {
                if !hop_vertices[h].contains(&from) {
                    continue;
                }
                for to in tos {
                    if hop_vertices[h + 1].contains(&to) {
                        b.add_edge(h, from, to);
                        has_succ[h].insert(from);
                        has_pred[h + 1].insert(to);
                    }
                }
            }
        }

        // Stars and stragglers: complete connectivity. Sound when the
        // adjacent hop is a single vertex (all flows pass through it);
        // otherwise the first vertex stands in — this only triggers for
        // runs truncated by loss or budget.
        for h in 0..hop_vertices.len() {
            if h + 1 < hop_vertices.len() {
                for &v in hop_vertices[h].clone().iter() {
                    if !has_succ[h].contains(&v) {
                        let to = hop_vertices[h + 1][0];
                        b.add_edge(h, v, to);
                        has_succ[h].insert(v);
                        has_pred[h + 1].insert(to);
                    }
                }
            }
            if h > 0 {
                for &v in hop_vertices[h].clone().iter() {
                    if !has_pred[h].contains(&v) {
                        let from = hop_vertices[h - 1][0];
                        b.add_edge(h - 1, from, v);
                        has_pred[h].insert(v);
                        has_succ[h - 1].insert(from);
                    }
                }
            }
        }

        b.build().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpt_topo::graph::addr;
    use mlpt_wire::FlowId;

    fn simple_trace() -> Trace {
        let mut d = Discovery::new();
        // TTL 1: single vertex; TTL 2: two; TTL 3: destination.
        let dst = addr(9, 9);
        for (flow, path) in [
            (FlowId(1), vec![addr(0, 0), addr(1, 0), dst]),
            (FlowId(2), vec![addr(0, 0), addr(1, 1), dst]),
        ] {
            for (i, &v) in path.iter().enumerate() {
                let ttl = (i + 1) as u8;
                d.note_probe_sent(flow, ttl);
                d.record(flow, ttl, v, v == dst);
            }
        }
        Trace {
            algorithm: Algorithm::Mda,
            destination: dst,
            reached_destination: true,
            probes_sent: 6,
            probes_elided: 0,
            switched: None,
            budget_exhausted: false,
            outcome: TraceOutcome::Complete,
            discovery: d,
        }
    }

    #[test]
    fn totals() {
        let t = simple_trace();
        assert_eq!(t.total_vertices(), 4);
        assert_eq!(t.total_edges(), 4);
        assert_eq!(t.destination_ttl(), Some(3));
    }

    #[test]
    fn to_topology_roundtrip() {
        let t = simple_trace();
        let topo = t.to_topology().unwrap();
        assert_eq!(topo.num_hops(), 3);
        assert_eq!(topo.hop(1).len(), 2);
        assert_eq!(topo.destination(), addr(9, 9));
        assert_eq!(topo.total_edges(), 4);
    }

    #[test]
    fn unreached_destination_yields_none() {
        let mut d = Discovery::new();
        d.record(FlowId(1), 1, addr(0, 0), false);
        let t = Trace {
            algorithm: Algorithm::SingleFlow,
            destination: addr(9, 9),
            reached_destination: false,
            probes_sent: 1,
            probes_elided: 0,
            switched: None,
            budget_exhausted: false,
            outcome: TraceOutcome::Complete,
            discovery: d,
        };
        assert!(t.to_topology().is_none());
    }

    #[test]
    fn silent_hop_becomes_star() {
        let mut d = Discovery::new();
        let dst = addr(9, 9);
        // TTL 1 observed; TTL 2 silent (probe sent, no reply); TTL 3 dest.
        d.note_probe_sent(FlowId(1), 1);
        d.record(FlowId(1), 1, addr(0, 0), false);
        d.note_probe_sent(FlowId(1), 2);
        d.note_probe_sent(FlowId(1), 3);
        d.record(FlowId(1), 3, dst, true);
        let t = Trace {
            algorithm: Algorithm::SingleFlow,
            destination: dst,
            reached_destination: true,
            probes_sent: 3,
            probes_elided: 0,
            switched: None,
            budget_exhausted: false,
            outcome: TraceOutcome::Complete,
            discovery: d,
        };
        let topo = t.to_topology().unwrap();
        assert_eq!(topo.num_hops(), 3);
        assert!(mlpt_topo::is_star(topo.hop(1)[0]));
        // Star is wired through.
        assert_eq!(topo.out_degree(0, addr(0, 0)), 1);
        assert_eq!(topo.in_degree(2, dst), 1);
    }

    #[test]
    fn early_destination_appearance_preserved() {
        // One flow reaches the destination at TTL 2, another at TTL 3.
        let mut d = Discovery::new();
        let dst = addr(9, 9);
        d.record(FlowId(1), 1, addr(0, 0), false);
        d.record(FlowId(2), 1, addr(0, 0), false);
        d.record(FlowId(1), 2, dst, true);
        d.record(FlowId(2), 2, addr(1, 0), false);
        d.record(FlowId(2), 3, dst, true);
        let t = Trace {
            algorithm: Algorithm::Mda,
            destination: dst,
            reached_destination: true,
            probes_sent: 5,
            probes_elided: 0,
            switched: None,
            budget_exhausted: false,
            outcome: TraceOutcome::Complete,
            discovery: d,
        };
        let topo = t.to_topology().unwrap();
        assert_eq!(topo.num_hops(), 3);
        // Destination appears at hop 1 (ttl 2) *and* as the final hop.
        assert!(topo.hop(1).contains(&dst));
        assert_eq!(topo.hop(2), &[dst]);
    }

    #[test]
    fn all_addresses_collects() {
        let t = simple_trace();
        let addrs = t.all_addresses();
        assert!(addrs.contains(&addr(0, 0)));
        assert!(addrs.contains(&addr(1, 0)));
        assert!(addrs.contains(&addr(1, 1)));
        assert!(addrs.contains(&addr(9, 9)));
    }
}
