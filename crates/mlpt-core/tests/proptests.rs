//! Property tests on the tracing algorithms: soundness on arbitrary
//! random topologies, end to end through the packet path.

use mlpt_core::prelude::*;
use mlpt_sim::SimNetwork;
use mlpt_topo::graph::addr;
use mlpt_topo::{MultipathTopology, TopologyBuilder};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

fn arb_topology() -> impl Strategy<Value = MultipathTopology> {
    proptest::collection::vec(1usize..=6, 1..6).prop_map(|mut widths| {
        widths.insert(0, 1);
        widths.push(1);
        let mut b = TopologyBuilder::default();
        for (h, &w) in widths.iter().enumerate() {
            b.add_hop((0..w).map(|i| addr(h, i)));
        }
        for h in 0..widths.len() - 1 {
            b.connect_unmeshed(h);
        }
        b.build().expect("valid")
    })
}

/// Checks soundness: everything a trace reports exists in truth.
fn assert_sound(topo: &MultipathTopology, trace: &Trace) -> Result<(), TestCaseError> {
    for ttl in 1..=topo.num_hops() as u8 {
        for &v in trace.vertices_at(ttl) {
            prop_assert!(
                topo.contains(usize::from(ttl - 1), v),
                "phantom vertex {v} at ttl {ttl}"
            );
        }
        for (from, tos) in trace.discovery.edges_from(ttl) {
            for to in tos {
                prop_assert!(
                    topo.successors(usize::from(ttl - 1), from).contains(&to),
                    "phantom edge {from}->{to}"
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The MDA never invents vertices or edges, always reaches the
    /// destination on a lossless network, and its per-hop stopping costs
    /// stay within the budget.
    #[test]
    fn mda_sound_and_terminating(topo in arb_topology(), seed in any::<u64>()) {
        let net = SimNetwork::new(topo.clone(), seed);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let trace = trace_mda(&mut prober, &TraceConfig::new(seed));
        prop_assert!(trace.reached_destination);
        prop_assert!(!trace.budget_exhausted);
        assert_sound(&topo, &trace)?;
        // Always finds the (single) first-hop and destination vertices.
        prop_assert_eq!(trace.vertices_at(1), topo.hop(0));
        let dest_ttl = trace.destination_ttl().unwrap();
        prop_assert_eq!(usize::from(dest_ttl), topo.num_hops());
    }

    /// Same soundness for MDA-Lite: never a phantom vertex or edge, and
    /// the destination is always reached on a lossless network.
    #[test]
    fn mda_lite_sound(topo in arb_topology(), seed in any::<u64>()) {
        let net = SimNetwork::new(topo.clone(), seed);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let trace = trace_mda_lite(&mut prober, &TraceConfig::new(seed));
        prop_assert!(trace.reached_destination);
        assert_sound(&topo, &trace)?;
    }

    /// The discovered topology converts to a valid MultipathTopology whose
    /// vertex sets are subsets of truth per hop.
    #[test]
    fn trace_topology_valid_subset(topo in arb_topology(), seed in any::<u64>()) {
        let net = SimNetwork::new(topo.clone(), seed);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let trace = trace_mda(&mut prober, &TraceConfig::new(seed));
        let got = trace.to_topology().expect("reached destination");
        prop_assert_eq!(got.num_hops(), topo.num_hops());
        for i in 0..topo.num_hops() {
            let want: BTreeSet<_> = topo.hop(i).iter().collect();
            let have: BTreeSet<_> = got.hop(i).iter().collect();
            prop_assert!(have.is_subset(&want), "hop {i}");
        }
    }

    /// Single-flow tracing yields one vertex per hop along a real path.
    #[test]
    fn single_flow_walks_a_path(topo in arb_topology(), seed in any::<u64>(), flow in any::<u16>()) {
        let net = SimNetwork::new(topo.clone(), seed);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let trace = trace_single_flow(&mut prober, &TraceConfig::new(seed), FlowId(flow));
        prop_assert!(trace.reached_destination);
        prop_assert_eq!(trace.probes_sent, topo.num_hops() as u64);
        let mut prev: Option<Ipv4Addr> = None;
        for ttl in 1..=topo.num_hops() as u8 {
            let vs = trace.vertices_at(ttl);
            prop_assert_eq!(vs.len(), 1);
            if let Some(p) = prev {
                prop_assert!(topo.successors(usize::from(ttl - 2), p).contains(&vs[0]));
            }
            prev = Some(vs[0]);
        }
    }

    /// Cost ordering invariant: single-flow <= MDA-Lite <= MDA (on clean
    /// multiple-fan topologies where Lite never switches).
    #[test]
    fn cost_ordering(topo in arb_topology(), seed in 0u64..1000) {
        let clean = (0..topo.num_hops() - 1).all(|h| {
            let a = topo.hop(h).len();
            let b = topo.hop(h + 1).len();
            a.max(b) % a.min(b) == 0
        });
        prop_assume!(clean);
        let run = |which: u8| -> u64 {
            let net = SimNetwork::new(topo.clone(), seed);
            let mut prober = TransportProber::new(net, SRC, topo.destination());
            let config = TraceConfig::new(seed);
            match which {
                0 => trace_single_flow(&mut prober, &config, FlowId(1)).probes_sent,
                1 => trace_mda_lite(&mut prober, &config).probes_sent,
                _ => trace_mda(&mut prober, &config).probes_sent,
            }
        };
        let single = run(0);
        let lite = run(1);
        let mda = run(2);
        prop_assert!(single <= lite, "single {single} > lite {lite}");
        // Lite may pay small meshing-test overhead on multi-multi pairs,
        // but must never exceed the MDA by more than that bounded extra.
        prop_assert!(lite <= mda + 24, "lite {lite} >> mda {mda}");
    }
}

/// On even unmeshed fan topologies (wider side a multiple of the
/// narrower), zero width asymmetry and no meshing exist, so a switch to
/// the full MDA is only ever justified by a stopping-rule miss. The
/// stopping rule runs at 95 % confidence, so misses — and hence
/// switches — must stay a small minority across many seeded runs; this
/// is the statistically sound form of "no spurious switches".
#[test]
fn mda_lite_spurious_switch_rate_is_small() {
    let mut b = TopologyBuilder::default();
    for (h, &w) in [1usize, 2, 6, 3, 1].iter().enumerate() {
        b.add_hop((0..w).map(|i| addr(h, i)));
    }
    for h in 0..4 {
        b.connect_unmeshed(h);
    }
    let topo = b.build().expect("valid");

    let runs = 200u64;
    let mut switched = 0u64;
    for seed in 0..runs {
        let net = SimNetwork::new(topo.clone(), seed);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let trace = trace_mda_lite(&mut prober, &TraceConfig::new(seed));
        assert!(trace.reached_destination, "seed {seed}");
        if trace.switched.is_some() {
            switched += 1;
        }
    }
    let rate = switched as f64 / runs as f64;
    assert!(
        rate < 0.15,
        "spurious switch rate {rate} ({switched}/{runs}) too high for a clean fan"
    );
}

/// The batched probe engine must be a pure performance change: for every
/// algorithm, batched and legacy per-probe dispatch over identically
/// seeded simulators yield bit-identical observation streams, probe
/// counts, and discovered topologies.
#[cfg(test)]
mod batch_equivalence {
    use super::*;
    use mlpt_core::prober::DispatchMode;

    fn run_with(
        topo: &MultipathTopology,
        seed: u64,
        dispatch: DispatchMode,
        algo: u8,
    ) -> (Trace, Vec<mlpt_core::ProbeObservation>, u64) {
        let net = SimNetwork::new(topo.clone(), seed);
        let mut prober = TransportProber::new(net, SRC, topo.destination()).with_dispatch(dispatch);
        let config = TraceConfig::new(seed);
        let trace = match algo {
            0 => trace_mda(&mut prober, &config),
            1 => trace_mda_lite(&mut prober, &config),
            _ => trace_single_flow(&mut prober, &config, FlowId(7)),
        };
        let sent = prober.probes_sent();
        let (_net, log) = prober.into_parts();
        (trace, log.indirect, sent)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn batched_and_per_probe_discover_identical_topologies(
            topo in arb_topology(),
            seed in any::<u64>(),
            algo in 0u8..3,
        ) {
            let (batched, batched_log, batched_sent) =
                run_with(&topo, seed, DispatchMode::Batched, algo);
            let (legacy, legacy_log, legacy_sent) =
                run_with(&topo, seed, DispatchMode::PerProbe, algo);

            // Same wire behaviour, packet for packet.
            prop_assert_eq!(batched_log, legacy_log, "observation streams diverged");
            prop_assert_eq!(batched_sent, legacy_sent, "probe counts diverged");
            prop_assert_eq!(batched.probes_sent, legacy.probes_sent);
            prop_assert_eq!(batched.switched, legacy.switched);
            prop_assert_eq!(batched.reached_destination, legacy.reached_destination);

            // Same evidence, hop by hop.
            let max_ttl = batched
                .discovery
                .max_observed_ttl()
                .max(legacy.discovery.max_observed_ttl());
            for ttl in 1..=max_ttl {
                prop_assert_eq!(
                    batched.vertices_at(ttl),
                    legacy.vertices_at(ttl),
                    "vertex sets diverged at ttl {}",
                    ttl
                );
                prop_assert_eq!(
                    batched.discovery.edges_from(ttl),
                    legacy.discovery.edges_from(ttl),
                    "edges diverged at ttl {}",
                    ttl
                );
            }

            // And the same final topology, bit for bit.
            prop_assert_eq!(batched.to_topology(), legacy.to_topology());
        }
    }
}
