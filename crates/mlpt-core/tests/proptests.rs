//! Property tests on the tracing algorithms: soundness on arbitrary
//! random topologies, end to end through the packet path.

use mlpt_core::prelude::*;
use mlpt_sim::SimNetwork;
use mlpt_topo::graph::addr;
use mlpt_topo::{MultipathTopology, TopologyBuilder};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

fn arb_topology() -> impl Strategy<Value = MultipathTopology> {
    proptest::collection::vec(1usize..=6, 1..6).prop_map(|mut widths| {
        widths.insert(0, 1);
        widths.push(1);
        let mut b = TopologyBuilder::default();
        for (h, &w) in widths.iter().enumerate() {
            b.add_hop((0..w).map(|i| addr(h, i)));
        }
        for h in 0..widths.len() - 1 {
            b.connect_unmeshed(h);
        }
        b.build().expect("valid")
    })
}

/// Checks soundness: everything a trace reports exists in truth.
fn assert_sound(topo: &MultipathTopology, trace: &Trace) -> Result<(), TestCaseError> {
    for ttl in 1..=topo.num_hops() as u8 {
        for &v in trace.vertices_at(ttl) {
            prop_assert!(
                topo.contains(usize::from(ttl - 1), v),
                "phantom vertex {v} at ttl {ttl}"
            );
        }
        for (from, tos) in trace.discovery.edges_from(ttl) {
            for to in tos {
                prop_assert!(
                    topo.successors(usize::from(ttl - 1), from).contains(&to),
                    "phantom edge {from}->{to}"
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The MDA never invents vertices or edges, always reaches the
    /// destination on a lossless network, and its per-hop stopping costs
    /// stay within the budget.
    #[test]
    fn mda_sound_and_terminating(topo in arb_topology(), seed in any::<u64>()) {
        let net = SimNetwork::new(topo.clone(), seed);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let trace = trace_mda(&mut prober, &TraceConfig::new(seed));
        prop_assert!(trace.reached_destination);
        prop_assert!(!trace.budget_exhausted);
        assert_sound(&topo, &trace)?;
        // Always finds the (single) first-hop and destination vertices.
        prop_assert_eq!(trace.vertices_at(1), topo.hop(0));
        let dest_ttl = trace.destination_ttl().unwrap();
        prop_assert_eq!(usize::from(dest_ttl), topo.num_hops());
    }

    /// Same for MDA-Lite, plus: on these even unmeshed fan topologies it
    /// must never switch to the full MDA.
    #[test]
    fn mda_lite_sound_no_spurious_switch(topo in arb_topology(), seed in any::<u64>()) {
        let net = SimNetwork::new(topo.clone(), seed);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let trace = trace_mda_lite(&mut prober, &TraceConfig::new(seed));
        prop_assert!(trace.reached_destination);
        assert_sound(&topo, &trace)?;
        // Even unmeshed fans have zero width asymmetry and no meshing:
        // a switch would be a false alarm. (connect_unmeshed distributes
        // evenly only when the wider side is a multiple of the narrower;
        // other splits are genuinely asymmetric, so only check the
        // multiple case.)
        let clean = (0..topo.num_hops() - 1).all(|h| {
            let a = topo.hop(h).len();
            let b = topo.hop(h + 1).len();
            a.max(b) % a.min(b) == 0
        });
        if clean {
            prop_assert!(trace.switched.is_none(), "spurious {:?}", trace.switched);
        }
    }

    /// The discovered topology converts to a valid MultipathTopology whose
    /// vertex sets are subsets of truth per hop.
    #[test]
    fn trace_topology_valid_subset(topo in arb_topology(), seed in any::<u64>()) {
        let net = SimNetwork::new(topo.clone(), seed);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let trace = trace_mda(&mut prober, &TraceConfig::new(seed));
        let got = trace.to_topology().expect("reached destination");
        prop_assert_eq!(got.num_hops(), topo.num_hops());
        for i in 0..topo.num_hops() {
            let want: BTreeSet<_> = topo.hop(i).iter().collect();
            let have: BTreeSet<_> = got.hop(i).iter().collect();
            prop_assert!(have.is_subset(&want), "hop {i}");
        }
    }

    /// Single-flow tracing yields one vertex per hop along a real path.
    #[test]
    fn single_flow_walks_a_path(topo in arb_topology(), seed in any::<u64>(), flow in any::<u16>()) {
        let net = SimNetwork::new(topo.clone(), seed);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let trace = trace_single_flow(&mut prober, &TraceConfig::new(seed), FlowId(flow));
        prop_assert!(trace.reached_destination);
        prop_assert_eq!(trace.probes_sent, topo.num_hops() as u64);
        let mut prev: Option<Ipv4Addr> = None;
        for ttl in 1..=topo.num_hops() as u8 {
            let vs = trace.vertices_at(ttl);
            prop_assert_eq!(vs.len(), 1);
            if let Some(p) = prev {
                prop_assert!(topo.successors(usize::from(ttl - 2), p).contains(&vs[0]));
            }
            prev = Some(vs[0]);
        }
    }

    /// Cost ordering invariant: single-flow <= MDA-Lite <= MDA (on clean
    /// multiple-fan topologies where Lite never switches).
    #[test]
    fn cost_ordering(topo in arb_topology(), seed in 0u64..1000) {
        let clean = (0..topo.num_hops() - 1).all(|h| {
            let a = topo.hop(h).len();
            let b = topo.hop(h + 1).len();
            a.max(b) % a.min(b) == 0
        });
        prop_assume!(clean);
        let run = |which: u8| -> u64 {
            let net = SimNetwork::new(topo.clone(), seed);
            let mut prober = TransportProber::new(net, SRC, topo.destination());
            let config = TraceConfig::new(seed);
            match which {
                0 => trace_single_flow(&mut prober, &config, FlowId(1)).probes_sent,
                1 => trace_mda_lite(&mut prober, &config).probes_sent,
                _ => trace_mda(&mut prober, &config).probes_sent,
            }
        };
        let single = run(0);
        let lite = run(1);
        let mda = run(2);
        prop_assert!(single <= lite, "single {single} > lite {lite}");
        // Lite may pay small meshing-test overhead on multi-multi pairs,
        // but must never exceed the MDA by more than that bounded extra.
        prop_assert!(lite <= mda + 24, "lite {lite} >> mda {mda}");
    }
}
