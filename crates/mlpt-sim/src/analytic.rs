//! Exact MDA failure probability.
//!
//! "For any given multipath route between source and destination, one can
//! calculate the precise probability of the MDA failing to detect the
//! entire topology. This calculation is a simple application of the MDA's
//! stopping rule with the chosen stopping points, the values n_k"
//! (Sec. 3). This module performs that calculation exactly:
//!
//! * [`vertex_failure_probability`] — dynamic program over the probing
//!   process at one vertex with `K` uniform successors: the probability
//!   that the stopping rule fires before all `K` are seen.
//! * [`mda_failure_probability`] — combines the per-vertex probabilities
//!   over a whole topology (independent load balancers, assumption 5).
//!
//! For the simplest diamond (one vertex with K = 2) under the 95 %
//! stopping points (n₁ = 6), this reproduces the paper's analytic value
//! `(1/2)^(n₁ - 1) = 0.03125`.

use mlpt_topo::MultipathTopology;

/// Probability that the MDA stopping rule terminates before discovering
/// all `k_successors` successors of a vertex, assuming uniform-at-random
/// balancing over them.
///
/// `nks[k - 1]` is the stopping point n_k: with `k` successors known,
/// probing the hop stops once `nks[k - 1]` probes have been sent without a
/// new discovery.
///
/// # Panics
/// Panics if `nks` is shorter than `k_successors` (Fakeroute requires "a
/// number of values n_k that is at least equal to the highest branching
/// factor encountered in the topology") or if the table is not
/// monotonically non-decreasing.
pub fn vertex_failure_probability(k_successors: usize, nks: &[u64]) -> f64 {
    assert!(k_successors >= 1, "a vertex has at least one successor");
    assert!(
        nks.len() >= k_successors,
        "need n_k values up to k = {k_successors}, got {}",
        nks.len()
    );
    assert!(
        nks.windows(2).all(|w| w[0] <= w[1]),
        "stopping points must be non-decreasing"
    );
    let k = k_successors;
    if k == 1 {
        // The single successor is found by the first probe; ruling out a
        // second cannot fail.
        return 0.0;
    }

    let n = |j: usize| nks[j - 1]; // stopping point with j found

    // State: after t probes, j distinct successors seen, not yet stopped.
    // Start: first probe always discovers one successor.
    let mut alive = vec![0.0f64; k + 1];
    alive[1] = 1.0;
    let mut t: u64 = 1;
    let mut failure = 0.0f64;

    // The process cannot outlive n_k probes.
    while t < n(k) {
        // Terminate states whose stopping point equals the current count.
        #[allow(clippy::needless_range_loop)]
        for j in 1..k {
            if t >= n(j) && alive[j] > 0.0 {
                failure += alive[j];
                alive[j] = 0.0;
            }
        }
        // j == k is success; that mass can be retired too.
        if alive[k] > 0.0 {
            alive[k] = 0.0;
        }

        // One more probe for every still-alive state.
        let mut next = vec![0.0f64; k + 1];
        #[allow(clippy::needless_range_loop)]
        for j in 1..k {
            let p = alive[j];
            if p == 0.0 {
                continue;
            }
            let p_new = (k - j) as f64 / k as f64;
            next[j + 1] += p * p_new;
            next[j] += p * (1.0 - p_new);
        }
        alive = next;
        t += 1;
    }
    // Any mass still alive with j < k fails at n_k.
    failure += alive[1..k].iter().sum::<f64>();
    failure
}

/// Probability that the MDA fails to discover the complete topology:
/// one minus the product of per-vertex success probabilities over every
/// vertex that has successors.
pub fn mda_failure_probability(topology: &MultipathTopology, nks: &[u64]) -> f64 {
    let mut success = 1.0f64;
    for i in 0..topology.num_hops() - 1 {
        for &v in topology.hop(i) {
            let k = topology.out_degree(i, v);
            success *= 1.0 - vertex_failure_probability(k, nks);
        }
    }
    1.0 - success
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpt_topo::canonical;

    /// The classic 95 % stopping points (inclusion–exclusion rule at
    /// α = 0.05): 6, 11, 16, 21, 27, 33, …
    const NK95: &[u64] = &[6, 11, 16, 21, 27, 33, 38, 44, 51, 57];

    #[test]
    fn single_successor_never_fails() {
        assert_eq!(vertex_failure_probability(1, NK95), 0.0);
    }

    #[test]
    fn two_successors_closed_form() {
        // P(fail) = (1/2)^(n1 - 1): the remaining n1-1 probes all land on
        // the successor already seen.
        let p = vertex_failure_probability(2, NK95);
        assert!((p - 0.03125).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn failure_stays_near_alpha() {
        // Each stage of the stopping rule (ruling out a (j+1)-th successor
        // when it exists) is individually bounded by α = 0.05, but the full
        // discovery process compounds the stages, so the total per-vertex
        // failure probability can slightly exceed α at high branching
        // factors. It must stay in the same regime, far below 2α.
        for k in 2..=10 {
            let p = vertex_failure_probability(k, NK95);
            assert!(p < 0.08, "k={k}: failure {p} far exceeds bound regime");
            assert!(p > 0.0);
        }
        // The dominant simple cases stay under α itself.
        assert!(vertex_failure_probability(2, NK95) < 0.05);
        assert!(vertex_failure_probability(3, NK95) < 0.05);
    }

    #[test]
    fn failure_increases_with_branching() {
        // Wider fan-outs are harder to fully discover (with this table).
        let p2 = vertex_failure_probability(2, NK95);
        let p6 = vertex_failure_probability(6, NK95);
        assert!(p6 > p2, "p2={p2} p6={p6}");
    }

    #[test]
    fn simplest_diamond_matches_paper() {
        // "the real failure probability of the topology, which is 0.03125,
        // given the set of nk values used by the MDA for a failure
        // probability of 0.05" (Sec. 3).
        let t = canonical::simplest_diamond();
        let p = mda_failure_probability(&t, NK95);
        assert!((p - 0.03125).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn linear_path_never_fails() {
        let mut b = MultipathTopology::builder();
        b.add_hop([mlpt_topo::graph::addr(0, 0)]);
        b.add_hop([mlpt_topo::graph::addr(1, 0)]);
        b.add_hop([mlpt_topo::graph::addr(2, 0)]);
        b.connect_unmeshed(0);
        b.connect_unmeshed(1);
        let t = b.build().unwrap();
        assert_eq!(mda_failure_probability(&t, NK95), 0.0);
    }

    use mlpt_topo::MultipathTopology;

    #[test]
    fn fig1_unmeshed_probability() {
        // Divergence has K=4; hop-2 vertices each K=1; hop-3 each K=1.
        // Failure = P(vertex with 4 successors not fully discovered).
        let t = canonical::fig1_unmeshed();
        let p = mda_failure_probability(&t, NK95);
        let pv = vertex_failure_probability(4, NK95);
        assert!((p - pv).abs() < 1e-12);
    }

    #[test]
    fn fig1_meshed_probability_compounds() {
        // Meshed: divergence K=4 plus four vertices with K=2 each.
        let t = canonical::fig1_meshed();
        let p = mda_failure_probability(&t, NK95);
        let pv4 = vertex_failure_probability(4, NK95);
        let pv2 = vertex_failure_probability(2, NK95);
        let expected = 1.0 - (1.0 - pv4) * (1.0 - pv2).powi(4);
        assert!((p - expected).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_agrees_with_dp() {
        // Simulate the stopping process directly and compare to the DP.
        use rand::Rng;
        use rand::SeedableRng;
        let k = 3usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let trials = 200_000;
        let mut failures = 0u64;
        for _ in 0..trials {
            let mut seen = vec![false; k];
            let mut distinct = 0usize;
            let mut t = 0u64;
            loop {
                t += 1;
                let choice = rng.gen_range(0..k);
                if !seen[choice] {
                    seen[choice] = true;
                    distinct += 1;
                }
                if distinct == k {
                    break; // success
                }
                if t >= NK95[distinct - 1] {
                    failures += 1;
                    break;
                }
            }
        }
        let empirical = failures as f64 / trials as f64;
        let dp = vertex_failure_probability(k, NK95);
        assert!(
            (empirical - dp).abs() < 0.002,
            "empirical {empirical} vs dp {dp}"
        );
    }

    #[test]
    #[should_panic(expected = "need n_k values")]
    fn short_table_rejected() {
        let _ = vertex_failure_probability(4, &[6, 11]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn non_monotone_table_rejected() {
        let _ = vertex_failure_probability(2, &[6, 5]);
    }
}
