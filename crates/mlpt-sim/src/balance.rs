//! The load-balancing decision function.
//!
//! The MDA model assumes (Sec. 2.1) that load balancing is *per-flow*
//! (assumption 2: flow IDs steer probes deterministically) and
//! *uniform-at-random across successors* (assumption 3). [`FlowHasher`]
//! realises both: a vertex's next hop is chosen by a strong 64-bit mix of
//! `(seed, hop, vertex, flow)`, giving each flow an independent,
//! uniformly distributed, but stable choice.
//!
//! [`BalanceMode`] also provides the two deviations the paper discusses:
//! per-packet balancing (rare in practice, but the reason the MDA checks
//! flow stability) and per-destination balancing (indistinguishable from
//! plain routing for a single destination). Weighted (non-uniform)
//! balancing supports the paper's future-work item on uneven load
//! balancing.

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// How a load balancer classifies packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalanceMode {
    /// Hash on the flow identifier: same flow → same path (default).
    PerFlow,
    /// Hash on a per-packet nonce: every packet re-rolls the dice.
    PerPacket,
    /// Hash on the destination only: all probes to one destination take
    /// one path.
    PerDestination,
}

/// Deterministic uniform hashing for balancing decisions.
#[derive(Debug, Clone, Copy)]
pub struct FlowHasher {
    seed: u64,
}

impl FlowHasher {
    /// Creates a hasher; distinct seeds give statistically independent
    /// balancing universes.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// SplitMix64 finaliser: a full-avalanche 64-bit mixer.
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Raw 64-bit decision value for a balancing point.
    ///
    /// `nonce` is zero for per-flow mode; per-packet mode passes a packet
    /// counter; per-destination mode passes a hash of the destination in
    /// place of the flow.
    pub fn decision(&self, hop: usize, vertex: Ipv4Addr, selector: u64, nonce: u64) -> u64 {
        let v = u32::from(vertex) as u64;
        let mut h = self.seed;
        h = Self::mix(h ^ (hop as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        h = Self::mix(h ^ v.wrapping_mul(0x9FB2_1C65_1E98_DF25));
        h = Self::mix(h ^ selector);
        if nonce != 0 {
            h = Self::mix(h ^ nonce.rotate_left(17));
        }
        h
    }

    /// Uniform choice among `n` successors.
    pub fn choose(
        &self,
        hop: usize,
        vertex: Ipv4Addr,
        selector: u64,
        nonce: u64,
        n: usize,
    ) -> usize {
        debug_assert!(n > 0);
        // Multiply-shift avoids modulo bias for small n.
        let h = self.decision(hop, vertex, selector, nonce);
        ((u128::from(h) * n as u128) >> 64) as usize
    }

    /// Weighted choice among successors with the given weights.
    pub fn choose_weighted(
        &self,
        hop: usize,
        vertex: Ipv4Addr,
        selector: u64,
        nonce: u64,
        weights: &[u32],
    ) -> usize {
        debug_assert!(!weights.is_empty());
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        debug_assert!(total > 0, "weights must not all be zero");
        let h = self.decision(hop, vertex, selector, nonce);
        let mut point = ((u128::from(h) * u128::from(total)) >> 64) as u64;
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if point < w {
                return i;
            }
            point -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 0);

    #[test]
    fn per_flow_stability() {
        let h = FlowHasher::new(42);
        for flow in 0..100u64 {
            let a = h.choose(3, V, flow, 0, 4);
            let b = h.choose(3, V, flow, 0, 4);
            assert_eq!(a, b, "same flow must always take the same branch");
        }
    }

    #[test]
    fn choices_in_range() {
        let h = FlowHasher::new(7);
        for flow in 0..1000u64 {
            for n in 1..=6 {
                assert!(h.choose(1, V, flow, 0, n) < n);
            }
        }
    }

    #[test]
    fn uniformity_over_flows() {
        // Assumption 3 of the MDA model: each successor must be reached by
        // ~1/n of the flow space.
        let h = FlowHasher::new(123);
        let n = 4;
        let trials = 40_000u64;
        let mut counts = [0u64; 4];
        for flow in 0..trials {
            counts[h.choose(2, V, flow, 0, n)] += 1;
        }
        let expected = trials as f64 / n as f64;
        for &c in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "deviation {dev} too large: {counts:?}");
        }
    }

    #[test]
    fn independence_across_vertices() {
        // Flows taking branch 0 at one vertex must still split evenly at
        // another vertex — balancers act independently (assumption 5).
        let h = FlowHasher::new(99);
        let v2 = Ipv4Addr::new(10, 2, 0, 0);
        let mut counts = [0u64; 2];
        let mut picked = 0u64;
        for flow in 0..40_000u64 {
            if h.choose(1, V, flow, 0, 2) == 0 {
                picked += 1;
                counts[h.choose(2, v2, flow, 0, 2)] += 1;
            }
        }
        let expected = picked as f64 / 2.0;
        for &c in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "conditional deviation {dev}: {counts:?}");
        }
    }

    #[test]
    fn per_packet_nonce_changes_choice() {
        let h = FlowHasher::new(5);
        let mut seen = std::collections::BTreeSet::new();
        for nonce in 1..=64u64 {
            seen.insert(h.choose(1, V, 7, nonce, 8));
        }
        assert!(seen.len() > 1, "per-packet mode must vary the path");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FlowHasher::new(1);
        let b = FlowHasher::new(2);
        let differs = (0..64u64).any(|f| a.choose(1, V, f, 0, 16) != b.choose(1, V, f, 0, 16));
        assert!(differs);
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let h = FlowHasher::new(11);
        let weights = [3u32, 1];
        let mut counts = [0u64; 2];
        for flow in 0..40_000u64 {
            counts[h.choose_weighted(1, V, flow, 0, &weights)] += 1;
        }
        let ratio = counts[0] as f64 / (counts[0] + counts[1]) as f64;
        assert!((ratio - 0.75).abs() < 0.02, "weighted ratio {ratio}");
    }

    #[test]
    fn weighted_single_bucket() {
        let h = FlowHasher::new(11);
        assert_eq!(h.choose_weighted(0, V, 1, 0, &[5]), 0);
    }
}
