//! Packet capture: a pcap-format view of everything crossing a transport.
//!
//! Fakeroute's value is observability; this module adds the classic
//! `--pcap` affordance: [`CapturingTransport`] wraps any
//! [`PacketTransport`], records every probe and reply with its virtual
//! timestamp, and serialises the capture as a standard little-endian
//! pcap file (LINKTYPE_RAW 101: packets begin at the IPv4 header) that
//! Wireshark or tcpdump can open.

use mlpt_wire::transport::PacketTransport;

/// Direction of a captured packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Tool → network (a probe).
    Probe,
    /// Network → tool (a reply).
    Reply,
}

/// One captured packet.
#[derive(Debug, Clone)]
pub struct CapturedPacket {
    /// Virtual transport time at capture.
    pub timestamp: u64,
    /// Probe or reply.
    pub direction: Direction,
    /// The raw datagram bytes.
    pub bytes: Vec<u8>,
}

/// A transport wrapper that records all traffic.
pub struct CapturingTransport<T: PacketTransport> {
    inner: T,
    packets: Vec<CapturedPacket>,
}

impl<T: PacketTransport> CapturingTransport<T> {
    /// Wraps a transport.
    pub fn new(inner: T) -> Self {
        Self {
            inner,
            packets: Vec::new(),
        }
    }

    /// The capture so far.
    pub fn packets(&self) -> &[CapturedPacket] {
        &self.packets
    }

    /// Consumes the wrapper, returning the transport and the capture.
    pub fn into_parts(self) -> (T, Vec<CapturedPacket>) {
        (self.inner, self.packets)
    }

    /// Serialises the capture as a pcap file body (magic, header, records).
    ///
    /// Virtual ticks are mapped to microseconds, so inter-packet spacing
    /// is visible in analysis tools.
    pub fn to_pcap(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.packets.len() * 64);
        // Global header: magic (usec), version 2.4, zone 0, sigfigs 0,
        // snaplen 65535, network = LINKTYPE_RAW (101).
        out.extend_from_slice(&0xA1B2_C3D4u32.to_le_bytes());
        out.extend_from_slice(&2u16.to_le_bytes());
        out.extend_from_slice(&4u16.to_le_bytes());
        out.extend_from_slice(&0i32.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&65_535u32.to_le_bytes());
        out.extend_from_slice(&101u32.to_le_bytes());
        for p in &self.packets {
            let seconds = (p.timestamp / 1_000_000) as u32;
            let micros = (p.timestamp % 1_000_000) as u32;
            out.extend_from_slice(&seconds.to_le_bytes());
            out.extend_from_slice(&micros.to_le_bytes());
            out.extend_from_slice(&(p.bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&(p.bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&p.bytes);
        }
        out
    }

    /// Writes the capture to a file.
    pub fn write_pcap(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_pcap())
    }

    /// Capture statistics: (probes, replies).
    pub fn counts(&self) -> (usize, usize) {
        let probes = self
            .packets
            .iter()
            .filter(|p| p.direction == Direction::Probe)
            .count();
        (probes, self.packets.len() - probes)
    }
}

impl<T: PacketTransport> PacketTransport for CapturingTransport<T> {
    fn send_packet(&mut self, packet: &[u8]) -> Option<Vec<u8>> {
        let mut reply = Vec::new();
        if self.send_packet_into(packet, &mut reply) {
            Some(reply)
        } else {
            None
        }
    }

    fn send_packet_into(&mut self, packet: &[u8], reply: &mut Vec<u8>) -> bool {
        self.packets.push(CapturedPacket {
            timestamp: self.inner.now(),
            direction: Direction::Probe,
            bytes: packet.to_vec(),
        });
        let mark = reply.len();
        let answered = self.inner.send_packet_into(packet, reply);
        if answered {
            self.packets.push(CapturedPacket {
                timestamp: self.inner.now(),
                direction: Direction::Reply,
                bytes: reply[mark..].to_vec(),
            });
        }
        answered
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }
}

/// Batched dispatch still captures every probe and reply: the default
/// shim routes through the capturing `send_packet_into` above.
impl<T: PacketTransport> mlpt_wire::BatchTransport for CapturingTransport<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SimNetwork;
    use mlpt_topo::canonical;
    use mlpt_wire::probe::{build_udp_probe, ProbePacket};
    use mlpt_wire::FlowId;
    use std::net::Ipv4Addr;

    fn capture_some() -> CapturingTransport<SimNetwork> {
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        let mut cap = CapturingTransport::new(SimNetwork::new(topo, 1));
        for flow in 0..4u16 {
            let probe = build_udp_probe(&ProbePacket {
                source: Ipv4Addr::new(192, 0, 2, 1),
                destination: dst,
                flow: FlowId(flow),
                ttl: 2,
                sequence: flow,
            });
            let _ = cap.send_packet(&probe);
        }
        cap
    }

    #[test]
    fn records_probes_and_replies() {
        let cap = capture_some();
        let (probes, replies) = cap.counts();
        assert_eq!(probes, 4);
        assert_eq!(replies, 4);
        assert_eq!(cap.packets().len(), 8);
        // Alternating directions on a lossless network.
        for pair in cap.packets().chunks(2) {
            assert_eq!(pair[0].direction, Direction::Probe);
            assert_eq!(pair[1].direction, Direction::Reply);
        }
    }

    #[test]
    fn pcap_structure_valid() {
        let cap = capture_some();
        let pcap = cap.to_pcap();
        // Magic + version.
        assert_eq!(&pcap[0..4], &0xA1B2_C3D4u32.to_le_bytes());
        assert_eq!(u16::from_le_bytes([pcap[4], pcap[5]]), 2);
        assert_eq!(
            u32::from_le_bytes([pcap[20], pcap[21], pcap[22], pcap[23]]),
            101
        );
        // Walk the records: lengths must be consistent and IPv4 headers
        // must start each packet.
        let mut offset = 24;
        let mut records = 0;
        while offset < pcap.len() {
            let incl = u32::from_le_bytes([
                pcap[offset + 8],
                pcap[offset + 9],
                pcap[offset + 10],
                pcap[offset + 11],
            ]) as usize;
            let packet = &pcap[offset + 16..offset + 16 + incl];
            assert_eq!(packet[0] >> 4, 4, "record {records} not IPv4");
            offset += 16 + incl;
            records += 1;
        }
        assert_eq!(records, 8);
        assert_eq!(offset, pcap.len());
    }

    #[test]
    fn timestamps_monotone() {
        let cap = capture_some();
        let stamps: Vec<u64> = cap.packets().iter().map(|p| p.timestamp).collect();
        assert!(stamps.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn write_pcap_roundtrip() {
        let cap = capture_some();
        let dir = std::env::temp_dir().join("mlpt-test-capture.pcap");
        cap.write_pcap(&dir).unwrap();
        let bytes = std::fs::read(&dir).unwrap();
        assert_eq!(bytes, cap.to_pcap());
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn unanswered_probe_recorded_alone() {
        use crate::faults::FaultPlan;
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        let net = SimNetwork::builder(topo)
            .faults(FaultPlan::with_loss(1.0, 0.0))
            .seed(1)
            .build();
        let mut cap = CapturingTransport::new(net);
        let probe = build_udp_probe(&ProbePacket {
            source: Ipv4Addr::new(192, 0, 2, 1),
            destination: dst,
            flow: FlowId(1),
            ttl: 1,
            sequence: 1,
        });
        assert!(cap.send_packet(&probe).is_none());
        let (probes, replies) = cap.counts();
        assert_eq!((probes, replies), (1, 0));
    }
}
