//! Fault injection.
//!
//! The MDA's idealised model assumes every probe receives a response
//! (assumption 4). The paper's future-work list (Sec. 7, item 2) calls for
//! a simulator that can violate that assumption — in particular ICMP rate
//! limiting, "one common cause of a lack of replies". Two layers:
//!
//! * [`FaultPlan`] — the legacy static knob set: probabilistic probe loss
//!   (the forward packet vanishes), probabilistic reply loss (the ICMP
//!   reply vanishes), and per-router ICMP rate limiting via a token
//!   bucket. Kept as the stable config surface; it converts into —
//! * [`FaultSpec`] — the full impairment vocabulary at one instant:
//!   everything a plan expresses plus reply **latency** (ticks added to
//!   each reply's delivery time, so a deadline-driven prober can see
//!   late replies) and a **blackhole** (all probes to TTLs at or beyond
//!   a threshold vanish — a destination or path segment going dark).
//! * [`FaultSchedule`] — a stepped timeline of specs: the network's
//!   impairments *change at named virtual-clock ticks*, which is what a
//!   static plan can never express (a destination going dark mid-trace,
//!   loss that flaps, congestion that ramps). Presets for the canonical
//!   chaos scenarios live in [`FaultSchedule::preset`].

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of injected faults. The default plan injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability a probe is dropped before reaching any router.
    pub probe_loss: f64,
    /// Probability a generated reply is dropped on the way back.
    pub reply_loss: f64,
    /// ICMP rate limit: token bucket capacity per router
    /// (None = unlimited).
    pub icmp_bucket_capacity: Option<u32>,
    /// Tokens refilled per clock tick.
    pub icmp_tokens_per_tick: f64,
}

impl FaultPlan {
    /// No faults at all: the MDA's ideal world.
    pub fn none() -> Self {
        Self {
            probe_loss: 0.0,
            reply_loss: 0.0,
            icmp_bucket_capacity: None,
            icmp_tokens_per_tick: 0.0,
        }
    }

    /// Uniform random loss on both directions.
    pub fn with_loss(probe_loss: f64, reply_loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&probe_loss));
        assert!((0.0..=1.0).contains(&reply_loss));
        Self {
            probe_loss,
            reply_loss,
            ..Self::none()
        }
    }

    /// ICMP rate limiting: each router may emit at most `capacity` replies
    /// in a burst, refilling at `tokens_per_tick`.
    pub fn with_rate_limit(capacity: u32, tokens_per_tick: f64) -> Self {
        assert!(capacity > 0);
        assert!(tokens_per_tick >= 0.0);
        Self {
            icmp_bucket_capacity: Some(capacity),
            icmp_tokens_per_tick: tokens_per_tick,
            ..Self::none()
        }
    }

    /// The rate-limiting lane profile in router-datasheet terms: each
    /// router answers at most `replies` probes per `window_ticks` of
    /// virtual time (token bucket of capacity `replies` refilling at
    /// `replies / window_ticks` tokens per tick). Bursts larger than the
    /// window allowance are suppressed — the behaviour an adaptive
    /// prober must detect and back off from (Viger et al.).
    pub fn with_rate_limit_window(replies: u32, window_ticks: u64) -> Self {
        assert!(replies > 0);
        assert!(window_ticks > 0);
        Self {
            icmp_bucket_capacity: Some(replies),
            icmp_tokens_per_tick: f64::from(replies) / window_ticks as f64,
            ..Self::none()
        }
    }

    /// True if this plan can suppress packets at all.
    pub fn is_lossy(&self) -> bool {
        self.probe_loss > 0.0 || self.reply_loss > 0.0 || self.icmp_bucket_capacity.is_some()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// The complete impairment vocabulary at one instant of virtual time.
///
/// A [`FaultPlan`] converts losslessly into a spec (no latency, no
/// blackhole); a [`FaultSchedule`] is a timeline of specs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Probability a probe is dropped before reaching any router.
    pub probe_loss: f64,
    /// Probability a generated reply is dropped on the way back.
    pub reply_loss: f64,
    /// Virtual-clock ticks added to every reply's delivery time. A
    /// deadline-driven prober observes a reply only if
    /// `latency_ticks <= timeout`; the synchronous prober (which cannot
    /// express deadlines) still sees the reply, just later-stamped.
    pub latency_ticks: u64,
    /// Seeded per-probe latency spread: each reply's delivery time gains
    /// a uniform draw from `0..=jitter_ticks` on top of `latency_ticks`.
    /// Zero (the default) means perfectly flat latency — and draws
    /// nothing from the jitter stream, so jitter-free schedules stay
    /// bit-identical to builds that predate the knob.
    pub jitter_ticks: u64,
    /// Blackhole threshold: probes addressed to hops at or beyond this
    /// TTL silently vanish (no reply, ever). `Some(1)` darkens the whole
    /// path; `Some(k)` models a failure after hop `k - 1`.
    pub blackhole_min_ttl: Option<u8>,
    /// ICMP rate limit: token bucket capacity per router
    /// (None = unlimited).
    pub icmp_bucket_capacity: Option<u32>,
    /// Tokens refilled per clock tick.
    pub icmp_tokens_per_tick: f64,
}

impl FaultSpec {
    /// No impairments: the MDA's ideal world.
    pub fn none() -> Self {
        FaultPlan::none().into()
    }

    /// Spec with reply latency added.
    pub fn with_latency(mut self, ticks: u64) -> Self {
        self.latency_ticks = ticks;
        self
    }

    /// Spec with a blackhole from the given TTL onward.
    pub fn with_blackhole(mut self, min_ttl: u8) -> Self {
        assert!(min_ttl > 0, "TTL 0 never carries probes");
        self.blackhole_min_ttl = Some(min_ttl);
        self
    }

    /// Spec with a per-probe latency spread of `0..=ticks` added on top
    /// of the fixed reply latency.
    pub fn with_jitter(mut self, ticks: u64) -> Self {
        self.jitter_ticks = ticks;
        self
    }

    /// True if this spec can suppress or delay packets at all.
    pub fn is_lossy(&self) -> bool {
        self.probe_loss > 0.0
            || self.reply_loss > 0.0
            || self.icmp_bucket_capacity.is_some()
            || self.latency_ticks > 0
            || self.jitter_ticks > 0
            || self.blackhole_min_ttl.is_some()
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::none()
    }
}

impl From<FaultPlan> for FaultSpec {
    fn from(plan: FaultPlan) -> Self {
        Self {
            probe_loss: plan.probe_loss,
            reply_loss: plan.reply_loss,
            latency_ticks: 0,
            jitter_ticks: 0,
            blackhole_min_ttl: None,
            icmp_bucket_capacity: plan.icmp_bucket_capacity,
            icmp_tokens_per_tick: plan.icmp_tokens_per_tick,
        }
    }
}

/// A time-scheduled sequence of impairments: the spec in force is a step
/// function of the simulator's virtual clock.
///
/// Steps are `(tick, spec)` pairs sorted by tick; the spec at tick `t`
/// is the last step at or before `t`. A schedule always covers tick 0
/// (an implicit no-fault step is inserted if the first explicit step
/// starts later), so [`spec_at`](Self::spec_at) is total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    steps: Vec<(u64, FaultSpec)>,
}

impl FaultSchedule {
    /// The same spec forever — how a static [`FaultPlan`] embeds.
    pub fn constant(spec: FaultSpec) -> Self {
        Self {
            steps: vec![(0, spec)],
        }
    }

    /// No impairments, ever.
    pub fn none() -> Self {
        Self::constant(FaultSpec::none())
    }

    /// Appends a step: from `tick` onward, `spec` is in force. Ticks
    /// must be appended in strictly increasing order.
    pub fn step(mut self, tick: u64, spec: FaultSpec) -> Self {
        if let Some(&(last, _)) = self.steps.last() {
            assert!(
                tick > last || (self.steps.len() == 1 && tick == 0),
                "schedule steps must be appended in increasing tick order \
                 ({tick} after {last})"
            );
            if tick == 0 {
                // Replacing the implicit tick-0 step.
                self.steps.clear();
            }
        }
        self.steps.push((tick, spec));
        self
    }

    /// The spec in force at virtual-clock tick `tick`.
    pub fn spec_at(&self, tick: u64) -> &FaultSpec {
        let idx = self.steps.partition_point(|&(t, _)| t <= tick);
        // Index 0 always has tick 0, so idx >= 1.
        &self.steps[idx - 1].1
    }

    /// The steps, in tick order.
    pub fn steps(&self) -> &[(u64, FaultSpec)] {
        &self.steps
    }

    /// True if any step can suppress or delay packets.
    pub fn is_lossy(&self) -> bool {
        self.steps.iter().any(|(_, spec)| spec.is_lossy())
    }

    /// Names of the built-in chaos presets, in [`preset`](Self::preset)
    /// order.
    pub fn preset_names() -> &'static [&'static str] {
        &[
            "midtrace-blackhole",
            "flap",
            "congestion-ramp",
            "rate-limit-burst",
            "jitter-spread",
        ]
    }

    /// A named chaos preset, or `None` for an unknown name.
    ///
    /// * `midtrace-blackhole` — clean network until tick 48, then every
    ///   path goes completely dark: traces in flight must finish
    ///   partial, not hang.
    /// * `flap` — loss switches on (60% both directions) and off every
    ///   32 ticks, the oscillating-quality link.
    /// * `congestion-ramp` — reply loss and latency climb together in
    ///   three steps, the queue-buildup profile.
    /// * `rate-limit-burst` — routers clamp to a tight ICMP token
    ///   bucket between ticks 16 and 96, then recover.
    /// * `jitter-spread` — from tick 32 every reply gains a seeded
    ///   uniform 0..=12-tick spread on top of a 1-tick base latency,
    ///   then settles at tick 96: the bufferbloat profile where some
    ///   replies straggle past their deadline and some squeak in.
    pub fn preset(name: &str) -> Option<Self> {
        let schedule = match name {
            "midtrace-blackhole" => {
                FaultSchedule::none().step(48, FaultSpec::none().with_blackhole(1))
            }
            "flap" => {
                let lossy = FaultSpec::from(FaultPlan::with_loss(0.6, 0.6));
                FaultSchedule::none()
                    .step(32, lossy)
                    .step(64, FaultSpec::none())
                    .step(96, lossy)
                    .step(128, FaultSpec::none())
            }
            "congestion-ramp" => FaultSchedule::none()
                .step(
                    32,
                    FaultSpec::from(FaultPlan::with_loss(0.0, 0.05)).with_latency(2),
                )
                .step(
                    64,
                    FaultSpec::from(FaultPlan::with_loss(0.0, 0.15)).with_latency(8),
                )
                .step(
                    96,
                    FaultSpec::from(FaultPlan::with_loss(0.0, 0.35)).with_latency(32),
                ),
            "rate-limit-burst" => FaultSchedule::none()
                .step(16, FaultPlan::with_rate_limit(2, 0.05).into())
                .step(96, FaultSpec::none()),
            "jitter-spread" => FaultSchedule::none()
                .step(32, FaultSpec::none().with_latency(1).with_jitter(12))
                .step(96, FaultSpec::none()),
            _ => return None,
        };
        Some(schedule)
    }
}

impl Default for FaultSchedule {
    fn default() -> Self {
        Self::none()
    }
}

impl From<FaultPlan> for FaultSchedule {
    fn from(plan: FaultPlan) -> Self {
        Self::constant(plan.into())
    }
}

impl From<FaultSpec> for FaultSchedule {
    fn from(spec: FaultSpec) -> Self {
        Self::constant(spec)
    }
}

/// Runtime state of fault injection (token buckets per router).
#[derive(Debug, Default)]
pub struct FaultState {
    buckets: HashMap<u32, Bucket>,
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last_tick: u64,
}

impl FaultState {
    /// Creates fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rolls the probe-loss dice.
    pub fn drop_probe<R: Rng>(&self, spec: &FaultSpec, rng: &mut R) -> bool {
        spec.probe_loss > 0.0 && rng.gen::<f64>() < spec.probe_loss
    }

    /// Rolls the reply-loss dice.
    pub fn drop_reply<R: Rng>(&self, spec: &FaultSpec, rng: &mut R) -> bool {
        spec.reply_loss > 0.0 && rng.gen::<f64>() < spec.reply_loss
    }

    /// True if the blackhole swallows a probe addressed to hop `ttl`.
    pub fn blackholed(&self, spec: &FaultSpec, ttl: u8) -> bool {
        spec.blackhole_min_ttl.is_some_and(|min| ttl >= min)
    }

    /// Samples one reply's delivery latency: the fixed base plus a
    /// uniform jitter draw. A jitter-free spec consumes nothing from
    /// `rng`, so schedules without jitter keep their historical RNG
    /// streams intact.
    pub fn sample_latency<R: Rng>(&self, spec: &FaultSpec, rng: &mut R) -> u64 {
        if spec.jitter_ticks == 0 {
            spec.latency_ticks
        } else {
            spec.latency_ticks + rng.gen_range(0..=spec.jitter_ticks)
        }
    }

    /// Asks the router's ICMP token bucket for permission to reply.
    pub fn allow_icmp(&mut self, spec: &FaultSpec, router: u32, now: u64) -> bool {
        let Some(capacity) = spec.icmp_bucket_capacity else {
            return true;
        };
        let bucket = self.buckets.entry(router).or_insert(Bucket {
            tokens: f64::from(capacity),
            last_tick: now,
        });
        let elapsed = now.saturating_sub(bucket.last_tick) as f64;
        bucket.tokens =
            (bucket.tokens + elapsed * spec.icmp_tokens_per_tick).min(f64::from(capacity));
        bucket.last_tick = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn no_faults_never_drop() {
        let plan = FaultPlan::none();
        let spec = FaultSpec::from(plan);
        let mut state = FaultState::new();
        let mut rng = StdRng::seed_from_u64(1);
        for t in 0..100 {
            assert!(!state.drop_probe(&spec, &mut rng));
            assert!(!state.drop_reply(&spec, &mut rng));
            assert!(!state.blackholed(&spec, 1));
            assert!(state.allow_icmp(&spec, 1, t));
        }
        assert!(!plan.is_lossy());
        assert!(!spec.is_lossy());
    }

    #[test]
    fn loss_rates_are_respected() {
        let spec = FaultSpec::from(FaultPlan::with_loss(0.3, 0.0));
        let state = FaultState::new();
        let mut rng = StdRng::seed_from_u64(2);
        let drops = (0..20_000)
            .filter(|_| state.drop_probe(&spec, &mut rng))
            .count();
        let rate = drops as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed loss {rate}");
        assert!(spec.is_lossy());
    }

    #[test]
    fn token_bucket_exhausts_and_refills() {
        let spec = FaultSpec::from(FaultPlan::with_rate_limit(3, 0.5));
        let mut state = FaultState::new();
        // Burst at t=0: 3 allowed, 4th denied.
        assert!(state.allow_icmp(&spec, 1, 0));
        assert!(state.allow_icmp(&spec, 1, 0));
        assert!(state.allow_icmp(&spec, 1, 0));
        assert!(!state.allow_icmp(&spec, 1, 0));
        // After 2 ticks, one token has refilled.
        assert!(state.allow_icmp(&spec, 1, 2));
        assert!(!state.allow_icmp(&spec, 1, 2));
    }

    #[test]
    fn buckets_are_per_router() {
        let spec = FaultSpec::from(FaultPlan::with_rate_limit(1, 0.0));
        let mut state = FaultState::new();
        assert!(state.allow_icmp(&spec, 1, 0));
        assert!(!state.allow_icmp(&spec, 1, 0));
        // Router 2 has its own bucket.
        assert!(state.allow_icmp(&spec, 2, 0));
    }

    #[test]
    fn bucket_caps_at_capacity() {
        let spec = FaultSpec::from(FaultPlan::with_rate_limit(2, 10.0));
        let mut state = FaultState::new();
        assert!(state.allow_icmp(&spec, 1, 0));
        // Long idle: refill must cap at 2, not accumulate unboundedly.
        assert!(state.allow_icmp(&spec, 1, 1000));
        assert!(state.allow_icmp(&spec, 1, 1000));
        assert!(!state.allow_icmp(&spec, 1, 1000));
    }

    #[test]
    fn rate_limit_window_profile() {
        // 4 replies per 16-tick window: capacity 4, refill 0.25/tick.
        let plan = FaultPlan::with_rate_limit_window(4, 16);
        assert_eq!(plan.icmp_bucket_capacity, Some(4));
        assert!((plan.icmp_tokens_per_tick - 0.25).abs() < 1e-12);
        let spec = FaultSpec::from(plan);
        let mut state = FaultState::new();
        // A burst of 4 at t=0 drains the bucket; the 5th is suppressed.
        for _ in 0..4 {
            assert!(state.allow_icmp(&spec, 1, 0));
        }
        assert!(!state.allow_icmp(&spec, 1, 0));
        // A full window later the bucket has refilled completely.
        assert!(state.allow_icmp(&spec, 1, 16));
        assert!(state.allow_icmp(&spec, 1, 16));
    }

    #[test]
    #[should_panic]
    fn invalid_loss_probability_rejected() {
        let _ = FaultPlan::with_loss(1.5, 0.0);
    }

    #[test]
    fn blackhole_threshold_semantics() {
        let spec = FaultSpec::none().with_blackhole(4);
        let state = FaultState::new();
        assert!(!state.blackholed(&spec, 3));
        assert!(state.blackholed(&spec, 4));
        assert!(state.blackholed(&spec, 255));
        assert!(spec.is_lossy());
        assert!(FaultSpec::none().with_latency(3).is_lossy());
    }

    #[test]
    fn schedule_steps_resolve_by_tick() {
        let lossy = FaultSpec::from(FaultPlan::with_loss(0.5, 0.0));
        let dark = FaultSpec::none().with_blackhole(1);
        let schedule = FaultSchedule::none().step(10, lossy).step(20, dark);
        assert_eq!(*schedule.spec_at(0), FaultSpec::none());
        assert_eq!(*schedule.spec_at(9), FaultSpec::none());
        assert_eq!(*schedule.spec_at(10), lossy);
        assert_eq!(*schedule.spec_at(19), lossy);
        assert_eq!(*schedule.spec_at(20), dark);
        assert_eq!(*schedule.spec_at(u64::MAX), dark);
        assert!(schedule.is_lossy());
        assert!(!FaultSchedule::none().is_lossy());
    }

    #[test]
    #[should_panic]
    fn schedule_rejects_out_of_order_steps() {
        let _ = FaultSchedule::none()
            .step(20, FaultSpec::none())
            .step(10, FaultSpec::none());
    }

    #[test]
    fn schedule_embeds_static_plan() {
        let plan = FaultPlan::with_rate_limit(2, 0.25);
        let schedule = FaultSchedule::from(plan);
        assert_eq!(*schedule.spec_at(0), FaultSpec::from(plan));
        assert_eq!(*schedule.spec_at(1_000_000), FaultSpec::from(plan));
    }

    #[test]
    fn every_preset_resolves_and_round_trips() {
        for name in FaultSchedule::preset_names() {
            let schedule =
                FaultSchedule::preset(name).unwrap_or_else(|| panic!("preset {name} must exist"));
            assert!(schedule.is_lossy(), "{name} must impair something");
            assert_eq!(
                *schedule.spec_at(0),
                FaultSpec::none(),
                "{name} starts clean"
            );
            let json = serde_json::to_string(&schedule).unwrap();
            let back: FaultSchedule = serde_json::from_str(&json).unwrap();
            assert_eq!(back, schedule, "{name} must round-trip through serde");
        }
        assert!(FaultSchedule::preset("no-such-preset").is_none());
    }

    #[test]
    fn midtrace_blackhole_goes_dark_at_48() {
        let schedule = FaultSchedule::preset("midtrace-blackhole").unwrap();
        assert_eq!(schedule.spec_at(47).blackhole_min_ttl, None);
        assert_eq!(schedule.spec_at(48).blackhole_min_ttl, Some(1));
    }

    #[test]
    fn jitter_sampling_spreads_within_bounds() {
        let spec = FaultSpec::none().with_latency(3).with_jitter(5);
        assert!(spec.is_lossy());
        let state = FaultState::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let lat = state.sample_latency(&spec, &mut rng);
            assert!((3..=8).contains(&lat), "latency {lat} out of bounds");
            seen.insert(lat);
        }
        assert!(seen.len() > 3, "jitter must actually spread: {seen:?}");
    }

    #[test]
    fn zero_jitter_consumes_no_randomness() {
        let spec = FaultSpec::none().with_latency(4);
        let state = FaultState::new();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(state.sample_latency(&spec, &mut a), 4);
        }
        // The stream is untouched: both rngs still agree.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn jitter_spread_preset_windows() {
        let schedule = FaultSchedule::preset("jitter-spread").unwrap();
        assert_eq!(schedule.spec_at(31).jitter_ticks, 0);
        assert_eq!(schedule.spec_at(32).jitter_ticks, 12);
        assert_eq!(schedule.spec_at(32).latency_ticks, 1);
        assert_eq!(schedule.spec_at(96).jitter_ticks, 0);
    }
}
