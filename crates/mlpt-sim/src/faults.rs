//! Fault injection.
//!
//! The MDA's idealised model assumes every probe receives a response
//! (assumption 4). The paper's future-work list (Sec. 7, item 2) calls for
//! a simulator that can violate that assumption — in particular ICMP rate
//! limiting, "one common cause of a lack of replies". [`FaultPlan`]
//! injects:
//!
//! * probabilistic probe loss (the forward packet vanishes),
//! * probabilistic reply loss (the ICMP reply vanishes),
//! * per-router ICMP rate limiting via a token bucket.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of injected faults. The default plan injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability a probe is dropped before reaching any router.
    pub probe_loss: f64,
    /// Probability a generated reply is dropped on the way back.
    pub reply_loss: f64,
    /// ICMP rate limit: token bucket capacity per router
    /// (None = unlimited).
    pub icmp_bucket_capacity: Option<u32>,
    /// Tokens refilled per clock tick.
    pub icmp_tokens_per_tick: f64,
}

impl FaultPlan {
    /// No faults at all: the MDA's ideal world.
    pub fn none() -> Self {
        Self {
            probe_loss: 0.0,
            reply_loss: 0.0,
            icmp_bucket_capacity: None,
            icmp_tokens_per_tick: 0.0,
        }
    }

    /// Uniform random loss on both directions.
    pub fn with_loss(probe_loss: f64, reply_loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&probe_loss));
        assert!((0.0..=1.0).contains(&reply_loss));
        Self {
            probe_loss,
            reply_loss,
            ..Self::none()
        }
    }

    /// ICMP rate limiting: each router may emit at most `capacity` replies
    /// in a burst, refilling at `tokens_per_tick`.
    pub fn with_rate_limit(capacity: u32, tokens_per_tick: f64) -> Self {
        assert!(capacity > 0);
        assert!(tokens_per_tick >= 0.0);
        Self {
            icmp_bucket_capacity: Some(capacity),
            icmp_tokens_per_tick: tokens_per_tick,
            ..Self::none()
        }
    }

    /// The rate-limiting lane profile in router-datasheet terms: each
    /// router answers at most `replies` probes per `window_ticks` of
    /// virtual time (token bucket of capacity `replies` refilling at
    /// `replies / window_ticks` tokens per tick). Bursts larger than the
    /// window allowance are suppressed — the behaviour an adaptive
    /// prober must detect and back off from (Viger et al.).
    pub fn with_rate_limit_window(replies: u32, window_ticks: u64) -> Self {
        assert!(replies > 0);
        assert!(window_ticks > 0);
        Self {
            icmp_bucket_capacity: Some(replies),
            icmp_tokens_per_tick: f64::from(replies) / window_ticks as f64,
            ..Self::none()
        }
    }

    /// True if this plan can suppress packets at all.
    pub fn is_lossy(&self) -> bool {
        self.probe_loss > 0.0 || self.reply_loss > 0.0 || self.icmp_bucket_capacity.is_some()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Runtime state of fault injection (token buckets per router).
#[derive(Debug, Default)]
pub struct FaultState {
    buckets: HashMap<u32, Bucket>,
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last_tick: u64,
}

impl FaultState {
    /// Creates fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rolls the probe-loss dice.
    pub fn drop_probe<R: Rng>(&self, plan: &FaultPlan, rng: &mut R) -> bool {
        plan.probe_loss > 0.0 && rng.gen::<f64>() < plan.probe_loss
    }

    /// Rolls the reply-loss dice.
    pub fn drop_reply<R: Rng>(&self, plan: &FaultPlan, rng: &mut R) -> bool {
        plan.reply_loss > 0.0 && rng.gen::<f64>() < plan.reply_loss
    }

    /// Asks the router's ICMP token bucket for permission to reply.
    pub fn allow_icmp(&mut self, plan: &FaultPlan, router: u32, now: u64) -> bool {
        let Some(capacity) = plan.icmp_bucket_capacity else {
            return true;
        };
        let bucket = self.buckets.entry(router).or_insert(Bucket {
            tokens: f64::from(capacity),
            last_tick: now,
        });
        let elapsed = now.saturating_sub(bucket.last_tick) as f64;
        bucket.tokens =
            (bucket.tokens + elapsed * plan.icmp_tokens_per_tick).min(f64::from(capacity));
        bucket.last_tick = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn no_faults_never_drop() {
        let plan = FaultPlan::none();
        let mut state = FaultState::new();
        let mut rng = StdRng::seed_from_u64(1);
        for t in 0..100 {
            assert!(!state.drop_probe(&plan, &mut rng));
            assert!(!state.drop_reply(&plan, &mut rng));
            assert!(state.allow_icmp(&plan, 1, t));
        }
        assert!(!plan.is_lossy());
    }

    #[test]
    fn loss_rates_are_respected() {
        let plan = FaultPlan::with_loss(0.3, 0.0);
        let state = FaultState::new();
        let mut rng = StdRng::seed_from_u64(2);
        let drops = (0..20_000)
            .filter(|_| state.drop_probe(&plan, &mut rng))
            .count();
        let rate = drops as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed loss {rate}");
        assert!(plan.is_lossy());
    }

    #[test]
    fn token_bucket_exhausts_and_refills() {
        let plan = FaultPlan::with_rate_limit(3, 0.5);
        let mut state = FaultState::new();
        // Burst at t=0: 3 allowed, 4th denied.
        assert!(state.allow_icmp(&plan, 1, 0));
        assert!(state.allow_icmp(&plan, 1, 0));
        assert!(state.allow_icmp(&plan, 1, 0));
        assert!(!state.allow_icmp(&plan, 1, 0));
        // After 2 ticks, one token has refilled.
        assert!(state.allow_icmp(&plan, 1, 2));
        assert!(!state.allow_icmp(&plan, 1, 2));
    }

    #[test]
    fn buckets_are_per_router() {
        let plan = FaultPlan::with_rate_limit(1, 0.0);
        let mut state = FaultState::new();
        assert!(state.allow_icmp(&plan, 1, 0));
        assert!(!state.allow_icmp(&plan, 1, 0));
        // Router 2 has its own bucket.
        assert!(state.allow_icmp(&plan, 2, 0));
    }

    #[test]
    fn bucket_caps_at_capacity() {
        let plan = FaultPlan::with_rate_limit(2, 10.0);
        let mut state = FaultState::new();
        assert!(state.allow_icmp(&plan, 1, 0));
        // Long idle: refill must cap at 2, not accumulate unboundedly.
        assert!(state.allow_icmp(&plan, 1, 1000));
        assert!(state.allow_icmp(&plan, 1, 1000));
        assert!(!state.allow_icmp(&plan, 1, 1000));
    }

    #[test]
    fn rate_limit_window_profile() {
        // 4 replies per 16-tick window: capacity 4, refill 0.25/tick.
        let plan = FaultPlan::with_rate_limit_window(4, 16);
        assert_eq!(plan.icmp_bucket_capacity, Some(4));
        assert!((plan.icmp_tokens_per_tick - 0.25).abs() < 1e-12);
        let mut state = FaultState::new();
        // A burst of 4 at t=0 drains the bucket; the 5th is suppressed.
        for _ in 0..4 {
            assert!(state.allow_icmp(&plan, 1, 0));
        }
        assert!(!state.allow_icmp(&plan, 1, 0));
        // A full window later the bucket has refilled completely.
        assert!(state.allow_icmp(&plan, 1, 16));
        assert!(state.allow_icmp(&plan, 1, 16));
    }

    #[test]
    #[should_panic]
    fn invalid_loss_probability_rejected() {
        let _ = FaultPlan::with_loss(1.5, 0.0);
    }
}
