//! Fakeroute: a packet-level multipath network simulator.
//!
//! Section 3 of the paper introduces Fakeroute, "a network multipath
//! topology simulator that takes as input a given topology …, that
//! calculates the probability that the MDA will fail to discover the full
//! topology, and that runs the actual software tool in question repeatedly
//! on the topology to verify that the tool does indeed fail at the
//! predicted rate". This crate is that simulator:
//!
//! * [`network`] — [`SimNetwork`]: routes *real probe bytes* (IPv4+UDP or
//!   IPv4+ICMP Echo) through a [`mlpt_topo::MultipathTopology`] with
//!   deterministic per-flow load balancing and produces *real ICMP reply
//!   bytes*, exactly as the original Fakeroute sniffs and answers a tool's
//!   packets.
//! * [`router`] — ground-truth router models: IP-ID counter behaviours
//!   (shared, per-interface, constant, random, probe-copying), initial
//!   TTLs for fingerprinting, MPLS tunnel labels, direct-probe
//!   responsiveness. These drive the multilevel (alias resolution)
//!   experiments of Secs. 4–5.
//! * [`balance`] — the load-balancing hash: per-flow (default),
//!   per-packet and per-destination modes, with optional non-uniform
//!   weights (the paper's future-work item 1).
//! * [`faults`] — fault injection: probe/reply loss and per-router ICMP
//!   rate limiting (the paper's future-work item 2).
//! * [`schedule`] — scheduled topology mutations: routes flap, load
//!   balancers reconfigure and MPLS tunnels reveal themselves at named
//!   virtual-clock ticks, violating MDA assumption (1) the way real
//!   networks do.
//! * [`analytic`] — the exact MDA failure probability of a topology under
//!   a given stopping-point table (the number Fakeroute validates tools
//!   against).
//! * [`validation`] — the statistical harness: run a tool many times,
//!   aggregate sample failure rates, report mean and confidence interval
//!   (the "1000 runs × 50 samples" experiment of Sec. 3).
//!
//! The simulator implements [`PacketTransport`], the byte-level boundary
//! that probers are written against; swapping in a raw-socket transport
//! would carry the same algorithms onto a real network.

pub mod analytic;
pub mod balance;
pub mod capture;
pub mod faults;
pub mod multi;
pub mod network;
pub(crate) mod pool;
pub mod router;
pub mod schedule;
pub mod validation;

pub use analytic::{mda_failure_probability, vertex_failure_probability};
pub use balance::{BalanceMode, FlowHasher};
pub use capture::CapturingTransport;
pub use faults::{FaultPlan, FaultSchedule, FaultSpec};
pub use multi::{env_default_workers, MultiNetwork, MultiNetworkError};
pub use network::{PacketTransport, SimNetwork, SimNetworkBuilder, TrafficCounters};
pub use router::{
    CounterBehavior, IpIdEngine, IpIdProfile, MplsProfile, ReplyClass, RouterProfile,
};
pub use schedule::{TopoMutation, TopologySchedule};
pub use validation::{validate_tool, ValidationReport};
