//! Multi-destination routing: one transport, many simulated networks.
//!
//! A sweep traces many destinations at once, but PR 1's probe engine has
//! exactly one [`BatchTransport`] under the prober. [`MultiNetwork`]
//! closes that gap: it hosts one [`SimNetwork`] **lane** per destination
//! and routes every injected probe to its lane by the packet's
//! destination address (UDP probes by traced destination, ICMP echoes by
//! target interface), exactly as one vantage-point NIC faces many remote
//! networks.
//!
//! # Determinism under interleaving
//!
//! Every lane keeps its *own* RNG stream, virtual clock, IP-ID engine and
//! fault state — the full per-destination [`SimNetwork`] — and only ever
//! advances when one of its own packets crosses. Probes for different
//! destinations therefore cannot perturb each other no matter how a
//! scheduler interleaves them: the byte streams (and per-lane timestamps)
//! a lane produces are bit-identical to running the same packets through
//! a standalone `SimNetwork` built with the same seed. This is the
//! transport half of the sweep engine's headline invariant — concurrent
//! sweeps reproduce sequential traces exactly.
//!
//! The vectorized [`BatchTransport::send_batch`] path can optionally
//! process lanes on worker threads ([`MultiNetwork::with_workers`]):
//! because lanes are disjoint, the merged reply batch is identical
//! regardless of thread timing, so parallelism is invisible except in
//! wall-clock time. The threads are a **persistent pool**
//! ([`crate::pool`]) — long-lived workers parked between crossings —
//! so the parallel path engages at any batch size instead of only
//! above a spawn-amortization threshold.

use crate::network::{PendingBatch, SimNetwork, TrafficCounters};
use crate::pool::WorkerPool;
use mlpt_wire::ipv4::{Ipv4Header, PROTO_ICMP, PROTO_UDP};
use mlpt_wire::transport::{
    BatchTransport, PacketBatch, PacketTransport, ReplyBatch, SplitTransport,
};
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};

/// Minimum routed probes in a batch before the worker pool engages.
///
/// The old per-crossing `thread::scope` spawn only amortized above ~64
/// probes *per worker* (a spawn/join costs ~10–30 µs); the persistent
/// pool's per-crossing cost is two channel hops per worker (~1 µs), so
/// the measured crossover drops to single-digit batches: any crossing
/// with at least two probes to split between lanes is worth handing to
/// the pool. Batches of one probe (and single-lane networks) keep the
/// serial path — there is nothing to parallelize.
const POOL_MIN_PROBES: usize = 2;

/// The default simulator worker count: the `MLPT_SIM_WORKERS`
/// environment variable when set (CI exercises the pool suite-wide
/// with `MLPT_SIM_WORKERS=2`), else 1 (fully sequential). Worker count
/// is purely a wall-clock knob — replies are bit-identical for any
/// value — which is what makes an environment override safe.
pub fn env_default_workers() -> usize {
    std::env::var("MLPT_SIM_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(1, |w| w.max(1))
}

/// Errors detected while assembling a [`MultiNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiNetworkError {
    /// Two lanes simulate the same traced destination; probes could not
    /// be routed unambiguously.
    DuplicateDestination(Ipv4Addr),
}

impl std::fmt::Display for MultiNetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiNetworkError::DuplicateDestination(d) => {
                write!(f, "two lanes simulate destination {d}")
            }
        }
    }
}

impl std::error::Error for MultiNetworkError {}

/// One shared transport over per-destination [`SimNetwork`] lanes.
pub struct MultiNetwork {
    /// The lanes, shared with pool workers **only while a crossing is
    /// in flight**: workers drop their `Arc` clone before acking, so
    /// between crossings this is the unique reference and every `&mut
    /// self` accessor recovers lock-free `&mut SimNetwork` access via
    /// [`Arc::get_mut`].
    lanes: Arc<Vec<Mutex<SimNetwork>>>,
    /// Sorted (destination, lane) pairs for UDP routing.
    dests: Vec<(u32, usize)>,
    /// Sorted (interface, lane) pairs for echo routing; an interface
    /// shared by several lanes (e.g. a common core) routes to the first.
    interfaces: Vec<(u32, usize)>,
    workers: usize,
    /// The persistent worker pool, spawned lazily on the first parallel
    /// crossing (serial-only networks never pay for threads).
    pool: Option<WorkerPool>,
    /// Virtual ticks every lane's clock advances after each `send_batch`.
    cycle_gap: u64,
    /// In-flight batch of the split (send/recv) transport exchange.
    pending: PendingBatch,
}

/// Unwraps a lane's mutex under the exclusive-between-crossings
/// invariant (poisoning would mean a pool worker panicked mid-job,
/// which already aborted the crossing).
fn unpoisoned(lane: &mut Mutex<SimNetwork>) -> &mut SimNetwork {
    lane.get_mut().expect("lane mutex poisoned")
}

impl MultiNetwork {
    /// Builds the shared transport over `lanes`. Destinations must be
    /// unique across lanes.
    pub fn new(lanes: Vec<SimNetwork>) -> Result<Self, MultiNetworkError> {
        let mut dests: Vec<(u32, usize)> = Vec::with_capacity(lanes.len());
        for (i, lane) in lanes.iter().enumerate() {
            let d = u32::from(lane.topology().destination());
            if dests.iter().any(|&(existing, _)| existing == d) {
                return Err(MultiNetworkError::DuplicateDestination(Ipv4Addr::from(d)));
            }
            dests.push((d, i));
        }
        dests.sort_unstable();
        let mut interfaces: Vec<(u32, usize)> = Vec::new();
        for (i, lane) in lanes.iter().enumerate() {
            for addr in lane.topology().all_addresses() {
                interfaces.push((u32::from(addr), i));
            }
        }
        // First lane wins for shared interfaces: sort by (addr, lane) and
        // keep the first entry per address.
        interfaces.sort_unstable();
        interfaces.dedup_by_key(|&mut (addr, _)| addr);
        Ok(Self {
            lanes: Arc::new(lanes.into_iter().map(Mutex::new).collect()),
            dests,
            interfaces,
            workers: env_default_workers(),
            pool: None,
            cycle_gap: 0,
            pending: PendingBatch::default(),
        })
    }

    /// Sets how many worker threads `send_batch` may spread lanes over
    /// (default: [`env_default_workers`] — 1 unless `MLPT_SIM_WORKERS`
    /// overrides it). Purely a wall-clock knob: the replies are
    /// identical for any worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        let workers = workers.max(1);
        if workers != self.workers {
            self.workers = workers;
            // Resized pools respawn lazily on the next parallel crossing.
            self.pool = None;
        }
        self
    }

    /// Splits this transport into `shards` independent transports, each
    /// owning the lanes `assign` maps to it (by the lane's traced
    /// destination, so a sharded sweep's sessions and their lanes land
    /// on the same shard). The handoff for
    /// `mlpt_core::shard::ShardedSweepEngine`: lane state, worker count
    /// and cycle gap carry over verbatim; shards the assignment leaves
    /// empty are valid (they simply answer nothing). Lane order within
    /// a shard preserves this network's lane order.
    ///
    /// Sharding assumes the standard per-destination lane construction
    /// (disjoint address blocks): an interface shared by lanes on
    /// *different* shards would be answered by each shard's own first
    /// owning lane, where the unsharded network routes all echoes to
    /// the global first.
    pub fn split_by<F>(self, shards: usize, assign: F) -> Vec<MultiNetwork>
    where
        F: Fn(Ipv4Addr) -> usize,
    {
        let shards = shards.max(1);
        let MultiNetwork {
            lanes,
            workers,
            cycle_gap,
            ..
        } = self;
        let lanes = Arc::try_unwrap(lanes)
            .map_err(|_| ())
            .expect("a crossing is still in flight")
            .into_iter()
            .map(|m| m.into_inner().expect("lane mutex poisoned"));
        let mut per_shard: Vec<Vec<SimNetwork>> = (0..shards).map(|_| Vec::new()).collect();
        for lane in lanes {
            let shard = assign(lane.topology().destination()) % shards;
            per_shard[shard].push(lane);
        }
        per_shard
            .into_iter()
            .map(|sub| {
                MultiNetwork::new(sub)
                    .expect("a subset of unique destinations stays unique")
                    .with_workers(workers)
                    .with_cycle_gap(cycle_gap)
            })
            .collect()
    }

    /// Advances every lane's virtual clock by `ticks` after each
    /// `send_batch`, modelling the round-trip pause between a scheduler's
    /// dispatch cycles. With a gap, per-router ICMP token buckets
    /// ([`crate::FaultPlan::with_rate_limit_window`]) refill between
    /// cycles, so *burst size per cycle* — not just total probe count —
    /// determines how many replies a rate limiter suppresses. That is the
    /// behaviour an adaptive in-flight budget exploits by backing off.
    ///
    /// The default gap of 0 keeps the pre-existing semantics: lane clocks
    /// advance only on their own packets, so batching is invisible and
    /// sweeps stay bit-identical to sequential traces even under
    /// rate-limiting fault plans.
    pub fn with_cycle_gap(mut self, ticks: u64) -> Self {
        self.cycle_gap = ticks;
        self
    }

    /// Number of lanes.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// A lane's simulator. (`&mut self` because lane access recovers
    /// exclusive ownership from the pool-shared storage; no lock is
    /// taken.)
    pub fn lane(&mut self, index: usize) -> &SimNetwork {
        self.lane_mut(index)
    }

    /// Mutable access to a lane's simulator.
    pub fn lane_mut(&mut self, index: usize) -> &mut SimNetwork {
        let lanes = Arc::get_mut(&mut self.lanes).expect("a crossing is still in flight");
        unpoisoned(&mut lanes[index])
    }

    /// Aggregated traffic counters across all lanes.
    pub fn counters(&self) -> TrafficCounters {
        let mut total = TrafficCounters::default();
        for lane in self.lanes.iter() {
            let lane = lane.lock().expect("lane mutex poisoned");
            let c = lane.counters();
            total.probes_received += c.probes_received;
            total.probes_lost += c.probes_lost;
            total.replies_sent += c.replies_sent;
            total.replies_rate_limited += c.replies_rate_limited;
            total.replies_lost += c.replies_lost;
            total.probes_blackholed += c.probes_blackholed;
            total.mutations_applied += c.mutations_applied;
            total.mutations_rejected += c.mutations_rejected;
        }
        total
    }

    /// Advances every lane's clock by the configured inter-cycle gap
    /// (no-op at the default gap of 0).
    fn apply_cycle_gap(&mut self) {
        if self.cycle_gap > 0 {
            let gap = self.cycle_gap;
            let lanes = Arc::get_mut(&mut self.lanes).expect("a crossing is still in flight");
            for lane in lanes.iter_mut() {
                unpoisoned(lane).advance_clock(gap);
            }
        }
    }

    /// The lane a packet routes to, if any: UDP probes go to the lane
    /// simulating their destination, echoes to the lane owning the
    /// target interface.
    fn lane_for(&self, packet: &[u8]) -> Option<usize> {
        let (header, _) = Ipv4Header::parse(packet).ok()?;
        let dest = u32::from(header.destination);
        match header.protocol {
            PROTO_UDP => self
                .dests
                .binary_search_by_key(&dest, |&(d, _)| d)
                .ok()
                .map(|i| self.dests[i].1),
            PROTO_ICMP => self
                .interfaces
                .binary_search_by_key(&dest, |&(a, _)| a)
                .ok()
                .map(|i| self.interfaces[i].1),
            _ => None,
        }
    }
}

impl PacketTransport for MultiNetwork {
    fn send_packet(&mut self, packet: &[u8]) -> Option<Vec<u8>> {
        let lane = self.lane_for(packet)?;
        self.lane_mut(lane).send_packet(packet)
    }

    fn send_packet_into(&mut self, packet: &[u8], reply: &mut Vec<u8>) -> bool {
        match self.lane_for(packet) {
            Some(lane) => self.lane_mut(lane).send_packet_into(packet, reply),
            None => false,
        }
    }

    /// Total virtual time across lanes (each lane's clock ticks only for
    /// its own packets). Per-probe timestamps — the values observations
    /// carry — come from the owning lane via `send_batch`.
    fn now(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.lock().expect("lane mutex poisoned").clock())
            .sum()
    }
}

impl BatchTransport for MultiNetwork {
    /// Routes each packet to its lane and stamps each reply slot with the
    /// *lane's* clock, so a session's observations carry the same
    /// timestamps a dedicated per-destination simulator would produce.
    /// With more than one worker, disjoint lanes are processed in
    /// parallel and the replies merged back in slot order.
    fn send_batch(&mut self, probes: &PacketBatch, replies: &mut ReplyBatch) {
        replies.clear();
        let lane_of: Vec<Option<usize>> = probes.iter().map(|p| self.lane_for(p)).collect();

        // The persistent pool engages at any batch worth splitting (see
        // [`POOL_MIN_PROBES`]); one worker, one lane or a single probe
        // keeps the lock-free sequential path.
        if self.workers <= 1 || self.lanes.len() <= 1 || probes.len() < POOL_MIN_PROBES {
            let lanes = Arc::get_mut(&mut self.lanes).expect("a crossing is still in flight");
            for (slot, packet) in probes.iter().enumerate() {
                match lane_of[slot] {
                    Some(l) => {
                        let lane = unpoisoned(&mut lanes[l]);
                        let mut answered = false;
                        replies.push_with(0, |buf| {
                            answered = lane.send_packet_into(packet, buf);
                            answered
                        });
                        let t = unpoisoned(&mut lanes[l]).clock();
                        replies.set_last_timestamp(t);
                    }
                    None => replies.push_with(0, |_| false),
                }
            }
            self.apply_cycle_gap();
            return;
        }

        // Parallel path: per-lane slot lists, disjoint lane sets handed
        // to the persistent workers, outputs merged in slot order. Lane
        // state is disjoint, so the result is identical to the
        // sequential path whatever the thread timing.
        let num_lanes = self.lanes.len();
        let mut slots_of: Vec<Vec<usize>> = vec![Vec::new(); num_lanes];
        for (slot, lane) in lane_of.iter().enumerate() {
            if let Some(l) = lane {
                slots_of[*l].push(slot);
            }
        }
        // Only lanes with routed probes are assigned; contiguous chunks
        // of them spread across the workers (deterministic assignment,
        // though any assignment would merge identically).
        let busy: Vec<(usize, Vec<usize>)> = slots_of
            .into_iter()
            .enumerate()
            .filter(|(_, slots)| !slots.is_empty())
            .collect();
        let workers = self.workers;
        let pool = self.pool.get_or_insert_with(|| WorkerPool::new(workers));
        let chunk = busy.len().div_ceil(pool.len()).max(1);
        let mut per_worker: Vec<Vec<(usize, Vec<usize>)>> = Vec::with_capacity(pool.len());
        let mut busy = busy.into_iter();
        loop {
            let assignments: Vec<(usize, Vec<usize>)> = busy.by_ref().take(chunk).collect();
            if assignments.is_empty() {
                break;
            }
            per_worker.push(assignments);
        }
        let mut outputs: Vec<Option<(Option<Vec<u8>>, u64)>> = vec![None; probes.len()];
        pool.dispatch(
            &self.lanes,
            Arc::new(probes.clone()),
            per_worker,
            |records| {
                for (slot, reply, clock) in records {
                    outputs[slot] = Some((reply, clock));
                }
            },
        );
        for (slot, out) in outputs.into_iter().enumerate() {
            match out {
                Some((Some(bytes), t)) => {
                    replies.push_with(t, |buf| {
                        buf.extend_from_slice(&bytes);
                        true
                    });
                }
                // Routed but unanswered: the slot still carries its
                // lane's clock, as the sequential path stamps it.
                Some((None, t)) => replies.push_with(t, |_| false),
                None => {
                    debug_assert!(
                        lane_of[slot].is_none(),
                        "routed slot missing a reply record"
                    );
                    replies.push_with(0, |_| false);
                }
            }
        }
        self.apply_cycle_gap();
    }
}

/// The split exchange rides the vectorized `send_batch` path (worker
/// threads included): the send half runs the whole batch and records
/// each slot's lane-local send tick and the reply latency its lane's
/// schedule imposed at that tick; the recv half suppresses replies that
/// missed their per-probe deadline. Receiving advances no lane clocks,
/// so with latency-free schedules the exchange is byte-identical to
/// `send_batch` — the lane-isolation invariant is untouched.
impl SplitTransport for MultiNetwork {
    fn send_probes(&mut self, probes: &PacketBatch, timeouts: &[u64]) {
        debug_assert_eq!(probes.len(), timeouts.len(), "one timeout per probe");
        let mut pending = std::mem::take(&mut self.pending);
        pending.clear();
        pending.timeouts.extend_from_slice(timeouts);
        self.send_batch(probes, &mut pending.replies);
        for (slot, packet) in probes.iter().enumerate() {
            let latency = match self.lane_for(packet) {
                // The slot's timestamp is its lane-local processing tick
                // (stamped by send_batch); the schedule step in force at
                // that tick dictates the reply's lateness, spread by the
                // lane's own jitter stream. Slots visit each lane in its
                // own dispatch order, so the draws a lane consumes are a
                // pure function of its probe sequence.
                Some(lane) => {
                    let at = pending.replies.timestamp(slot);
                    self.lane_mut(lane).sample_latency_at(at)
                }
                None => 0,
            };
            pending.latencies.push(latency);
        }
        self.pending = pending;
    }

    fn recv_replies(&mut self, replies: &mut ReplyBatch) {
        let mut pending = std::mem::take(&mut self.pending);
        pending.resolve_into(replies);
        self.pending = pending;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpt_topo::canonical;
    use mlpt_wire::probe::{build_udp_probe_into, parse_reply, ProbePacket};
    use mlpt_wire::FlowId;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    /// Canonical topologies all share addresses, so lanes are built from
    /// translated copies occupying disjoint address blocks.
    fn lanes(n: u32, base_seed: u64) -> Vec<SimNetwork> {
        (0..n)
            .map(|i| {
                let topo = canonical::fig1_meshed().translated(0x0100_0000 * (i + 1));
                SimNetwork::new(topo, base_seed + u64::from(i))
            })
            .collect()
    }

    fn probe_bytes(dst: Ipv4Addr, flow: u16, ttl: u8, seq: u16) -> Vec<u8> {
        let mut buf = Vec::new();
        build_udp_probe_into(
            &ProbePacket {
                source: SRC,
                destination: dst,
                flow: FlowId(flow),
                ttl,
                sequence: seq,
            },
            &mut buf,
        );
        buf
    }

    #[test]
    fn duplicate_destinations_rejected() {
        let topo = canonical::simplest_diamond();
        let lanes = vec![
            SimNetwork::new(topo.clone(), 1),
            SimNetwork::new(topo.clone(), 2),
        ];
        assert_eq!(
            MultiNetwork::new(lanes).err(),
            Some(MultiNetworkError::DuplicateDestination(topo.destination()))
        );
    }

    #[test]
    fn routes_by_destination() {
        let lanes = lanes(3, 7);
        let dests: Vec<Ipv4Addr> = lanes.iter().map(|l| l.topology().destination()).collect();
        let mut net = MultiNetwork::new(lanes).expect("unique destinations");
        for (i, &dst) in dests.iter().enumerate() {
            let reply = net
                .send_packet(&probe_bytes(dst, 3, 1, 1))
                .expect("routed and answered");
            let parsed = parse_reply(&reply).expect("valid reply");
            assert!(
                net.lane(i)
                    .topology()
                    .all_addresses()
                    .contains(&parsed.responder),
                "lane {i} must answer its own probe"
            );
        }
        // Unknown destination: silently unanswered.
        assert!(net
            .send_packet(&probe_bytes(Ipv4Addr::new(8, 8, 8, 8), 0, 1, 1))
            .is_none());
    }

    /// The headline invariant at the transport level: a lane's byte
    /// stream is bit-identical to a standalone SimNetwork with the same
    /// seed, regardless of how other lanes' packets interleave.
    #[test]
    fn lanes_unperturbed_by_interleaving() {
        let all = lanes(2, 40);
        let d0 = all[0].topology().destination();
        let d1 = all[1].topology().destination();
        let mut multi = MultiNetwork::new(all).expect("unique destinations");
        let mut standalone = lanes(2, 40).remove(0);

        for step in 0..60u16 {
            let ttl = (step % 4 + 1) as u8;
            // Interleave: lane-1 traffic between every lane-0 packet.
            let noise = probe_bytes(d1, step, ttl, step);
            let _ = multi.send_packet(&noise);
            let probe = probe_bytes(d0, step, ttl, step);
            assert_eq!(
                multi.send_packet(&probe),
                standalone.send_packet(&probe),
                "lane 0 diverged at step {step}"
            );
        }
        assert_eq!(multi.lane(0).counters(), standalone.counters());
    }

    /// send_batch stamps each slot with the owning lane's clock and is
    /// identical to sequential single-packet dispatch.
    #[test]
    fn batch_matches_sequential_with_lane_clocks() {
        let all = lanes(3, 9);
        let dests: Vec<Ipv4Addr> = all.iter().map(|l| l.topology().destination()).collect();
        let mut batch = PacketBatch::new();
        for round in 0..8u16 {
            for (i, &dst) in dests.iter().enumerate() {
                let flow = round * 4 + i as u16;
                batch.push(&probe_bytes(dst, flow, (round % 4 + 1) as u8, flow));
            }
        }

        let mut batched = MultiNetwork::new(all).expect("unique destinations");
        let mut replies = ReplyBatch::new();
        batched.send_batch(&batch, &mut replies);

        let mut sequential = MultiNetwork::new(lanes(3, 9)).expect("unique destinations");
        for (slot, packet) in batch.iter().enumerate() {
            let expected = sequential.send_packet(packet);
            assert_eq!(
                replies.get(slot).map(<[u8]>::to_vec),
                expected,
                "slot {slot}"
            );
            if expected.is_some() {
                let lane = sequential.lane_for(packet).expect("routed");
                assert_eq!(
                    replies.timestamp(slot),
                    sequential.lane(lane).clock(),
                    "slot {slot} must carry its lane's clock"
                );
            }
        }
    }

    /// Worker threads change nothing but wall-clock time.
    #[test]
    fn parallel_workers_are_invisible() {
        let dests: Vec<Ipv4Addr> = lanes(4, 21)
            .iter()
            .map(|l| l.topology().destination())
            .collect();
        let mut batch = PacketBatch::new();
        // A large batch: plenty of lane work to spread over the pool.
        for round in 0..64u16 {
            for (i, &dst) in dests.iter().enumerate() {
                batch.push(&probe_bytes(
                    dst,
                    round,
                    (round % 4 + 1) as u8,
                    round * 7 + i as u16,
                ));
            }
        }
        // One unroutable packet mid-batch.
        batch.push(&probe_bytes(Ipv4Addr::new(9, 9, 9, 9), 0, 1, 0));

        let mut seq_replies = ReplyBatch::new();
        MultiNetwork::new(lanes(4, 21))
            .expect("unique")
            .send_batch(&batch, &mut seq_replies);

        let mut par_replies = ReplyBatch::new();
        MultiNetwork::new(lanes(4, 21))
            .expect("unique")
            .with_workers(3)
            .send_batch(&batch, &mut par_replies);

        assert_eq!(seq_replies.len(), par_replies.len());
        for slot in 0..seq_replies.len() {
            assert_eq!(
                seq_replies.get(slot),
                par_replies.get(slot),
                "slot {slot} reply"
            );
            assert_eq!(
                seq_replies.timestamp(slot),
                par_replies.timestamp(slot),
                "slot {slot} timestamp"
            );
        }
    }

    /// Satellite regression for the persistent pool: with spawn
    /// amortization gone, the parallel path engages at any batch size —
    /// so 1-worker and N-worker crossings must stay bit-identical at
    /// *every* batch size, including a single probe, and across
    /// repeated crossings of one long-lived pool.
    #[test]
    fn worker_counts_bit_identical_at_every_batch_size() {
        let dests: Vec<Ipv4Addr> = lanes(4, 33)
            .iter()
            .map(|l| l.topology().destination())
            .collect();
        for batch_size in [1usize, 2, 3, 5, 9, 17, 64] {
            let batches: Vec<PacketBatch> = (0..3u16)
                .map(|crossing| {
                    let mut batch = PacketBatch::new();
                    for i in 0..batch_size {
                        let seq = crossing * 100 + i as u16;
                        batch.push(&probe_bytes(
                            dests[i % dests.len()],
                            seq,
                            (i % 4 + 1) as u8,
                            seq,
                        ));
                    }
                    batch
                })
                .collect();
            let run = |workers: usize| -> Vec<ReplyBatch> {
                let mut net = MultiNetwork::new(lanes(4, 33))
                    .expect("unique")
                    .with_workers(workers);
                batches
                    .iter()
                    .map(|batch| {
                        let mut replies = ReplyBatch::new();
                        net.send_batch(batch, &mut replies);
                        replies
                    })
                    .collect()
            };
            let baseline = run(1);
            for workers in [2usize, 3, 8] {
                let parallel = run(workers);
                for (crossing, (want, got)) in baseline.iter().zip(&parallel).enumerate() {
                    assert_eq!(want.len(), got.len());
                    for slot in 0..want.len() {
                        assert_eq!(
                            want.get(slot),
                            got.get(slot),
                            "workers {workers} batch {batch_size} crossing {crossing} slot {slot} reply"
                        );
                        assert_eq!(
                            want.timestamp(slot),
                            got.timestamp(slot),
                            "workers {workers} batch {batch_size} crossing {crossing} slot {slot} timestamp"
                        );
                    }
                }
            }
        }
    }

    /// `split_by` hands each lane (with its full state) to the shard its
    /// destination maps to: every shard answers exactly its own
    /// destinations, empty shards are valid, and the shards' replies are
    /// bit-identical to the unsharded network's.
    #[test]
    fn split_by_partitions_lanes_and_preserves_state() {
        let all = lanes(4, 55);
        let dests: Vec<Ipv4Addr> = all.iter().map(|l| l.topology().destination()).collect();
        let assign = |d: Ipv4Addr| usize::from(u32::from(d) % 2 == 0);
        // Shard 2 stays empty on purpose.
        let mut shards = MultiNetwork::new(all)
            .expect("unique")
            .with_cycle_gap(3)
            .split_by(3, assign);
        assert_eq!(shards.len(), 3);
        assert_eq!(
            shards.iter().map(MultiNetwork::num_lanes).sum::<usize>(),
            dests.len()
        );
        assert_eq!(shards[2].num_lanes(), 0);
        let mut unsharded = MultiNetwork::new(lanes(4, 55)).expect("unique");
        for (i, &dst) in dests.iter().enumerate() {
            let probe = probe_bytes(dst, i as u16, 2, i as u16);
            let expected = unsharded.send_packet(&probe);
            assert!(expected.is_some(), "destination {dst} must answer");
            for (s, shard) in shards.iter_mut().enumerate() {
                let reply = shard.send_packet(&probe);
                if s == assign(dst) {
                    assert_eq!(reply, expected, "owning shard {s} must answer {dst}");
                } else {
                    assert!(reply.is_none(), "shard {s} must not own {dst}");
                }
            }
        }
    }

    /// With an inter-cycle gap, a rate-limited lane suppresses oversized
    /// bursts but recovers between dispatch cycles — the signal an
    /// adaptive budget backs off from. Without a gap, batch slicing is
    /// invisible to the limiter (clocks only tick on own packets).
    #[test]
    fn cycle_gap_refills_rate_limited_lanes() {
        use crate::faults::FaultPlan;
        let topo = canonical::simplest_diamond().translated(0x0100_0000);
        let d = topo.destination();
        // Every reply comes from the same last-hop router at TTL 3; allow
        // 2 replies per 8-tick window.
        let build = || {
            crate::SimNetwork::builder(topo.clone())
                .faults(FaultPlan::with_rate_limit_window(2, 8))
                .seed(1)
                .build()
        };
        let batch_of = |n: u16| {
            let mut batch = PacketBatch::new();
            for i in 0..n {
                batch.push(&probe_bytes(d, i, 3, i + 1));
            }
            batch
        };

        // One burst of 8 into a capacity-2 bucket: most suppressed.
        let mut burst_net = MultiNetwork::new(vec![build()]).expect("unique");
        let mut replies = ReplyBatch::new();
        burst_net.send_batch(&batch_of(8), &mut replies);
        let burst_suppressed = burst_net.counters().replies_rate_limited;
        assert!(burst_suppressed >= 5, "suppressed {burst_suppressed}");

        // The same 8 probes as 4 cycles of 2 with a full window between
        // cycles: the bucket refills each time, nothing is suppressed.
        let mut paced_net = MultiNetwork::new(vec![build()])
            .expect("unique")
            .with_cycle_gap(8);
        for c in 0..4u16 {
            let mut batch = PacketBatch::new();
            for i in 0..2u16 {
                let seq = c * 2 + i;
                batch.push(&probe_bytes(d, seq, 3, seq + 1));
            }
            paced_net.send_batch(&batch, &mut replies);
        }
        assert_eq!(paced_net.counters().replies_rate_limited, 0);
        assert_eq!(paced_net.counters().replies_sent, 8);
    }

    /// Rate-limit profiles apply to Echo Replies exactly as to ICMP
    /// errors: an echo burst into a rate-limited lane is suppressed at
    /// the router's token bucket, and the inter-cycle gap refills it —
    /// the behaviour an adaptive alias sweep (echo-heavy direct probing)
    /// backs off from.
    #[test]
    fn rate_limit_applies_to_echo_replies_on_lanes() {
        use crate::faults::FaultPlan;
        use crate::router::RouterProfile;
        use mlpt_topo::RouterId;
        let topo = canonical::simplest_diamond().translated(0x0100_0000);
        // Group the two middle interfaces into one router so the echo
        // burst drains a single shared token bucket.
        let targets: Vec<Ipv4Addr> = topo.hop(1).to_vec();
        let routers = mlpt_topo::RouterMap::from_alias_sets([targets.clone()]);
        let build = || {
            crate::SimNetwork::builder(topo.clone())
                .routers(routers.clone())
                .profile(RouterId(0), RouterProfile::well_behaved())
                .faults(FaultPlan::with_rate_limit_window(2, 8))
                .seed(3)
                .build()
        };
        let echo_batch = |n: u16| {
            let mut batch = PacketBatch::new();
            for i in 0..n {
                let target = targets[usize::from(i) % targets.len()];
                batch.push(&mlpt_wire::probe::build_echo_probe(
                    SRC,
                    target,
                    0x4D4C,
                    i + 1,
                    64,
                ));
            }
            batch
        };

        // One burst of 8 echoes into a capacity-2 bucket: most dropped.
        let mut burst_net = MultiNetwork::new(vec![build()]).expect("unique");
        let mut replies = ReplyBatch::new();
        burst_net.send_batch(&echo_batch(8), &mut replies);
        let suppressed = burst_net.counters().replies_rate_limited;
        assert!(suppressed >= 5, "suppressed {suppressed}");
        // The answered ones are real Echo Replies from the targets.
        let answered = (0..replies.len())
            .filter(|&i| replies.get(i).is_some())
            .count();
        assert_eq!(answered as u64, burst_net.counters().replies_sent);

        // The same 8 echoes paced 2 per cycle with a full window between
        // cycles: the bucket refills, nothing is suppressed.
        let mut paced_net = MultiNetwork::new(vec![build()])
            .expect("unique")
            .with_cycle_gap(8);
        for c in 0..4u16 {
            let mut batch = PacketBatch::new();
            for i in 0..2u16 {
                let seq = c * 2 + i;
                let target = targets[usize::from(seq) % targets.len()];
                batch.push(&mlpt_wire::probe::build_echo_probe(
                    SRC,
                    target,
                    0x4D4C,
                    seq + 1,
                    64,
                ));
            }
            paced_net.send_batch(&batch, &mut replies);
        }
        assert_eq!(paced_net.counters().replies_rate_limited, 0);
        assert_eq!(paced_net.counters().replies_sent, 8);
    }

    #[test]
    fn echo_routes_to_owning_lane() {
        let all = lanes(2, 3);
        let target = *all[1].topology().hop(1).first().expect("multi-vertex hop");
        let mut net = MultiNetwork::new(all).expect("unique destinations");
        let echo = mlpt_wire::probe::build_echo_probe(SRC, target, 0xBEEF, 1, 64);
        let reply = net.send_packet(&echo).expect("echo answered");
        let parsed = parse_reply(&reply).expect("valid reply");
        assert_eq!(parsed.responder, target);
        assert_eq!(net.lane(0).counters().probes_received, 0);
        assert_eq!(net.lane(1).counters().probes_received, 1);
    }
}
